"""Benchmark: regenerate Fig. 5 (throughput vs cluster count)."""

from benchmarks._common import bench_jobs, emit, full_scale, once
from repro.experiments.fig5_throughput import Fig5Config
from repro.scenarios.registry import get_scenario


def _config() -> Fig5Config:
    if full_scale():
        return Fig5Config.paper()
    # Same sweep, shorter/fewer trials.
    return Fig5Config(trial_duration=60.0, trials=2, warmup=15.0)


def test_fig5_throughput_vs_clusters(benchmark):
    scenario = get_scenario("fig5")
    result = once(benchmark,
                  lambda: scenario.run(_config(), jobs=bench_jobs()))
    emit("fig5_throughput", result.table().format(),
         data=result.table().as_dict())
    result.check_shape()
    # Headline: "C-Raft achieves 5x the throughput of Raft" at 10
    # clusters; accept the ballpark (>= 3x).
    assert result.points[-1].speedup >= 3.0
