"""Benchmarks: ablations over the reproduction's design knobs."""

from benchmarks._common import bench_jobs, emit, full_scale, once
from repro.experiments.ablations import (
    AblationConfig,
    run_batch_size_ablation,
    run_decision_interval_ablation,
    run_dispatch_ablation,
    run_proposer_ablation,
)


def _config() -> AblationConfig:
    return AblationConfig.paper() if full_scale() else AblationConfig()


def test_ablation_decision_interval(benchmark):
    table = once(benchmark,
                 lambda: run_decision_interval_ablation(_config(), jobs=bench_jobs()))
    emit("ablation_decision_interval", table.format(),
         data=table.as_dict())
    # Latency should track the decision cadence monotonically-ish:
    # the largest interval must be slower than the smallest.
    assert table.rows[-1][2] > table.rows[0][2]


def test_ablation_dispatch_policy(benchmark):
    table = once(benchmark, lambda: run_dispatch_ablation(_config(), jobs=bench_jobs()))
    emit("ablation_dispatch", table.format(), data=table.as_dict())
    classic_row = table.rows[0]
    # Eager dispatch removes the half-heartbeat queueing for classic Raft.
    assert classic_row[2] < classic_row[1]


def test_ablation_proposer_contention(benchmark):
    table = once(benchmark, lambda: run_proposer_ablation(_config(), jobs=bench_jobs()))
    emit("ablation_proposers", table.format(), data=table.as_dict())
    # More proposers => more index contention => never faster.
    assert table.rows[-1][1] >= table.rows[0][1] * 0.9


def test_ablation_batch_size(benchmark):
    table = once(benchmark, lambda: run_batch_size_ablation(_config(), jobs=bench_jobs()))
    emit("ablation_batch_size", table.format(), data=table.as_dict())
    rates = {row[0]: row[1] for row in table.rows}
    # Batch size 1 pays one global round per entry; 10 amortizes it.
    assert rates[10] > rates[1]
