"""Benchmark: regenerate Fig. 3 (latency vs message loss)."""

from benchmarks._common import bench_jobs, emit, full_scale, once
from repro.experiments.fig3_latency import Fig3Config
from repro.scenarios.registry import get_scenario


def _config() -> Fig3Config:
    if full_scale():
        return Fig3Config.paper()
    # Same sweep, fewer commits per point.
    return Fig3Config(trials=40)


def test_fig3_latency_vs_loss(benchmark):
    scenario = get_scenario("fig3")
    result = once(benchmark,
                  lambda: scenario.run(_config(), jobs=bench_jobs()))
    emit("fig3_latency", result.table().format(),
         data=result.table().as_dict())
    result.check_shape()
    # Headline: "Fast Raft is twice as fast as classic Raft if message
    # loss is below 5%".
    low_loss = [p for p in result.points if p.loss_rate < 0.05]
    assert all(p.speedup >= 1.5 for p in low_loss)
