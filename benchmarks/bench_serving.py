"""Benchmark: serving-layer throughput/latency (heavy_traffic row).

Runs the registered ``heavy_traffic`` scenario -- the session fleet
over the 6x5 C-Raft mesh with adaptive proposal batching -- and appends
a client-observed throughput/latency row to the ``BENCH_perf.json``
trajectory at the repository root (under ``serving_runs``, next to the
core-speedup ``runs``). The scenario's SLOSpec is enforced inside the
run, so this benchmark doubles as an SLO gate.

Scale: ``REPRO_BENCH_SMOKE=1`` runs the smoke fleet (CI),
``REPRO_BENCH_FULL=1`` the paper-scale 20k-session fleet; the default
is the quick fleet (2k sessions).

Run directly (``python benchmarks/bench_serving.py``) or through
pytest.
"""

from __future__ import annotations

import pathlib
import sys

if __package__ in (None, ""):  # direct execution: make the repo root
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks._common import bench_jobs, emit, full_scale, smoke_scale
from repro.bench.serving import run_bench_serving, write_serving_trajectory
from repro.scenarios.runner import close_sweep_pool


def _run() -> None:
    mode = ("smoke" if smoke_scale()
            else "full" if full_scale() else "quick")
    try:
        report = run_bench_serving(mode, jobs=bench_jobs())
    finally:
        close_sweep_pool()
    emit("bench_serving", report.format(), data=report.as_dict())
    path = write_serving_trajectory(report)
    print(f"[serving row appended to {path}]")
    report.check()


def test_bench_serving() -> None:
    _run()


if __name__ == "__main__":
    sys.exit(_run())
