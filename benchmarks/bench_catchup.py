"""Benchmark: rejoin-to-caught-up latency under churn, snapshots vs full
log replay, for all three engines -- plus the WAN variant comparing
monolithic and chunked InstallSnapshot under a bandwidth-limited link.

The headline claim of the snapshot subsystem: a churned node catches back
up via InstallSnapshot with strictly fewer replayed log entries and lower
simulated catch-up time than full replay -- in classic Raft, Fast Raft,
and C-Raft (where the rejoiner is a cluster member inheriting the global
image through the composite local snapshot).

The WAN variant activates the size-aware cost model
(:class:`~repro.net.latency.BandwidthLatencyModel`): monolithic transfer
latency grows linearly with snapshot size, while chunked transfer
overlaps its chunks with the acks in flight and stays near-flat.
"""

from benchmarks._common import (
    bench_jobs,
    emit,
    full_scale,
    once,
    smoke_scale,
)
from repro.experiments.catchup import (
    CatchupConfig,
    WanCatchupConfig,
    run_catchup,
    run_wan_catchup,
)


def _config(engine: str) -> CatchupConfig:
    if full_scale():
        return CatchupConfig.paper(engine)
    if smoke_scale():
        return CatchupConfig.smoke(engine)
    return CatchupConfig.quick(engine)


def _wan_config(engine: str) -> WanCatchupConfig:
    if full_scale():
        return WanCatchupConfig.paper(engine)
    if smoke_scale():
        return WanCatchupConfig.smoke(engine)
    return WanCatchupConfig.quick(engine)


def _run(benchmark, engine: str) -> None:
    result = once(benchmark, lambda: run_catchup(_config(engine), jobs=bench_jobs()))
    emit(f"catchup_{engine}", result.table().format(),
         data=result.as_dict())
    # check_shape() enforces the acceptance contract: strictly fewer
    # replayed entries, strictly faster catch-up, >= 1 install.
    result.check_shape()


def _run_wan(benchmark, engine: str) -> None:
    result = once(benchmark, lambda: run_wan_catchup(_wan_config(engine),
                                          jobs=bench_jobs()))
    emit(f"catchup_wan_{engine}", result.table().format(),
         data=result.as_dict())
    # Acceptance contract: monolithic catch-up grows with snapshot size;
    # chunked beats monolithic at every size; every run installs.
    result.check_shape()


def test_catchup_raft(benchmark):
    _run(benchmark, "raft")


def test_catchup_fastraft(benchmark):
    _run(benchmark, "fastraft")


def test_catchup_craft(benchmark):
    _run(benchmark, "craft")


def test_catchup_wan_raft(benchmark):
    _run_wan(benchmark, "raft")


def test_catchup_wan_fastraft(benchmark):
    _run_wan(benchmark, "fastraft")
