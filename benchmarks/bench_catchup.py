"""Benchmark: rejoin-to-caught-up latency under churn, snapshots vs full
log replay, for all three engines.

The headline claim of the snapshot subsystem: a churned node catches back
up via InstallSnapshot with strictly fewer replayed log entries and lower
simulated catch-up time than full replay -- in classic Raft, Fast Raft,
and C-Raft (where the rejoiner is a cluster member inheriting the global
image through the composite local snapshot).
"""

from benchmarks._common import emit, full_scale, once
from repro.experiments.catchup import CatchupConfig, run_catchup


def _config(engine: str) -> CatchupConfig:
    if full_scale():
        return CatchupConfig.paper(engine)
    return CatchupConfig.quick(engine)


def _run(benchmark, engine: str) -> None:
    result = once(benchmark, lambda: run_catchup(_config(engine)))
    emit(f"catchup_{engine}", result.table().format(),
         data=result.as_dict())
    # check_shape() enforces the acceptance contract: strictly fewer
    # replayed entries, strictly faster catch-up, >= 1 install.
    result.check_shape()


def test_catchup_raft(benchmark):
    _run(benchmark, "raft")


def test_catchup_fastraft(benchmark):
    _run(benchmark, "fastraft")


def test_catchup_craft(benchmark):
    _run(benchmark, "craft")
