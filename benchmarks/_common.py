"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's tables/figures. The wall
time pytest-benchmark reports is the cost of the whole simulation; the
scientific output is the table, which is printed and persisted under
``benchmarks/results/`` so it survives pytest's output capturing.

Set ``REPRO_BENCH_FULL=1`` for the exact paper-scale configurations
(longer); the default trims trial counts, not scenario structure.
``REPRO_BENCH_SMOKE=1`` trims further still -- tiny run counts whose only
job is keeping benchmark scripts from rotting in CI (the shape checks
still run; the numbers are not meaningful).
"""

from __future__ import annotations

import json
import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def smoke_scale() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") == "1"


def bench_jobs() -> int:
    """Worker processes for scenario sweeps (``REPRO_BENCH_JOBS``).

    Defaults to 1 so the benchmarked wall time stays comparable across
    machines; CI sets it to exercise the parallel runner. Results are
    identical either way (the SweepRunner guarantee).
    """
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def emit(name: str, text: str, data=None) -> None:
    """Print a result table and persist it to benchmarks/results/.

    Besides the human-readable ``<name>.txt``, a machine-readable
    ``<name>.json`` is written so the perf trajectory can be tracked
    across PRs; pass structured ``data`` (e.g. ``ResultTable.as_dict()``)
    for a meaningful payload, else the table text is wrapped.
    """
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                             encoding="utf-8")
    payload = data if data is not None else {"name": name, "table": text}
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8")


def once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
