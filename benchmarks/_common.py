"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's tables/figures. The wall
time pytest-benchmark reports is the cost of the whole simulation; the
scientific output is the table, which is printed and persisted under
``benchmarks/results/`` so it survives pytest's output capturing.

Set ``REPRO_BENCH_FULL=1`` for the exact paper-scale configurations
(longer); the default trims trial counts, not scenario structure.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it to benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                             encoding="utf-8")


def once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
