"""Benchmark: simulation-core events/sec, current core vs legacy core.

Unlike the scientific benchmarks (which regenerate the paper's tables),
this one measures the simulator itself: the same three cells run on the
pre-refactor core (heap scheduler, full-log config scans, per-follower
broadcast construction, un-fast-pathed network -- all kept behind
``repro.perf``'s legacy switch) and on the current core, in the same
process on the same machine. Both runs execute the identical event
sequence, so the wall-clock ratio is the core speedup.

Results go three places: printed, persisted under
``benchmarks/results/``, and appended to the ``BENCH_perf.json``
trajectory at the repository root (the acceptance artifact: the
``raft_lan_steady`` cell must show >= 3x at full scale).

``REPRO_BENCH_SMOKE=1`` shrinks the cells for CI; the smoke bar only
asserts the current core is not *slower* (tiny cells amortize less of
the quadratic legacy tax, and shared runners are noisy). At every
scale the ``craft_mesh_6x5`` cell must stay at or above 1.0x -- the
engine-layer optimizations are gated, so a regression below the legacy
core means a gate is leaking cost.

Measurements run inside the persistent sweep-worker pool (one warm
worker, tasks serialized) so the host process's heap and pytest
machinery stay out of the timed window; the pool is closed explicitly
once the report is written.

Run directly (``python benchmarks/bench_perf.py``) or through pytest.
"""

from __future__ import annotations

import pathlib
import sys

if __package__ in (None, ""):  # direct execution: make the repo root
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks._common import emit, smoke_scale
from repro.bench import run_bench_perf, write_trajectory
from repro.bench.perf import TARGET_SPEEDUP
from repro.scenarios.runner import close_sweep_pool

#: Smoke asserts sanity, full asserts the acceptance bar.
SMOKE_MIN_SPEEDUP = 1.0


def _run() -> None:
    smoke = smoke_scale()
    try:
        report = run_bench_perf(smoke=smoke)
    finally:
        close_sweep_pool()
    emit("bench_perf", report.format(), data=report.as_dict())
    path = write_trajectory(report)
    print(f"[perf trajectory appended to {path}]")
    report.check(SMOKE_MIN_SPEEDUP if smoke else TARGET_SPEEDUP)


def test_bench_perf() -> None:
    _run()


if __name__ == "__main__":
    sys.exit(_run())
