"""Benchmark: regenerate the Figs. 1-2 message-round validation."""

from benchmarks._common import emit, once
from repro.experiments.rounds import RoundsConfig, run_rounds


def test_rounds_message_flow(benchmark):
    result = once(benchmark, lambda: run_rounds(RoundsConfig.paper()))
    emit("figs_1_2_rounds", result.table().format(),
         data=result.table().as_dict())
    result.check_shape()
    assert result.classic_commit_hops == 3
    assert result.fast_commit_hops == 2
