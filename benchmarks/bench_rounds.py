"""Benchmark: regenerate the Figs. 1-2 message-round validation."""

from benchmarks._common import bench_jobs, emit, once
from repro.experiments.rounds import RoundsConfig
from repro.scenarios.registry import get_scenario


def test_rounds_message_flow(benchmark):
    scenario = get_scenario("rounds")
    result = once(benchmark,
                  lambda: scenario.run(RoundsConfig.paper(),
                                       jobs=bench_jobs()))
    emit("figs_1_2_rounds", result.table().format(),
         data=result.table().as_dict())
    result.check_shape()
    assert result.classic_commit_hops == 3
    assert result.fast_commit_hops == 2
