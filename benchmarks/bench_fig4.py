"""Benchmark: regenerate Fig. 4 (silent-leave latency timeline)."""

from benchmarks._common import bench_jobs, emit, full_scale, once
from repro.experiments.fig4_churn import Fig4Config
from repro.scenarios.registry import get_scenario
from repro.metrics.summary import summarize


def _config() -> Fig4Config:
    if full_scale():
        return Fig4Config.paper()
    return Fig4Config(warmup_commits=25, total_commits=120)


def test_fig4_silent_leave_timeline(benchmark):
    scenario = get_scenario("fig4")
    result = once(benchmark,
                  lambda: scenario.run(_config(), jobs=bench_jobs()))
    table = result.table()
    # Also persist the raw timeline (the figure's scatter series).
    series = "\n".join(f"{offset:+.3f}s  {latency * 1000:7.1f} ms"
                       for offset, latency in result.timeline)
    data = table.as_dict()
    data["timeline"] = [[offset, latency]
                        for offset, latency in result.timeline]
    emit("fig4_churn", table.format() + "\n\ntimeline:\n" + series,
         data=data)
    result.check_shape()
    pre, _, _ = result.phase_latencies()
    # Paper: 50-100 ms band before the leave.
    assert 0.030 <= summarize(pre).mean <= 0.110
