"""Benchmark: regenerate Fig. 4 (silent-leave latency timeline)."""

from benchmarks._common import emit, full_scale, once
from repro.experiments.fig4_churn import Fig4Config, run_fig4
from repro.metrics.summary import summarize


def _config() -> Fig4Config:
    if full_scale():
        return Fig4Config.paper()
    return Fig4Config(warmup_commits=25, total_commits=120)


def test_fig4_silent_leave_timeline(benchmark):
    result = once(benchmark, lambda: run_fig4(_config()))
    table = result.table()
    # Also persist the raw timeline (the figure's scatter series).
    series = "\n".join(f"{offset:+.3f}s  {latency * 1000:7.1f} ms"
                       for offset, latency in result.timeline)
    data = table.as_dict()
    data["timeline"] = [[offset, latency]
                        for offset, latency in result.timeline]
    emit("fig4_churn", table.format() + "\n\ntimeline:\n" + series,
         data=data)
    result.check_shape()
    pre, _, _ = result.phase_latencies()
    # Paper: 50-100 ms band before the leave.
    assert 0.030 <= summarize(pre).mean <= 0.110
