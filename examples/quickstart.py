#!/usr/bin/env python
"""Quickstart: a five-site Fast Raft cluster committing entries.

Builds the paper's basic setup (five sites, one region, 100 ms leader
heartbeat), commits ten key-value entries through a closed-loop proposer,
and prints per-entry commit latency -- at low loss every entry should ride
the fast track at roughly half the classic-Raft latency.

Run:  python examples/quickstart.py
"""

from repro import build_cluster
from repro.fastraft.server import FastRaftServer
from repro.harness.checkers import run_safety_checks
from repro.smr.kv import KVCommand, KVStateMachine


def main() -> None:
    cluster = build_cluster(FastRaftServer, n_sites=5, seed=7,
                            state_machine_factory=KVStateMachine)
    cluster.start_all()
    leader = cluster.run_until_leader()
    print(f"leader elected: {leader} at t={cluster.loop.now():.3f}s")

    client = cluster.add_client(site="n0")
    for i in range(10):
        record = cluster.propose_and_wait(
            client, KVCommand.put(f"key{i}", i * 10))
        print(f"  put key{i}: index={record.commit_index}, "
              f"latency={record.latency * 1000:.1f} ms")

    # Let replication quiesce, then inspect a replica.
    cluster.run_for(1.0)
    replica = cluster.servers["n3"]
    print(f"\nreplica n3 state: {replica.state_machine.snapshot()}")
    print(f"commit indices:   {cluster.commit_indices()}")

    fast = len([e for e in cluster.trace.events
                if e.category == "fastraft.fast_commit"])
    print(f"fast-track commits at the leader: {fast}")

    run_safety_checks(cluster.servers.values(), cluster.trace)
    print("safety checks passed")


if __name__ == "__main__":
    main()
