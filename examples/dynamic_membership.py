#!/usr/bin/env python
"""Dynamic membership: joins, announced leaves, and silent leaves.

Walks through the paper's Section IV-D mechanisms on a live cluster:

1. a new site joins by sending join requests (caught up as a non-voting
   member first, then added by a committed configuration entry);
2. a member leaves gracefully with a leave request;
3. two members vanish silently -- the leader's member timeout detects
   them and reconfigures, shrinking the fast quorum until the fast track
   works again (the Fig. 4 scenario).

Run:  python examples/dynamic_membership.py
"""

from repro import Configuration, build_cluster
from repro.fastraft.server import FastRaftServer
from repro.harness.checkers import run_safety_checks
from repro.harness.faults import FaultInjector
from repro.harness.workload import ClosedLoopWorkload
from repro.net.loss import BernoulliLoss
from repro.smr.kv import KVStateMachine


def show_config(cluster, label):
    leader = cluster.servers[cluster.leader()]
    config = leader.engine.configuration
    print(f"{label}: members={list(config.members)} "
          f"(classic quorum {config.classic_quorum}, "
          f"fast quorum {config.fast_quorum})")


def main() -> None:
    cluster = build_cluster(FastRaftServer, n_sites=4, seed=3,
                            loss=BernoulliLoss(0.05),
                            state_machine_factory=KVStateMachine)
    cluster.start_all()
    cluster.run_until_leader()
    show_config(cluster, "bootstrap")

    # Background traffic so membership changes contend with real load.
    client = cluster.add_client(site="n0")
    workload = ClosedLoopWorkload(client, max_requests=300)
    workload.start()
    cluster.run_until(lambda: workload.completed_count >= 10, timeout=30.0)

    # --- 1. a new site joins -----------------------------------------
    print("\nn9 requests to join ...")
    joiner = FastRaftServer(
        name="n9", loop=cluster.loop, network=cluster.network,
        store=cluster.fabric.store_for("n9"),
        bootstrap_config=Configuration(tuple(cluster.servers)),
        timing=cluster.timing, rng=cluster.rng, trace=cluster.trace,
        state_machine_factory=KVStateMachine)
    cluster.add_server(joiner)
    joiner.start()
    cluster.run_until(
        lambda: "n9" in cluster.servers[cluster.leader()]
        .engine.configuration.members, timeout=30.0)
    show_config(cluster, "after join")
    print(f"n9 caught up to commit index {joiner.engine.commit_index}")

    # --- 2. an announced leave ---------------------------------------
    leaver = next(n for n in ("n1", "n2", "n3")
                  if n != cluster.leader())
    print(f"\n{leaver} announces its departure ...")
    faults = FaultInjector(cluster)
    faults.announced_leave(leaver)
    cluster.run_until(
        lambda: leaver not in cluster.servers[cluster.leader()]
        .engine.configuration.members, timeout=30.0)
    show_config(cluster, "after announced leave")

    # --- 3. silent leaves (Fig. 4) ------------------------------------
    leader_name = cluster.leader()
    victims = [n for n in cluster.servers
               if n != leader_name and n != leaver and n != "n0"
               and n in cluster.servers[leader_name]
               .engine.configuration.members][:2]
    print(f"\n{victims} leave silently; waiting for the member "
          f"timeout ({cluster.timing.member_timeout_beats} missed "
          f"heartbeat responses) ...")
    for victim in victims:
        faults.silent_leave(victim)
    cluster.run_until(
        lambda: all(v not in cluster.servers[cluster.leader()]
                    .engine.configuration.members for v in victims),
        timeout=60.0)
    show_config(cluster, "after silent-leave detection")

    cluster.run_until(lambda: workload.done, timeout=300.0)
    print(f"\nworkload finished: {workload.completed_count} commits "
          f"across all membership changes")
    run_safety_checks(cluster.servers.values(), cluster.trace)
    print("safety checks passed")


if __name__ == "__main__":
    main()
