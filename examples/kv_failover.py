#!/usr/bin/env python
"""A replicated key-value store surviving a leader crash.

Demonstrates the full crash-recovery story: a client keeps writing while
the leader is killed mid-run; Fast Raft elects a successor, the recovery
algorithm preserves in-flight proposals, and the crashed site later
rejoins and catches up -- with every replica converging to the same
store contents.

Run:  python examples/kv_failover.py
"""

from repro import build_cluster
from repro.fastraft.server import FastRaftServer
from repro.harness.checkers import run_safety_checks
from repro.harness.faults import FaultInjector
from repro.harness.workload import ClosedLoopWorkload
from repro.smr.kv import KVStateMachine


def main() -> None:
    cluster = build_cluster(FastRaftServer, n_sites=5, seed=11,
                            state_machine_factory=KVStateMachine)
    cluster.start_all()
    first_leader = cluster.run_until_leader()
    print(f"initial leader: {first_leader}")

    # A client attached to a non-leader site, writing continuously.
    origin = next(n for n in cluster.servers if n != first_leader)
    client = cluster.add_client(site=origin, proposal_timeout=0.5)
    workload = ClosedLoopWorkload(
        client, max_requests=40,
        command_factory=lambda s: {"op": "put", "key": f"account{s % 7}",
                                   "value": s})
    workload.start()
    cluster.run_until(lambda: workload.completed_count >= 10, timeout=20.0)
    print(f"committed {workload.completed_count} writes; "
          f"crashing the leader {first_leader} ...")

    faults = FaultInjector(cluster)
    faults.crash(first_leader)

    cluster.run_until(lambda: workload.done, timeout=60.0)
    new_leader = cluster.leader()
    print(f"new leader: {new_leader}; all 40 writes committed")

    print(f"recovering {first_leader} from stable storage ...")
    faults.recover(first_leader)
    cluster.run_for(3.0)

    recovered = cluster.servers[first_leader]
    print(f"{first_leader} caught up to commit index "
          f"{recovered.engine.commit_index}")

    snapshots = {name: server.state_machine.snapshot()
                 for name, server in cluster.servers.items()}
    reference = snapshots[new_leader]
    assert all(snapshot == reference for snapshot in snapshots.values()), \
        "replicas diverged!"
    print(f"all 5 replicas agree on {len(reference)} keys: {reference}")

    run_safety_checks(cluster.servers.values(), cluster.trace)
    print("safety checks passed")


if __name__ == "__main__":
    main()
