#!/usr/bin/env python
"""Geo-replication with C-Raft: four regions, hierarchical consensus.

Builds the paper's Section V system: sites grouped into clusters (one per
region), Fast Raft inside each cluster, cluster leaders running Fast Raft
among themselves, and batches of locally committed entries published to
the globally ordered log. Clients see local commit latency; the global
log converges everywhere.

Run:  python examples/geo_replication.py
"""

from repro.craft import build_craft_deployment
from repro.craft.batching import BatchPolicy
from repro.experiments.regions import latency_model_for, regions_for
from repro.harness.workload import ClosedLoopWorkload
from repro.net.topology import Topology
from repro.smr.kv import KVStateMachine


def main() -> None:
    regions = regions_for(4)
    topology = Topology.even_clusters(12, regions)  # 3 sites per region
    deployment = build_craft_deployment(
        topology, latency_model_for(topology), seed=5,
        batch_policy=BatchPolicy(batch_size=5, max_age=2.0),
        state_machine_factory=KVStateMachine)
    deployment.start_all()

    leaders = deployment.run_until_local_leaders()
    print("cluster leaders:")
    for cluster, leader in sorted(leaders.items()):
        print(f"  {cluster}: {leader}")
    global_leader = deployment.run_until_global_ready(timeout=60.0)
    print(f"global leader: {global_leader} "
          f"(cluster {topology.cluster_of(global_leader)})")

    # One closed-loop client per region writes region-tagged keys.
    workloads = {}
    for region in regions:
        site = topology.nodes_in_cluster(region)[0]
        client = deployment.add_client(site=site)
        workload = ClosedLoopWorkload(
            client, max_requests=15,
            command_factory=lambda s, r=region: {
                "op": "put", "key": f"{r}/item{s}", "value": s})
        workload.start()
        workloads[region] = workload

    deployment.run_until(
        lambda: all(w.done for w in workloads.values()), timeout=120.0)
    print("\nlocal commit latency per region (client-observed):")
    for region, workload in sorted(workloads.items()):
        latencies = workload.latencies()
        mean = sum(latencies) / len(latencies)
        print(f"  {region}: {mean * 1000:.1f} ms mean over "
              f"{len(latencies)} writes")

    # Wait until every site has applied all 60 entries from the global log.
    deployment.run_until(
        lambda: min(len(s._global_applied_ids)
                    for s in deployment.servers.values()) >= 60,
        timeout=300.0)
    far_apart = [topology.nodes_in_cluster(regions[0])[0],
                 topology.nodes_in_cluster(regions[-1])[0]]
    snap_a = deployment.servers[far_apart[0]].global_state_machine.snapshot()
    snap_b = deployment.servers[far_apart[1]].global_state_machine.snapshot()
    assert snap_a == snap_b, "global state diverged!"
    print(f"\nglobal KV store converged on {len(snap_a)} keys at "
          f"{far_apart[0]} and {far_apart[1]} "
          f"(regions {regions[0]} and {regions[-1]})")
    sample = dict(sorted(snap_a.items())[:4])
    print(f"sample: {sample}")


if __name__ == "__main__":
    main()
