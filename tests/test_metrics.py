"""Tests for metrics: summaries, series, round accounting."""

import pytest

from repro.metrics.rounds import hops_from_latency
from repro.metrics.series import EventSeries, ValueSeries
from repro.metrics.summary import percentile, summarize


class TestSummary:
    def test_basic_stats(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.count == 5
        assert stats.mean == 3.0
        assert stats.median == 3.0
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0

    def test_single_value(self):
        stats = summarize([7.0])
        assert stats.stdev == 0.0
        assert stats.p95 == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentile_interpolates(self):
        values = sorted([0.0, 10.0])
        assert percentile(values, 0.5) == 5.0
        assert percentile(values, 0.25) == 2.5

    def test_stdev_sample(self):
        stats = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.stdev == pytest.approx(2.138, abs=0.01)

    def test_format(self):
        stats = summarize([0.050, 0.060])
        text = stats.format(unit="ms", scale=1000)
        assert "55.0ms" in text
        assert "n=2" in text


class TestEventSeries:
    def test_counts_and_rates(self):
        series = EventSeries("commits")
        for t in (0.1, 0.5, 0.9, 1.5, 2.5):
            series.record(t)
        assert len(series) == 5
        assert series.count_between(0.0, 1.0) == 3
        assert series.rate_between(0.0, 1.0) == pytest.approx(3.0)

    def test_out_of_order_rejected(self):
        series = EventSeries()
        series.record(1.0)
        with pytest.raises(ValueError):
            series.record(0.5)

    def test_rates_per_window(self):
        series = EventSeries()
        for t in (0.1, 0.2, 1.1):
            series.record(t)
        windows = series.rates_per_window(0.0, 2.0, 1.0)
        assert windows[0] == (0.5, pytest.approx(2.0))
        assert windows[1] == (1.5, pytest.approx(1.0))

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            EventSeries().rate_between(1.0, 1.0)


class TestValueSeries:
    def test_record_and_summary(self):
        series = ValueSeries("latency")
        series.record(0.1, 0.050)
        series.record(0.2, 0.070)
        assert series.summary().mean == pytest.approx(0.060)

    def test_between(self):
        series = ValueSeries()
        for t in range(5):
            series.record(float(t), float(t) * 10)
        assert series.values_between(1.0, 3.0) == [10.0, 20.0]

    def test_window_means_skip_empty(self):
        series = ValueSeries()
        series.record(0.5, 1.0)
        series.record(2.5, 3.0)
        means = series.window_means(0.0, 3.0, 1.0)
        assert len(means) == 2  # the window [1,2) is empty
        assert means[0] == (0.5, 1.0)


class TestRounds:
    def test_exact_multiples(self):
        assert hops_from_latency(0.03, 0.01) == 3
        assert hops_from_latency(0.0201, 0.01, tolerance=0.25) == 2

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError):
            hops_from_latency(0.025, 0.01, tolerance=0.1)

    def test_bad_delay_rejected(self):
        with pytest.raises(ValueError):
            hops_from_latency(0.03, 0.0)


class TestTailPercentiles:
    def test_summarize_fills_p99_p999(self):
        values = [float(i) for i in range(1, 1001)]
        stats = summarize(values)
        assert stats.p99 == pytest.approx(990.01)
        assert stats.p999 == pytest.approx(999.001)
        assert stats.p99 <= stats.p999 <= stats.maximum

    def test_single_value_tails(self):
        stats = summarize([3.0])
        assert stats.p99 == 3.0
        assert stats.p999 == 3.0


class TestStreamingReservoir:
    def make(self, capacity, seed=7):
        import random
        from repro.metrics.summary import StreamingReservoir
        return StreamingReservoir(capacity, random.Random(seed))

    def test_exact_stats_survive_overflow(self):
        reservoir = self.make(capacity=16)
        for i in range(1, 1001):
            reservoir.add(float(i))
        stats = reservoir.summary()
        assert stats.count == 1000          # exact, not sampled
        assert stats.minimum == 1.0
        assert stats.maximum == 1000.0
        assert stats.mean == pytest.approx(500.5)
        assert len(reservoir.sample) == 16  # bounded memory

    def test_below_capacity_keeps_everything(self):
        reservoir = self.make(capacity=100)
        for v in (3.0, 1.0, 2.0):
            reservoir.add(v)
        assert sorted(reservoir.sample) == [1.0, 2.0, 3.0]
        assert reservoir.summary().median == 2.0

    def test_deterministic_with_injected_rng(self):
        a, b = self.make(8, seed=42), self.make(8, seed=42)
        for i in range(500):
            a.add(float(i))
            b.add(float(i))
        assert a.sample == b.sample

    def test_sample_is_plausibly_uniform(self):
        reservoir = self.make(capacity=200, seed=3)
        for i in range(10_000):
            reservoir.add(float(i))
        stats = reservoir.summary()
        # a uniform sample of 0..9999 pins the quartiles loosely
        assert 3000 < stats.median < 7000

    def test_empty_and_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            self.make(capacity=0)
        with pytest.raises(ValueError):
            self.make(capacity=4).summary()


class TestRecoveryProbeCounters:
    class FakeEngine:
        def __init__(self, confirmed=0, rejected=0, timeout=0):
            self.recovery_probes_confirmed = confirmed
            self.recovery_probes_rejected = rejected
            self.recovery_probes_timeout = timeout

    def test_tally_sums_across_engines(self):
        from repro.metrics.summary import tally_probe_outcomes
        counters = tally_probe_outcomes([
            self.FakeEngine(confirmed=2),
            self.FakeEngine(rejected=1, timeout=3)])
        assert counters.confirmed == 2
        assert counters.rejected == 1
        assert counters.timed_out == 3

    def test_engines_without_counters_count_zero(self):
        from repro.metrics.summary import tally_probe_outcomes
        counters = tally_probe_outcomes([object()])
        assert (counters.confirmed, counters.rejected,
                counters.timed_out) == (0, 0, 0)

    def test_format(self):
        from repro.metrics.summary import RecoveryProbeCounters
        text = RecoveryProbeCounters(confirmed=1, timed_out=2).format()
        assert "1 confirmed" in text
        assert "2 timed out" in text
