"""Fast Raft leader election and the recovery algorithm."""

from repro.consensus.engine import Role
from repro.consensus.entry import InsertedBy
from repro.fastraft.server import FastRaftServer
from repro.harness.faults import FaultInjector
from repro.harness.workload import ClosedLoopWorkload
from repro.net.loss import BernoulliLoss
from tests.conftest import assert_safe, commit_n, started_cluster


class TestElection:
    def test_new_leader_after_crash(self):
        cluster = started_cluster(FastRaftServer, seed=2)
        old = cluster.leader()
        FaultInjector(cluster).crash(old)
        new = cluster.run_until_leader(timeout=5.0)
        assert new != old
        assert_safe(cluster)

    def test_recovery_trace_emitted_when_self_approved_exist(self):
        cluster = started_cluster(FastRaftServer, seed=2)
        client = cluster.add_client(site="n0", proposal_timeout=5.0)
        # Submit, give the proposal one round to self-insert everywhere,
        # then kill the leader before its decision tick.
        client.submit({"op": "put", "key": "pending", "value": 1})
        cluster.run_for(0.004)
        FaultInjector(cluster).crash(cluster.leader())
        cluster.run_until_leader(timeout=5.0)
        recoveries = [e for e in cluster.trace.events
                      if e.category == "fastraft.recovery"]
        assert recoveries, "new leader should process self-approved entries"

    def test_pending_proposal_commits_after_leader_crash(self):
        """Self-approved entries survive into the new term via recovery."""
        cluster = started_cluster(FastRaftServer, seed=4)
        origin = next(n for n in cluster.servers if n != cluster.leader())
        client = cluster.add_client(site=origin, proposal_timeout=1.0)
        record = client.submit({"op": "put", "key": "carry", "value": 9})
        cluster.run_for(0.004)  # proposals inserted, votes in flight
        FaultInjector(cluster).crash(cluster.leader())
        assert cluster.run_until(lambda: record.done, timeout=20.0)
        cluster.run_for(1.0)
        assert_safe(cluster)
        live = [s for s in cluster.live_servers()]
        assert all(s.state_machine.get("carry") == 9 for s in live)

    def test_commits_survive_leader_change(self):
        cluster = started_cluster(FastRaftServer, seed=5)
        client = cluster.add_client(site="n2")
        commit_n(cluster, client, 5)
        committed = {i: cluster.servers[cluster.leader()].engine.log.get(i).entry_id
                     for i in range(1, 6)}
        FaultInjector(cluster).crash(cluster.leader())
        cluster.run_until_leader(timeout=5.0)
        cluster.run_for(1.0)
        new_leader = cluster.servers[cluster.leader()].engine
        for index, entry_id in committed.items():
            assert new_leader.log.get(index).entry_id == entry_id
        assert_safe(cluster)

    def test_restamp_inherited_suffix(self):
        """Uncommitted leader-approved entries get the new leader's term."""
        cluster = started_cluster(FastRaftServer, seed=7)
        client = cluster.add_client(site="n1")
        commit_n(cluster, client, 3)
        old_term = cluster.servers[cluster.leader()].engine.current_term
        FaultInjector(cluster).crash(cluster.leader())
        cluster.run_until_leader(timeout=5.0)
        client2 = cluster.add_client(site=cluster.leader())
        cluster.propose_and_wait(client2, {"op": "put", "key": "z",
                                           "value": 1})
        new_engine = cluster.servers[cluster.leader()].engine
        assert new_engine.current_term > old_term
        assert_safe(cluster)

    def test_deposed_leader_rejoins_as_follower(self):
        cluster = started_cluster(FastRaftServer, seed=8)
        old = cluster.leader()
        faults = FaultInjector(cluster)
        faults.crash(old)
        cluster.run_until_leader(timeout=5.0)
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 2)
        faults.recover(old)
        cluster.run_for(3.0)
        server = cluster.servers[old]
        assert server.engine.role is Role.FOLLOWER
        assert server.engine.commit_index >= 2
        assert_safe(cluster)


class TestUpToDateRule:
    def test_vote_denied_to_stale_candidate(self):
        """A site cut off before recent commits cannot win election."""
        cluster = started_cluster(FastRaftServer, seed=9)
        leader = cluster.leader()
        stale = next(n for n in cluster.servers if n != leader)
        faults = FaultInjector(cluster)
        others = [n for n in cluster.servers if n != stale]
        faults.partition([others, [stale]])
        client = cluster.add_client(site=leader)
        commit_n(cluster, client, 3)
        faults.heal_partition()
        cluster.run_for(3.0)
        # the stale node must not have displaced the leader's committed log
        assert_safe(cluster)
        assert cluster.servers[stale].engine.commit_index >= 3

    def test_self_approved_entries_do_not_make_a_log_up_to_date(self):
        """Candidate logs compare by leader-approved entries only."""
        cluster = started_cluster(FastRaftServer, seed=10)
        leader_name = cluster.leader()
        client = cluster.add_client(site="n0")
        commit_n(cluster, client, 2)
        cluster.run_for(0.5)
        target = next(n for n in cluster.servers if n != leader_name)
        engine = cluster.servers[target].engine
        # Forge a pile of self-approved entries on one follower.
        from repro.consensus.entry import EntryKind, InsertedBy, LogEntry
        for i in range(10, 20):
            engine._insert_into_log(i, LogEntry(
                entry_id=f"junk{i}", kind=EntryKind.DATA, payload=None,
                origin=target, term=engine.current_term,
                inserted_by=InsertedBy.SELF))
        request = engine._make_vote_request()
        # Its advertised position ignores the junk.
        assert request.last_log_index <= 2 + 1  # commits (+ possible noop)


class TestLossyElections:
    def test_cluster_stabilizes_under_loss_and_crash(self):
        cluster = started_cluster(FastRaftServer, seed=12,
                                  loss=BernoulliLoss(0.05))
        client = cluster.add_client(site="n0")
        workload = ClosedLoopWorkload(client, max_requests=15)
        workload.start()
        cluster.run_until(lambda: workload.completed_count >= 5,
                          timeout=60.0)
        FaultInjector(cluster).crash(cluster.leader())
        assert cluster.run_until(lambda: workload.done, timeout=120.0)
        assert_safe(cluster)
