"""Classic Raft under faults: crashes, partitions, recovery, loss."""

from repro.consensus.engine import Role
from repro.harness.faults import FaultInjector
from repro.harness.workload import ClosedLoopWorkload
from repro.net.loss import BernoulliLoss
from repro.raft.server import RaftServer
from tests.conftest import assert_safe, commit_n, started_cluster


class TestLeaderFailure:
    def test_new_leader_after_crash(self):
        cluster = started_cluster(RaftServer, seed=2)
        old = cluster.leader()
        FaultInjector(cluster).crash(old)
        new = cluster.run_until_leader(timeout=5.0)
        assert new != old
        assert_safe(cluster)

    def test_commits_continue_after_leader_crash(self):
        cluster = started_cluster(RaftServer, seed=2)
        client = cluster.add_client(site="n2" if cluster.leader() != "n2"
                                    else "n3")
        commit_n(cluster, client, 3)
        FaultInjector(cluster).crash(cluster.leader())
        cluster.run_until_leader(timeout=5.0)
        records = commit_n(cluster, client, 3)
        assert all(r.done for r in records)
        assert_safe(cluster)

    def test_crashed_leader_recovers_as_follower(self):
        cluster = started_cluster(RaftServer, seed=2)
        old = cluster.leader()
        faults = FaultInjector(cluster)
        faults.crash(old)
        cluster.run_until_leader(timeout=5.0)
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 2)
        faults.recover(old)
        cluster.run_for(2.0)
        server = cluster.servers[old]
        assert server.engine.role is Role.FOLLOWER
        # Caught up on entries committed while it was down.
        assert server.engine.commit_index >= 3
        assert_safe(cluster)

    def test_term_increases_after_election(self):
        cluster = started_cluster(RaftServer, seed=2)
        term_before = cluster.servers[cluster.leader()].engine.current_term
        FaultInjector(cluster).crash(cluster.leader())
        cluster.run_until_leader(timeout=5.0)
        term_after = cluster.servers[cluster.leader()].engine.current_term
        assert term_after > term_before


class TestFollowerFailure:
    def test_minority_crash_does_not_block(self):
        cluster = started_cluster(RaftServer, seed=4)
        followers = [n for n in cluster.servers if n != cluster.leader()]
        faults = FaultInjector(cluster)
        faults.crash(followers[0])
        faults.crash(followers[1])
        client = cluster.add_client(site=cluster.leader())
        records = commit_n(cluster, client, 3)
        assert all(r.done for r in records)
        assert_safe(cluster)

    def test_majority_crash_blocks_commits(self):
        cluster = started_cluster(RaftServer, seed=4)
        followers = [n for n in cluster.servers if n != cluster.leader()]
        faults = FaultInjector(cluster)
        for follower in followers[:3]:
            faults.crash(follower)
        client = cluster.add_client(site=cluster.leader(),
                                    proposal_timeout=0.4)
        record = client.submit({"op": "put", "key": "x", "value": 1})
        cluster.run_for(3.0)
        assert not record.done

    def test_recovered_follower_catches_up(self):
        cluster = started_cluster(RaftServer, seed=4)
        followers = [n for n in cluster.servers if n != cluster.leader()]
        faults = FaultInjector(cluster)
        faults.crash(followers[0])
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 5)
        faults.recover(followers[0])
        cluster.run_for(2.0)
        recovered = cluster.servers[followers[0]]
        assert recovered.engine.commit_index >= 6
        assert recovered.state_machine.snapshot() == {
            f"k{i}": i for i in range(5)}
        assert_safe(cluster)


class TestPartition:
    def test_majority_side_keeps_committing(self):
        cluster = started_cluster(RaftServer, seed=6)
        leader = cluster.leader()
        others = [n for n in cluster.servers if n != leader]
        majority = [leader] + others[:2]
        minority = others[2:]
        FaultInjector(cluster).partition([majority, minority])
        client = cluster.add_client(site=leader)
        records = commit_n(cluster, client, 3)
        assert all(r.done for r in records)
        assert_safe(cluster)

    def test_minority_leader_deposed_on_heal(self):
        cluster = started_cluster(RaftServer, seed=6)
        leader = cluster.leader()
        others = [n for n in cluster.servers if n != leader]
        faults = FaultInjector(cluster)
        # Old leader stranded with one follower; majority elects fresh.
        faults.partition([[leader, others[0]], others[1:]])
        assert cluster.run_until(
            lambda: any(cluster.servers[n].engine.role is Role.LEADER
                        for n in others[1:]), timeout=10.0)
        faults.heal_partition()
        cluster.run_for(2.0)
        live_leaders = [n for n, s in cluster.servers.items()
                        if s.engine.role is Role.LEADER]
        assert len(live_leaders) == 1
        assert live_leaders[0] in others[1:]
        assert_safe(cluster)

    def test_no_commits_in_minority_partition(self):
        cluster = started_cluster(RaftServer, seed=6)
        leader = cluster.leader()
        others = [n for n in cluster.servers if n != leader]
        FaultInjector(cluster).partition([[leader, others[0]], others[1:]])
        client = cluster.add_client(site=leader, proposal_timeout=0.4)
        record = client.submit({"op": "put", "key": "split", "value": 1})
        cluster.run_for(3.0)
        assert not record.done
        assert_safe(cluster)


class TestMessageLoss:
    def test_commits_under_moderate_loss(self):
        cluster = started_cluster(RaftServer, seed=8,
                                  loss=BernoulliLoss(0.05))
        client = cluster.add_client(site="n0")
        workload = ClosedLoopWorkload(client, max_requests=20)
        workload.start()
        assert cluster.run_until(lambda: workload.done, timeout=60.0)
        assert_safe(cluster)

    def test_latency_stays_flat_under_loss(self):
        """The paper's Fig. 3 observation: classic Raft's latency barely
        moves as loss grows (its quorum tolerates drops)."""
        def mean_latency(loss_rate, seed):
            cluster = started_cluster(
                RaftServer, seed=seed,
                loss=BernoulliLoss(loss_rate) if loss_rate else None)
            client = cluster.add_client(site="n0")
            workload = ClosedLoopWorkload(client, max_requests=30)
            workload.start()
            assert cluster.run_until(lambda: workload.done, timeout=90.0)
            latencies = workload.latencies()
            return sum(latencies) / len(latencies)

        clean = mean_latency(0.0, seed=11)
        lossy = mean_latency(0.05, seed=11)
        assert lossy < clean * 1.8
