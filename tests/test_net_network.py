"""Tests for the network fabric."""

import pytest

from repro.errors import NetworkError
from repro.net.latency import ConstantLatency
from repro.net.loss import BernoulliLoss
from repro.net.network import Network
from repro.sim.actor import Actor
from repro.sim.loop import SimLoop
from repro.sim.rng import RngRegistry


class Sink(Actor):
    def __init__(self, loop, name):
        super().__init__(loop, name)
        self.received = []

    def on_message(self, message, sender):
        self.received.append((self.now(), message, sender))


def make_net(loss=None, delay=0.01):
    loop = SimLoop()
    net = Network(loop, RngRegistry(0), ConstantLatency(delay), loss)
    actors = {}
    for name in ("a", "b", "c"):
        actor = Sink(loop, name)
        net.register(actor)
        actors[name] = actor
    return loop, net, actors


class TestDelivery:
    def test_unicast_delivers_after_latency(self):
        loop, net, actors = make_net()
        net.send("a", "b", "hello")
        loop.run_until(0.005)
        assert actors["b"].received == []
        loop.run_until(0.02)
        assert actors["b"].received == [(0.01, "hello", "a")]

    def test_broadcast_reaches_all(self):
        loop, net, actors = make_net()
        net.broadcast("a", ["a", "b", "c"], "ping")
        loop.run_until(0.02)
        assert all(len(actors[n].received) == 1 for n in ("a", "b", "c"))

    def test_broadcast_exclude_self(self):
        loop, net, actors = make_net()
        net.broadcast("a", ["a", "b"], "ping", include_self=False)
        loop.run_until(0.02)
        assert actors["a"].received == []
        assert len(actors["b"].received) == 1

    def test_send_local_is_immediate_and_lossless(self):
        loop, net, actors = make_net(loss=BernoulliLoss(1.0))
        net.send_local("a", "b", "direct")
        loop.run_until(0.001)
        assert len(actors["b"].received) == 1

    def test_unknown_destination_is_dead_letter(self):
        loop, net, actors = make_net()
        net.send("a", "ghost", "boo")
        loop.run_until(1.0)
        assert net.stats.dead_letter == 1

    def test_dead_actor_counts_dead_letter(self):
        loop, net, actors = make_net()
        actors["b"].kill()
        net.send("a", "b", "hi")
        loop.run_until(1.0)
        assert actors["b"].received == []
        assert net.stats.dead_letter == 1

    def test_duplicate_registration_rejected(self):
        loop, net, actors = make_net()
        with pytest.raises(NetworkError):
            net.register(Sink(loop, "a"))

    def test_replace_rebinds_address(self):
        loop, net, actors = make_net()
        fresh = Sink(loop, "b")
        net.replace(fresh)
        net.send("a", "b", "hi")
        loop.run_until(1.0)
        assert len(fresh.received) == 1
        assert actors["b"].received == []


class TestLoss:
    def test_full_loss_drops_everything(self):
        loop, net, actors = make_net(loss=BernoulliLoss(1.0))
        for _ in range(10):
            net.send("a", "b", "x")
        loop.run_until(1.0)
        assert actors["b"].received == []
        assert net.stats.dropped == 10

    def test_loss_statistics(self):
        loop, net, actors = make_net(loss=BernoulliLoss(0.2))
        for _ in range(2000):
            net.send("a", "b", "x")
        loop.run_until(1.0)
        assert net.stats.loss_fraction == pytest.approx(0.2, abs=0.03)

    def test_set_loss_mid_run(self):
        loop, net, actors = make_net()
        net.send("a", "b", "1")
        loop.run_until(0.02)
        net.set_loss(BernoulliLoss(1.0))
        net.send("a", "b", "2")
        loop.run_until(0.05)
        assert len(actors["b"].received) == 1


class TestDisconnect:
    def test_disconnected_receives_nothing(self):
        loop, net, actors = make_net()
        net.disconnect("b")
        net.send("a", "b", "x")
        loop.run_until(1.0)
        assert actors["b"].received == []
        assert net.stats.blocked == 1

    def test_disconnected_sends_nothing(self):
        loop, net, actors = make_net()
        net.disconnect("b")
        net.send("b", "a", "x")
        loop.run_until(1.0)
        assert actors["a"].received == []

    def test_reconnect_restores(self):
        loop, net, actors = make_net()
        net.disconnect("b")
        net.reconnect("b")
        net.send("a", "b", "x")
        loop.run_until(1.0)
        assert len(actors["b"].received) == 1

    def test_in_flight_message_cut_by_disconnect(self):
        loop, net, actors = make_net(delay=0.1)
        net.send("a", "b", "x")
        loop.run_until(0.05)
        net.disconnect("b")
        loop.run_until(1.0)
        assert actors["b"].received == []


class TestPartition:
    def test_cross_group_blocked(self):
        loop, net, actors = make_net()
        net.partition([["a", "b"], ["c"]])
        net.send("a", "b", "in-group")
        net.send("a", "c", "cross")
        loop.run_until(1.0)
        assert len(actors["b"].received) == 1
        assert actors["c"].received == []

    def test_unlisted_node_is_isolated(self):
        loop, net, actors = make_net()
        net.partition([["a"]])
        net.send("a", "b", "x")
        loop.run_until(1.0)
        assert actors["b"].received == []

    def test_heal_partition(self):
        loop, net, actors = make_net()
        net.partition([["a"], ["b"]])
        net.heal_partition()
        net.send("a", "b", "x")
        loop.run_until(1.0)
        assert len(actors["b"].received) == 1

    def test_node_in_two_groups_rejected(self):
        loop, net, actors = make_net()
        with pytest.raises(NetworkError):
            net.partition([["a", "b"], ["b", "c"]])


class TestStats:
    def test_by_type_counting(self):
        loop, net, actors = make_net()
        net.send("a", "b", "text")
        net.send("a", "b", 42)
        loop.run_until(1.0)
        assert net.stats.by_type["str"] == 1
        assert net.stats.by_type["int"] == 1
        assert net.stats.delivered == 2

    def test_snapshot_keys(self):
        loop, net, actors = make_net()
        snap = net.stats.snapshot()
        assert set(snap) == {"sent", "delivered", "dropped", "blocked",
                             "dead_letter", "bytes_sent"}
