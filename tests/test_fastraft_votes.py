"""Tests for the possibleEntries vote books."""

from repro.consensus.entry import EntryKind, InsertedBy, LogEntry
from repro.fastraft.votes import NULL_ID, PossibleEntries


def entry(entry_id):
    return LogEntry(entry_id=entry_id, kind=EntryKind.DATA, payload=None,
                    origin="n0", term=1, inserted_by=InsertedBy.SELF)


class TestVoting:
    def test_votes_accumulate(self):
        book = PossibleEntries()
        book.add_vote(1, entry("a"), "n1")
        book.add_vote(1, entry("a"), "n2")
        record = book.record_for(1, "a")
        assert record.count == 2
        assert record.voters == {"n1", "n2"}

    def test_revote_same_entry_not_double_counted(self):
        book = PossibleEntries()
        book.add_vote(1, entry("a"), "n1")
        book.add_vote(1, entry("a"), "n1")
        assert book.record_for(1, "a").count == 1

    def test_revote_different_entry_moves_vote(self):
        """A site whose slot was overwritten revotes; old vote removed."""
        book = PossibleEntries()
        book.add_vote(1, entry("a"), "n1")
        book.add_vote(1, entry("b"), "n1")
        assert book.record_for(1, "a").count == 0
        assert book.record_for(1, "b").count == 1

    def test_voters_at_union(self):
        book = PossibleEntries()
        book.add_vote(1, entry("a"), "n1")
        book.add_vote(1, entry("b"), "n2")
        assert book.voters_at(1) == {"n1", "n2"}

    def test_indices(self):
        book = PossibleEntries()
        book.add_vote(3, entry("a"), "n1")
        book.add_vote(1, entry("b"), "n2")
        assert book.indices() == [1, 3]


class TestCandidates:
    def test_ordered_by_votes(self):
        book = PossibleEntries()
        book.add_vote(1, entry("a"), "n1")
        book.add_vote(1, entry("b"), "n2")
        book.add_vote(1, entry("b"), "n3")
        candidates = book.candidates(1)
        assert candidates[0].entry.entry_id == "b"
        assert candidates[1].entry.entry_id == "a"

    def test_tie_breaks_deterministic(self):
        book = PossibleEntries()
        book.add_vote(1, entry("zz"), "n1")
        book.add_vote(1, entry("aa"), "n2")
        assert book.candidates(1)[0].entry.entry_id == "aa"

    def test_null_loses_ties(self):
        book = PossibleEntries()
        book.add_vote(1, entry("a"), "n1")
        book.add_vote(2, entry("a"), "n2")  # same entry at another index
        book.add_vote(2, entry("b"), "n3")
        book.null_out("a", except_index=1)
        candidates = book.candidates(2)
        assert candidates[0].entry.entry_id == "b"
        assert candidates[1].is_null


class TestNullOut:
    def test_null_out_moves_other_indices_to_null(self):
        book = PossibleEntries()
        book.add_vote(1, entry("dup"), "n1")
        book.add_vote(3, entry("dup"), "n2")
        book.add_vote(3, entry("dup"), "n3")
        book.null_out("dup", except_index=1)
        assert book.record_for(1, "dup").count == 1  # untouched
        assert book.record_for(3, "dup") is None
        null_record = book.record_for(3, NULL_ID)
        assert null_record.voters == {"n2", "n3"}

    def test_null_votes_count_toward_quorum(self):
        book = PossibleEntries()
        book.add_vote(2, entry("x"), "n1")
        book.null_out("x", except_index=9)
        assert book.voters_at(2) == {"n1"}


class TestMaintenance:
    def test_drop_through(self):
        book = PossibleEntries()
        book.add_vote(1, entry("a"), "n1")
        book.add_vote(2, entry("b"), "n1")
        book.add_vote(5, entry("c"), "n1")
        book.drop_through(2)
        assert book.indices() == [5]

    def test_forget_voter(self):
        book = PossibleEntries()
        book.add_vote(1, entry("a"), "n1")
        book.add_vote(1, entry("a"), "n2")
        book.forget_voter("n1")
        assert book.record_for(1, "a").voters == {"n2"}

    def test_clear(self):
        book = PossibleEntries()
        book.add_vote(1, entry("a"), "n1")
        book.clear()
        assert book.indices() == []
