"""Tests for topology construction."""

import pytest

from repro.errors import NetworkError
from repro.net.topology import Topology


class TestSingleRegion:
    def test_all_in_one_region(self):
        topo = Topology.single_region(["a", "b", "c"], region="us")
        assert topo.regions == ["us"]
        assert topo.nodes == ["a", "b", "c"]
        assert topo.region_of("b") == "us"


class TestEvenClusters:
    def test_fig5_layout(self):
        topo = Topology.even_clusters(20, ["r0", "r1", "r2", "r3"])
        assert len(topo.nodes) == 20
        for region in ("r0", "r1", "r2", "r3"):
            assert len(topo.nodes_in_cluster(region)) == 5

    def test_cluster_equals_region(self):
        topo = Topology.even_clusters(4, ["x", "y"])
        for node in topo.nodes:
            assert topo.cluster_of(node) == topo.region_of(node)

    def test_uneven_split_rejected(self):
        with pytest.raises(NetworkError):
            Topology.even_clusters(10, ["a", "b", "c"])

    def test_empty_regions_rejected(self):
        with pytest.raises(NetworkError):
            Topology.even_clusters(10, [])

    def test_node_naming(self):
        topo = Topology.even_clusters(4, ["a", "b"], name_prefix="site")
        assert topo.nodes == ["site0", "site1", "site2", "site3"]


class TestMutation:
    def test_add_node(self):
        topo = Topology()
        topo.add_node("n0", region="us", cluster="c1")
        assert topo.cluster_of("n0") == "c1"
        assert topo.region_of("n0") == "us"

    def test_cluster_defaults_to_region(self):
        topo = Topology()
        topo.add_node("n0", region="us")
        assert topo.cluster_of("n0") == "us"

    def test_duplicate_placement_rejected(self):
        topo = Topology()
        topo.add_node("n0", region="us")
        with pytest.raises(NetworkError):
            topo.add_node("n0", region="eu")

    def test_unknown_node_rejected(self):
        topo = Topology()
        with pytest.raises(NetworkError):
            topo.region_of("ghost")
        with pytest.raises(NetworkError):
            topo.cluster_of("ghost")
