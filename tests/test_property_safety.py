"""Property-based safety testing: randomized fault schedules.

Hypothesis generates whole failure scenarios -- loss rates, crash/recover
times, silent leaves -- runs them on the simulator, and checks the
paper's safety invariants (Definition 2.1 and the supporting lemmas) on
whatever state results. Liveness is deliberately NOT asserted here (the
paper only guarantees it conditionally); safety must hold always.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fastraft.server import FastRaftServer
from repro.harness.builder import build_cluster
from repro.harness.checkers import run_safety_checks
from repro.harness.faults import FaultInjector
from repro.harness.workload import ClosedLoopWorkload
from repro.net.loss import BernoulliLoss
from repro.raft.server import RaftServer
from repro.smr.kv import KVStateMachine

SCENARIO_SETTINGS = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])

fault_plans = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=6.0),   # when
        st.sampled_from(["crash", "recover", "silent_leave",
                         "silent_return"]),
        st.integers(min_value=0, max_value=4),     # which site
    ),
    max_size=5)


def run_scenario(server_cls, seed, loss_rate, plan, duration=10.0):
    # Random schedules include silent leaves of sites that are actually
    # alive (indistinguishable from partitions), so the paper's degraded
    # reconfiguration must be off for unconditional safety -- the hazard
    # itself is demonstrated by a dedicated test in
    # tests/test_fastraft_membership.py.
    from repro.consensus.timing import TimingConfig
    timing = TimingConfig(allow_degraded_reconfig=False)
    cluster = build_cluster(
        server_cls, n_sites=5, seed=seed, timing=timing,
        loss=BernoulliLoss(loss_rate) if loss_rate else None,
        state_machine_factory=KVStateMachine)
    cluster.start_all()
    faults = FaultInjector(cluster)
    crashed: set[str] = set()
    gone: set[str] = set()

    def apply_fault(kind: str, site: str) -> None:
        # Keep the schedule legal (no double crash etc.); illegal steps
        # become no-ops rather than invalidating the example.
        if kind == "crash" and site not in crashed:
            crashed.add(site)
            faults.crash(site)
        elif kind == "recover" and site in crashed:
            crashed.discard(site)
            faults.recover(site)
        elif kind == "silent_leave" and site not in gone:
            gone.add(site)
            faults.silent_leave(site)
        elif kind == "silent_return" and site in gone:
            gone.discard(site)
            faults.silent_return(site)

    for when, kind, index in plan:
        site = f"n{index}"
        cluster.loop.call_at(when, apply_fault, kind, site)
    client = cluster.add_client(site="n0", proposal_timeout=0.5)
    workload = ClosedLoopWorkload(client, max_requests=100)
    workload.start()
    cluster.run_for(duration)
    run_safety_checks(cluster.servers.values(), cluster.trace)
    return cluster, workload


class TestRandomizedFaultSchedules:
    @SCENARIO_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10 ** 6),
           loss=st.sampled_from([0.0, 0.02, 0.05, 0.10]),
           plan=fault_plans)
    def test_fastraft_safety_under_random_faults(self, seed, loss, plan):
        run_scenario(FastRaftServer, seed, loss, plan)

    @SCENARIO_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10 ** 6),
           loss=st.sampled_from([0.0, 0.05]),
           plan=fault_plans)
    def test_classic_raft_safety_under_random_faults(self, seed, loss,
                                                     plan):
        run_scenario(RaftServer, seed, loss, plan)

    @SCENARIO_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10 ** 6))
    def test_fastraft_liveness_without_faults(self, seed):
        """Under the paper's liveness conditions (no failures, reliable
        enough delivery) every proposal commits."""
        cluster, workload = run_scenario(FastRaftServer, seed,
                                         loss_rate=0.0, plan=[],
                                         duration=15.0)
        assert workload.completed_count >= 100

    @SCENARIO_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10 ** 6),
           partition_at=st.floats(min_value=1.0, max_value=3.0),
           heal_at=st.floats(min_value=4.0, max_value=6.0),
           split=st.integers(min_value=1, max_value=4))
    def test_fastraft_safety_across_partitions(self, seed, partition_at,
                                               heal_at, split):
        from repro.consensus.timing import TimingConfig
        cluster = build_cluster(FastRaftServer, n_sites=5, seed=seed,
                                timing=TimingConfig(
                                    allow_degraded_reconfig=False),
                                state_machine_factory=KVStateMachine)
        cluster.start_all()
        names = sorted(cluster.servers)
        faults = FaultInjector(cluster)
        cluster.loop.call_at(
            partition_at,
            lambda: faults.partition([names[:split], names[split:]]))
        cluster.loop.call_at(heal_at, faults.heal_partition)
        client = cluster.add_client(site="n0", proposal_timeout=0.5)
        workload = ClosedLoopWorkload(client, max_requests=60)
        workload.start()
        cluster.run_for(12.0)
        run_safety_checks(cluster.servers.values(), cluster.trace)
