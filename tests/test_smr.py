"""Tests for the state-machine layer and the client session."""

import pytest

from repro.fastraft.server import FastRaftServer
from repro.smr.kv import KVCommand, KVStateMachine
from repro.smr.machine import AppendOnlyLog, CounterMachine
from tests.conftest import started_cluster


class TestMachines:
    def test_append_only_log_orders(self):
        machine = AppendOnlyLog()
        machine.apply("a")
        machine.apply("b")
        assert machine.snapshot() == ("a", "b")

    def test_counter(self):
        machine = CounterMachine()
        machine.apply({"op": "add", "amount": 3})
        machine.apply({"op": "add"})
        assert machine.snapshot() == 4

    def test_counter_rejects_unknown(self):
        with pytest.raises(ValueError):
            CounterMachine().apply({"op": "mul"})

    def test_kv_put_get_delete(self):
        machine = KVStateMachine()
        machine.apply(KVCommand.put("a", 1))
        assert machine.get("a") == 1
        machine.apply(KVCommand.delete("a"))
        assert machine.get("a") is None
        assert machine.get("a", "fallback") == "fallback"

    def test_kv_append(self):
        machine = KVStateMachine()
        machine.apply(KVCommand.append("log", "x"))
        machine.apply(KVCommand.append("log", "y"))
        assert machine.get("log") == "xy"

    def test_kv_snapshot_is_copy(self):
        machine = KVStateMachine()
        machine.apply(KVCommand.put("a", 1))
        snap = machine.snapshot()
        snap["a"] = 99
        assert machine.get("a") == 1

    def test_kv_rejects_bad_commands(self):
        with pytest.raises(ValueError):
            KVStateMachine().apply("not-a-dict")
        with pytest.raises(ValueError):
            KVStateMachine().apply({"op": "explode"})

    def test_kv_len(self):
        machine = KVStateMachine()
        machine.apply(KVCommand.put("a", 1))
        machine.apply(KVCommand.put("b", 2))
        assert len(machine) == 2


class TestClient:
    def test_latency_measured_from_first_submission(self):
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0")
        record = cluster.propose_and_wait(client, KVCommand.put("x", 1))
        assert record.latency is not None
        assert record.latency == record.committed_at - record.submitted_at
        assert record.attempts == 1

    def test_request_ids_unique_and_ordered(self):
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0")
        r1 = client.submit(KVCommand.put("a", 1))
        r2 = client.submit(KVCommand.put("b", 2))
        assert r1.request_id != r2.request_id

    def test_retry_on_timeout_preserves_request_id(self):
        """With the leader crashed mid-request, the client retries until a
        new leader commits; the entry applies exactly once."""
        cluster = started_cluster(FastRaftServer, seed=6)
        from repro.harness.faults import FaultInjector
        leader = cluster.leader()
        client = cluster.add_client(
            site=next(n for n in cluster.servers if n != leader),
            proposal_timeout=0.5)
        FaultInjector(cluster).crash(leader)
        record = client.submit(KVCommand.put("retry", 7))
        assert cluster.run_until(lambda: record.done, timeout=30.0)
        assert record.attempts >= 1
        cluster.run_for(1.0)
        live = cluster.live_servers()
        values = [s.state_machine.get("retry") for s in live]
        assert all(v == 7 for v in values)

    def test_max_attempts_abandons(self):
        cluster = started_cluster(FastRaftServer, seed=1)
        # isolate the attached site so nothing ever commits
        cluster.network.disconnect("n0")
        client = cluster.add_client(site="n0", proposal_timeout=0.2,
                                    max_attempts=3)
        # attached-site traffic is local, but n0 cannot reach the cluster
        record = client.submit(KVCommand.put("lost", 1))
        cluster.run_for(5.0)
        assert not record.done
        assert record in client.abandoned
        assert client.pending_count == 0

    def test_completed_ordering(self):
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0")
        for i in range(3):
            cluster.propose_and_wait(client, KVCommand.put(f"k{i}", i))
        assert [r.command["key"] for r in client.completed] == [
            "k0", "k1", "k2"]

    def test_attach_to_other_site(self):
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0")
        client.attach_to("n3")
        record = cluster.propose_and_wait(client, KVCommand.put("m", 1))
        assert record.done

    def test_kill_cancels_timers(self):
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0", proposal_timeout=0.1)
        cluster.network.disconnect("n0")
        client.submit(KVCommand.put("x", 1))
        client.kill()
        pending_before = cluster.loop.pending_count()
        cluster.run_for(2.0)
        # no retry storm from a dead client
        assert client.pending_count == 1  # record remains, no timer
