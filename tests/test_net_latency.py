"""Tests for latency models."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import NetworkError
from repro.net.latency import (
    ConstantLatency,
    RegionLatencyModel,
    SharedLinkBandwidthModel,
    UniformLatency,
)


class TestConstantLatency:
    def test_sample_is_constant(self):
        model = ConstantLatency(0.01)
        rng = random.Random(0)
        assert model.sample(rng, "a", "b") == 0.01
        assert model.sample(rng, "b", "a") == 0.01

    def test_negative_rejected(self):
        with pytest.raises(NetworkError):
            ConstantLatency(-1)


class TestUniformLatency:
    def test_samples_within_range(self):
        model = UniformLatency(0.001, 0.005)
        rng = random.Random(0)
        for _ in range(200):
            assert 0.001 <= model.sample(rng, "a", "b") < 0.005

    def test_bad_range_rejected(self):
        with pytest.raises(NetworkError):
            UniformLatency(0.005, 0.001)
        with pytest.raises(NetworkError):
            UniformLatency(-0.001, 0.005)


class TestRegionLatencyModel:
    def make(self, jitter=0.0):
        return RegionLatencyModel(
            node_regions={"n0": "us", "n1": "us", "n2": "eu"},
            rtt_matrix={("us", "eu"): 0.080},
            intra_rtt=0.001, jitter=jitter)

    def test_intra_region_uses_intra_rtt(self):
        model = self.make()
        rng = random.Random(0)
        assert model.sample(rng, "n0", "n1") == pytest.approx(0.0005)

    def test_inter_region_is_half_rtt(self):
        model = self.make()
        rng = random.Random(0)
        assert model.sample(rng, "n0", "n2") == pytest.approx(0.040)

    def test_symmetric(self):
        model = self.make()
        rng = random.Random(0)
        assert (model.sample(rng, "n0", "n2")
                == model.sample(rng, "n2", "n0"))

    def test_jitter_bounds(self):
        model = self.make(jitter=0.1)
        rng = random.Random(0)
        for _ in range(200):
            delay = model.sample(rng, "n0", "n2")
            assert 0.036 <= delay <= 0.044

    def test_unknown_node_rejected(self):
        model = self.make()
        with pytest.raises(NetworkError):
            model.sample(random.Random(0), "nX", "n0")

    def test_missing_pair_rejected(self):
        model = RegionLatencyModel({"a": "r1", "b": "r2"}, {},
                                   intra_rtt=0.001)
        with pytest.raises(NetworkError):
            model.sample(random.Random(0), "a", "b")

    def test_add_node_later(self):
        model = self.make()
        model.add_node("n9", "eu")
        rng = random.Random(0)
        assert model.sample(rng, "n9", "n2") == pytest.approx(0.0005)

    def test_region_of(self):
        model = self.make()
        assert model.region_of("n2") == "eu"

    def test_negative_rtt_rejected(self):
        with pytest.raises(NetworkError):
            RegionLatencyModel({"a": "x"}, {("x", "y"): -1.0})

    def test_bad_jitter_rejected(self):
        with pytest.raises(NetworkError):
            RegionLatencyModel({"a": "x"}, {}, jitter=1.5)


class TestSharedLinkBandwidthModel:
    """Congestion-aware variant: concurrent transfers on one directed
    link queue behind each other instead of being charged independently."""

    def make(self):
        return SharedLinkBandwidthModel(ConstantLatency(0.010),
                                        bandwidth=1000.0)

    def test_single_transfer_matches_uncongested(self):
        model = self.make()
        rng = random.Random(0)
        assert model.transfer_delay(rng, "a", "b", 500, now=0.0) == \
            pytest.approx(0.010 + 0.5)

    def test_overlapping_transfers_contend(self):
        model = self.make()
        rng = random.Random(0)
        first = model.transfer_delay(rng, "a", "b", 500, now=0.0)
        second = model.transfer_delay(rng, "a", "b", 500, now=0.0)
        # The second message waits for the first to finish serializing.
        assert first == pytest.approx(0.010 + 0.5)
        assert second == pytest.approx(0.010 + 1.0)

    def test_queue_drains_with_time(self):
        model = self.make()
        rng = random.Random(0)
        model.transfer_delay(rng, "a", "b", 500, now=0.0)
        # At t=10 the 0.5s transfer has long finished: no queueing left.
        late = model.transfer_delay(rng, "a", "b", 500, now=10.0)
        assert late == pytest.approx(0.010 + 0.5)

    def test_links_are_independent(self):
        model = self.make()
        rng = random.Random(0)
        model.transfer_delay(rng, "a", "b", 1000, now=0.0)
        other_dir = model.transfer_delay(rng, "b", "a", 500, now=0.0)
        other_pair = model.transfer_delay(rng, "a", "c", 500, now=0.0)
        assert other_dir == pytest.approx(0.010 + 0.5)
        assert other_pair == pytest.approx(0.010 + 0.5)

    def test_two_overlapping_chunk_windows_contend_on_the_wire(self):
        """Two bulk messages sent at the same instant over a Network with
        the shared-link model arrive serially, not in parallel."""
        from repro.net.network import Network
        from repro.sim.loop import SimLoop
        from repro.sim.rng import RngRegistry
        from repro.sim.actor import Actor

        class Sink(Actor):
            def __init__(self, loop):
                super().__init__(loop, "dst")
                self.arrivals = []

            def on_message(self, message, sender):
                self.arrivals.append(self._loop.now())

        class Src(Actor):
            def __init__(self, loop):
                super().__init__(loop, "src")

            def on_message(self, message, sender):
                pass

        loop = SimLoop()
        model = SharedLinkBandwidthModel(ConstantLatency(0.0),
                                         bandwidth=1000.0)
        network = Network(loop, RngRegistry(0), model)
        network.register(Src(loop))
        sink = Sink(loop)
        network.register(sink)
        network.send("src", "dst", "x" * 82)   # ~100 B with overhead
        network.send("src", "dst", "y" * 82)
        loop.run_until_idle()
        assert len(sink.arrivals) == 2
        # Second arrival is one full serialization later than the first.
        assert sink.arrivals[1] - sink.arrivals[0] == pytest.approx(
            sink.arrivals[0], rel=0.01)


class _CountingRandom(random.Random):
    """random.Random that counts core draws (uniform() routes through
    random(), so one count covers both entry points)."""

    def __init__(self, seed):
        super().__init__(seed)
        self.draws = 0

    def random(self):
        self.draws += 1
        return super().random()


class TestFlatSamplerEquivalence:
    """The flat jittered sampler must be a pure representation change:
    same delays bit-for-bit, same RNG draw count, for any topology."""

    @staticmethod
    def _build(node_regions, rtt_matrix, jitter, legacy):
        from repro import perf
        with perf.legacy_core(legacy):
            return RegionLatencyModel(node_regions, rtt_matrix,
                                      jitter=jitter)

    @given(
        n_regions=st.integers(min_value=1, max_value=4),
        n_nodes=st.integers(min_value=2, max_value=8),
        rtts=st.lists(st.floats(min_value=0.001, max_value=0.4,
                                allow_nan=False), min_size=10, max_size=10),
        jitter=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_messages=st.integers(min_value=1, max_value=200),
    )
    @settings(deadline=None, max_examples=60)
    def test_delays_and_draw_count_identical(self, n_regions, n_nodes,
                                             rtts, jitter, seed,
                                             n_messages):
        regions = [f"r{i}" for i in range(n_regions)]
        node_regions = {f"n{i}": regions[i % n_regions]
                        for i in range(n_nodes)}
        rtt_iter = iter(rtts * 2)
        rtt_matrix = {(a, b): next(rtt_iter)
                      for i, a in enumerate(regions)
                      for b in regions[i:]}
        legacy_model = self._build(node_regions, rtt_matrix, jitter,
                                   legacy=True)
        current_model = self._build(node_regions, rtt_matrix, jitter,
                                    legacy=False)
        if jitter:
            # The flat sampler is only installed on the current core;
            # the legacy-constructed model keeps the class method.
            assert (current_model.sample.__func__
                    is RegionLatencyModel._sample_flat)
            assert "sample" not in vars(legacy_model)
        pair_rng = random.Random(seed ^ 0x5EED)
        nodes = sorted(node_regions)
        pairs = [(pair_rng.choice(nodes), pair_rng.choice(nodes))
                 for _ in range(n_messages)]
        rng_legacy = _CountingRandom(seed)
        rng_current = _CountingRandom(seed)
        legacy_delays = [legacy_model.sample(rng_legacy, s, d)
                         for s, d in pairs]
        current_delays = [current_model.sample(rng_current, s, d)
                          for s, d in pairs]
        assert legacy_delays == current_delays  # bit-identical floats
        assert rng_legacy.draws == rng_current.draws
        expected_draws = n_messages if jitter else 0
        assert rng_legacy.draws == expected_draws
