"""Tests for latency models."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.latency import (
    ConstantLatency,
    RegionLatencyModel,
    SharedLinkBandwidthModel,
    UniformLatency,
)


class TestConstantLatency:
    def test_sample_is_constant(self):
        model = ConstantLatency(0.01)
        rng = random.Random(0)
        assert model.sample(rng, "a", "b") == 0.01
        assert model.sample(rng, "b", "a") == 0.01

    def test_negative_rejected(self):
        with pytest.raises(NetworkError):
            ConstantLatency(-1)


class TestUniformLatency:
    def test_samples_within_range(self):
        model = UniformLatency(0.001, 0.005)
        rng = random.Random(0)
        for _ in range(200):
            assert 0.001 <= model.sample(rng, "a", "b") < 0.005

    def test_bad_range_rejected(self):
        with pytest.raises(NetworkError):
            UniformLatency(0.005, 0.001)
        with pytest.raises(NetworkError):
            UniformLatency(-0.001, 0.005)


class TestRegionLatencyModel:
    def make(self, jitter=0.0):
        return RegionLatencyModel(
            node_regions={"n0": "us", "n1": "us", "n2": "eu"},
            rtt_matrix={("us", "eu"): 0.080},
            intra_rtt=0.001, jitter=jitter)

    def test_intra_region_uses_intra_rtt(self):
        model = self.make()
        rng = random.Random(0)
        assert model.sample(rng, "n0", "n1") == pytest.approx(0.0005)

    def test_inter_region_is_half_rtt(self):
        model = self.make()
        rng = random.Random(0)
        assert model.sample(rng, "n0", "n2") == pytest.approx(0.040)

    def test_symmetric(self):
        model = self.make()
        rng = random.Random(0)
        assert (model.sample(rng, "n0", "n2")
                == model.sample(rng, "n2", "n0"))

    def test_jitter_bounds(self):
        model = self.make(jitter=0.1)
        rng = random.Random(0)
        for _ in range(200):
            delay = model.sample(rng, "n0", "n2")
            assert 0.036 <= delay <= 0.044

    def test_unknown_node_rejected(self):
        model = self.make()
        with pytest.raises(NetworkError):
            model.sample(random.Random(0), "nX", "n0")

    def test_missing_pair_rejected(self):
        model = RegionLatencyModel({"a": "r1", "b": "r2"}, {},
                                   intra_rtt=0.001)
        with pytest.raises(NetworkError):
            model.sample(random.Random(0), "a", "b")

    def test_add_node_later(self):
        model = self.make()
        model.add_node("n9", "eu")
        rng = random.Random(0)
        assert model.sample(rng, "n9", "n2") == pytest.approx(0.0005)

    def test_region_of(self):
        model = self.make()
        assert model.region_of("n2") == "eu"

    def test_negative_rtt_rejected(self):
        with pytest.raises(NetworkError):
            RegionLatencyModel({"a": "x"}, {("x", "y"): -1.0})

    def test_bad_jitter_rejected(self):
        with pytest.raises(NetworkError):
            RegionLatencyModel({"a": "x"}, {}, jitter=1.5)


class TestSharedLinkBandwidthModel:
    """Congestion-aware variant: concurrent transfers on one directed
    link queue behind each other instead of being charged independently."""

    def make(self):
        return SharedLinkBandwidthModel(ConstantLatency(0.010),
                                        bandwidth=1000.0)

    def test_single_transfer_matches_uncongested(self):
        model = self.make()
        rng = random.Random(0)
        assert model.transfer_delay(rng, "a", "b", 500, now=0.0) == \
            pytest.approx(0.010 + 0.5)

    def test_overlapping_transfers_contend(self):
        model = self.make()
        rng = random.Random(0)
        first = model.transfer_delay(rng, "a", "b", 500, now=0.0)
        second = model.transfer_delay(rng, "a", "b", 500, now=0.0)
        # The second message waits for the first to finish serializing.
        assert first == pytest.approx(0.010 + 0.5)
        assert second == pytest.approx(0.010 + 1.0)

    def test_queue_drains_with_time(self):
        model = self.make()
        rng = random.Random(0)
        model.transfer_delay(rng, "a", "b", 500, now=0.0)
        # At t=10 the 0.5s transfer has long finished: no queueing left.
        late = model.transfer_delay(rng, "a", "b", 500, now=10.0)
        assert late == pytest.approx(0.010 + 0.5)

    def test_links_are_independent(self):
        model = self.make()
        rng = random.Random(0)
        model.transfer_delay(rng, "a", "b", 1000, now=0.0)
        other_dir = model.transfer_delay(rng, "b", "a", 500, now=0.0)
        other_pair = model.transfer_delay(rng, "a", "c", 500, now=0.0)
        assert other_dir == pytest.approx(0.010 + 0.5)
        assert other_pair == pytest.approx(0.010 + 0.5)

    def test_two_overlapping_chunk_windows_contend_on_the_wire(self):
        """Two bulk messages sent at the same instant over a Network with
        the shared-link model arrive serially, not in parallel."""
        from repro.net.network import Network
        from repro.sim.loop import SimLoop
        from repro.sim.rng import RngRegistry
        from repro.sim.actor import Actor

        class Sink(Actor):
            def __init__(self, loop):
                super().__init__(loop, "dst")
                self.arrivals = []

            def on_message(self, message, sender):
                self.arrivals.append(self._loop.now())

        class Src(Actor):
            def __init__(self, loop):
                super().__init__(loop, "src")

            def on_message(self, message, sender):
                pass

        loop = SimLoop()
        model = SharedLinkBandwidthModel(ConstantLatency(0.0),
                                         bandwidth=1000.0)
        network = Network(loop, RngRegistry(0), model)
        network.register(Src(loop))
        sink = Sink(loop)
        network.register(sink)
        network.send("src", "dst", "x" * 82)   # ~100 B with overhead
        network.send("src", "dst", "y" * 82)
        loop.run_until_idle()
        assert len(sink.arrivals) == 2
        # Second arrival is one full serialization later than the first.
        assert sink.arrivals[1] - sink.arrivals[0] == pytest.approx(
            sink.arrivals[0], rel=0.01)
