"""Tests for latency models."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.latency import (
    ConstantLatency,
    RegionLatencyModel,
    UniformLatency,
)


class TestConstantLatency:
    def test_sample_is_constant(self):
        model = ConstantLatency(0.01)
        rng = random.Random(0)
        assert model.sample(rng, "a", "b") == 0.01
        assert model.sample(rng, "b", "a") == 0.01

    def test_negative_rejected(self):
        with pytest.raises(NetworkError):
            ConstantLatency(-1)


class TestUniformLatency:
    def test_samples_within_range(self):
        model = UniformLatency(0.001, 0.005)
        rng = random.Random(0)
        for _ in range(200):
            assert 0.001 <= model.sample(rng, "a", "b") < 0.005

    def test_bad_range_rejected(self):
        with pytest.raises(NetworkError):
            UniformLatency(0.005, 0.001)
        with pytest.raises(NetworkError):
            UniformLatency(-0.001, 0.005)


class TestRegionLatencyModel:
    def make(self, jitter=0.0):
        return RegionLatencyModel(
            node_regions={"n0": "us", "n1": "us", "n2": "eu"},
            rtt_matrix={("us", "eu"): 0.080},
            intra_rtt=0.001, jitter=jitter)

    def test_intra_region_uses_intra_rtt(self):
        model = self.make()
        rng = random.Random(0)
        assert model.sample(rng, "n0", "n1") == pytest.approx(0.0005)

    def test_inter_region_is_half_rtt(self):
        model = self.make()
        rng = random.Random(0)
        assert model.sample(rng, "n0", "n2") == pytest.approx(0.040)

    def test_symmetric(self):
        model = self.make()
        rng = random.Random(0)
        assert (model.sample(rng, "n0", "n2")
                == model.sample(rng, "n2", "n0"))

    def test_jitter_bounds(self):
        model = self.make(jitter=0.1)
        rng = random.Random(0)
        for _ in range(200):
            delay = model.sample(rng, "n0", "n2")
            assert 0.036 <= delay <= 0.044

    def test_unknown_node_rejected(self):
        model = self.make()
        with pytest.raises(NetworkError):
            model.sample(random.Random(0), "nX", "n0")

    def test_missing_pair_rejected(self):
        model = RegionLatencyModel({"a": "r1", "b": "r2"}, {},
                                   intra_rtt=0.001)
        with pytest.raises(NetworkError):
            model.sample(random.Random(0), "a", "b")

    def test_add_node_later(self):
        model = self.make()
        model.add_node("n9", "eu")
        rng = random.Random(0)
        assert model.sample(rng, "n9", "n2") == pytest.approx(0.0005)

    def test_region_of(self):
        model = self.make()
        assert model.region_of("n2") == "eu"

    def test_negative_rtt_rejected(self):
        with pytest.raises(NetworkError):
            RegionLatencyModel({"a": "x"}, {("x", "y"): -1.0})

    def test_bad_jitter_rejected(self):
        with pytest.raises(NetworkError):
            RegionLatencyModel({"a": "x"}, {}, jitter=1.5)
