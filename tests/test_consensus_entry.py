"""Tests for log entries and payloads."""

from repro.consensus.entry import (
    BatchPayload,
    ConfigPayload,
    EntryKind,
    GlobalStatePayload,
    InsertedBy,
    LogEntry,
    make_entry_id,
    make_noop,
)


def entry(entry_id="c1:1", term=1, inserted_by=InsertedBy.SELF,
          kind=EntryKind.DATA, payload="x", origin="n0"):
    return LogEntry(entry_id=entry_id, kind=kind, payload=payload,
                    origin=origin, term=term, inserted_by=inserted_by)


class TestLogEntry:
    def test_make_entry_id(self):
        assert make_entry_id("n0", 5) == "n0:5"

    def test_with_mark_changes_stamp_only(self):
        original = entry()
        marked = original.with_mark(4, InsertedBy.LEADER)
        assert marked.term == 4
        assert marked.inserted_by is InsertedBy.LEADER
        assert marked.entry_id == original.entry_id
        assert marked.payload == original.payload
        # immutable: original untouched
        assert original.term == 1
        assert original.inserted_by is InsertedBy.SELF

    def test_same_entry_by_id(self):
        a = entry(term=1)
        b = entry(term=9, inserted_by=InsertedBy.LEADER)
        assert a.same_entry(b)
        assert not a.same_entry(entry(entry_id="other"))

    def test_kind_predicates(self):
        assert entry(kind=EntryKind.CONFIG).is_config
        assert not entry().is_config
        assert make_noop("n0", 1).is_noop

    def test_noop_ids_unique(self):
        a = make_noop("n0", 1)
        b = make_noop("n0", 1)
        assert a.entry_id != b.entry_id


class TestConfigPayload:
    def test_members_sorted(self):
        payload = ConfigPayload(members=("b", "a", "c"))
        assert payload.members == ("a", "b", "c")


class TestGlobalStatePayload:
    def test_carries_inserts_and_commit(self):
        ge = entry(entry_id="batch1")
        payload = GlobalStatePayload(inserts=((3, ge),), global_commit=2)
        assert payload.inserts[0][0] == 3
        assert payload.global_commit == 2

    def test_empty_marker(self):
        payload = GlobalStatePayload(inserts=(), global_commit=7)
        assert payload.inserts == ()


class TestBatchPayload:
    def test_len_counts_entries(self):
        entries = tuple(entry(entry_id=f"e{i}") for i in range(3))
        payload = BatchPayload(cluster="us", sequence=1, entries=entries,
                               local_range=(4, 6))
        assert len(payload) == 3
        assert payload.local_range == (4, 6)
