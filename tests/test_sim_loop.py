"""Tests for the simulation loop (clock + scheduler)."""

import pytest

from repro.errors import SimulationError
from repro.sim.loop import MS, SimLoop


def test_time_starts_at_zero():
    assert SimLoop().now() == 0.0


def test_ms_constant():
    assert 100 * MS == pytest.approx(0.1)


def test_call_later_runs_at_offset():
    loop = SimLoop()
    seen = []
    loop.call_later(0.5, lambda: seen.append(loop.now()))
    loop.run_until(1.0)
    assert seen == [0.5]


def test_call_at_absolute_time():
    loop = SimLoop()
    seen = []
    loop.call_at(0.25, lambda: seen.append(loop.now()))
    loop.run_until(1.0)
    assert seen == [0.25]


def test_run_until_advances_clock_even_without_events():
    loop = SimLoop()
    loop.run_until(3.0)
    assert loop.now() == 3.0


def test_run_for_is_relative():
    loop = SimLoop()
    loop.run_for(1.0)
    loop.run_for(0.5)
    assert loop.now() == pytest.approx(1.5)


def test_events_run_in_time_order():
    loop = SimLoop()
    seen = []
    loop.call_later(0.3, lambda: seen.append("c"))
    loop.call_later(0.1, lambda: seen.append("a"))
    loop.call_later(0.2, lambda: seen.append("b"))
    loop.run_until(1.0)
    assert seen == ["a", "b", "c"]


def test_same_time_events_run_in_scheduling_order():
    loop = SimLoop()
    seen = []
    for tag in ("first", "second", "third"):
        loop.call_later(0.1, lambda t=tag: seen.append(t))
    loop.run_until(1.0)
    assert seen == ["first", "second", "third"]


def test_callback_args_passed():
    loop = SimLoop()
    seen = []
    loop.call_later(0.1, seen.append, 42)
    loop.run_until(1.0)
    assert seen == [42]


def test_cancel_prevents_execution():
    loop = SimLoop()
    seen = []
    handle = loop.call_later(0.1, lambda: seen.append(1))
    handle.cancel()
    loop.run_until(1.0)
    assert seen == []
    assert handle.cancelled


def test_cancel_is_idempotent():
    loop = SimLoop()
    handle = loop.call_later(0.1, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_events_scheduled_during_run_execute():
    loop = SimLoop()
    seen = []

    def outer():
        loop.call_later(0.2, lambda: seen.append("inner"))

    loop.call_later(0.1, outer)
    loop.run_until(1.0)
    assert seen == ["inner"]


def test_events_beyond_deadline_stay_queued():
    loop = SimLoop()
    seen = []
    loop.call_later(2.0, lambda: seen.append(1))
    loop.run_until(1.0)
    assert seen == []
    loop.run_until(2.5)
    assert seen == [1]


def test_negative_delay_rejected():
    loop = SimLoop()
    with pytest.raises(SimulationError):
        loop.call_later(-0.1, lambda: None)


def test_scheduling_in_past_rejected():
    loop = SimLoop()
    loop.run_until(1.0)
    with pytest.raises(SimulationError):
        loop.call_at(0.5, lambda: None)


def test_run_until_backwards_rejected():
    loop = SimLoop()
    loop.run_until(1.0)
    with pytest.raises(SimulationError):
        loop.run_until(0.5)


def test_run_until_idle_drains_everything():
    loop = SimLoop()
    seen = []
    loop.call_later(5.0, lambda: seen.append(1))
    loop.call_later(10.0, lambda: seen.append(2))
    executed = loop.run_until_idle()
    assert executed == 2
    assert seen == [1, 2]
    assert loop.now() == 10.0


def test_run_until_idle_event_cap():
    loop = SimLoop()

    def rearm():
        loop.call_later(1.0, rearm)

    loop.call_later(1.0, rearm)
    with pytest.raises(SimulationError):
        loop.run_until_idle(max_events=50)


def test_call_soon_runs_at_current_instant():
    loop = SimLoop()
    seen = []
    loop.run_until(1.0)
    loop.call_soon(lambda: seen.append(loop.now()))
    loop.run_until(1.0)
    assert seen == [1.0]


def test_pending_count_excludes_cancelled():
    loop = SimLoop()
    loop.call_later(1.0, lambda: None)
    handle = loop.call_later(2.0, lambda: None)
    handle.cancel()
    assert loop.pending_count() == 1


def test_events_processed_counter():
    loop = SimLoop()
    for _ in range(3):
        loop.call_later(0.1, lambda: None)
    loop.run_until(1.0)
    assert loop.events_processed == 3


def test_reentrant_run_rejected():
    loop = SimLoop()

    def nested():
        loop.run_until(5.0)

    loop.call_later(0.1, nested)
    with pytest.raises(SimulationError):
        loop.run_until(1.0)


def test_pending_count_is_live_counter():
    """pending_count is O(1): it tracks pushes, pops, and cancels."""
    loop = SimLoop()
    handles = [loop.call_later(float(i + 1), lambda: None)
               for i in range(10)]
    assert loop.pending_count() == 10
    for handle in handles[:4]:
        handle.cancel()
        handle.cancel()  # idempotent: must not double-decrement
    assert loop.pending_count() == 6
    loop.run_until(20.0)
    assert loop.pending_count() == 0


def test_cancel_after_run_does_not_corrupt_count():
    loop = SimLoop()
    handle = loop.call_later(1.0, lambda: None)
    loop.call_later(2.0, lambda: None)
    loop.run_until(1.5)  # pops the first handle
    handle.cancel()      # cancelling an executed handle is a no-op
    assert loop.pending_count() == 1


def test_heap_compacts_when_cancellations_dominate():
    loop = SimLoop(scheduler="heap")
    doomed = [loop.call_later(float(i + 1), lambda: None)
              for i in range(100)]
    keep = [loop.call_later(200.0 + i, lambda: None) for i in range(10)]
    for handle in doomed:
        handle.cancel()
    # More than half the heap was cancelled: it must have been compacted
    # (dead entries dropped), not left to linger at full size.
    assert len(loop._heap) < len(doomed) + len(keep) - 40
    assert loop.pending_count() == 10
    loop.run_until(300.0)
    assert loop.events_processed == 10


def test_wheel_compacts_when_cancellations_dominate():
    loop = SimLoop(scheduler="wheel")
    doomed = [loop.call_later(float(i + 1) / 10, lambda: None)
              for i in range(100)]
    keep = [loop.call_later(200.0 + i, lambda: None) for i in range(10)]
    for handle in doomed:
        handle.cancel()
    # Cancellations dominate: the wheel slots and overflow must have
    # been compacted (dead entries dropped), not left at full size.
    stored = sum(len(slot) for slot in loop._wheel) + len(loop._overflow)
    assert stored < len(doomed) + len(keep) - 40
    assert loop.pending_count() == 10
    loop.run_until(300.0)
    assert loop.events_processed == 10


@pytest.mark.parametrize("scheduler", ["wheel", "heap"])
def test_compaction_during_run_keeps_heap_alias_valid(scheduler):
    """Compaction triggered from inside a callback must not strand the
    running loop on a stale heap/slot list."""
    loop = SimLoop(scheduler=scheduler)
    doomed = [loop.call_later(50.0 + i, lambda: None) for i in range(80)]
    seen = []

    def cancel_all():
        for handle in doomed:
            handle.cancel()

    loop.call_later(1.0, cancel_all)
    loop.call_later(2.0, lambda: seen.append(loop.now()))
    loop.run_until(100.0)
    assert seen == [2.0]
    assert loop.pending_count() == 0


def test_far_future_events_migrate_from_overflow():
    """Events beyond the wheel horizon wait in the overflow heap and
    still fire in exact time order as the wheel turns."""
    loop = SimLoop(scheduler="wheel")
    seen = []
    loop.call_later(50.0, lambda: seen.append("far"))
    loop.call_later(0.05, lambda: seen.append("near"))
    loop.call_later(49.999, lambda: seen.append("mid"))
    assert len(loop._overflow) == 2
    loop.run_until(60.0)
    assert seen == ["near", "mid", "far"]


def test_overflow_event_sharing_deadline_bucket_fires():
    """Regression: with the wheel empty, a due overflow event whose time
    shares the deadline's bucket must fire -- the jump's due check has
    to compare times, not bucket ids (1.285 and 1.289 share bucket 128
    at 10ms width; 1.285 * 100 > int(1.289 * 100) would skip it)."""
    loop = SimLoop(scheduler="wheel")
    seen = []
    loop.call_later(1.285, lambda: seen.append(loop.now()))
    loop.run_until(1.289)
    assert seen == [1.285]
    assert loop.pending_count() == 0


def test_deep_overflow_jump_in_run_until_idle():
    """run_until_idle over a schedule far beyond the horizon must jump
    to it rather than sweep (and still report the right clock)."""
    loop = SimLoop(scheduler="wheel")
    seen = []
    loop.call_later(500.0, lambda: seen.append(loop.now()))
    cancelled = loop.call_later(100.0, lambda: seen.append("no"))
    cancelled.cancel()
    assert loop.run_until_idle() == 1
    assert seen == [500.0]
    assert loop.now() == 500.0


def test_freelist_never_recycles_externally_held_handles():
    """A handle the caller kept must not be reused for a later event
    (its cancel() would otherwise kill the new occupant)."""
    loop = SimLoop(scheduler="wheel")
    seen = []
    held = loop.call_later(0.1, lambda: seen.append("a"))
    loop.run_until(0.2)
    second = loop.call_later(0.1, lambda: seen.append("b"))
    assert second is not held
    held.cancel()  # stale cancel on the fired handle: must be a no-op
    loop.run_until(0.4)
    assert seen == ["a", "b"]


def test_freelist_recycles_unreferenced_handles():
    loop = SimLoop(scheduler="wheel")
    for _ in range(5):
        loop.call_later(0.01, lambda: None)
    loop.run_until(1.0)
    assert len(loop._free) > 0
    before = len(loop._free)
    loop.call_later(0.5, lambda: None)
    assert len(loop._free) == before - 1
    loop.run_until(2.0)
    assert loop.events_processed == 6
