"""C-Raft end-to-end: two-level consensus, batching, global ordering."""

import pytest

from repro.consensus.entry import EntryKind
from repro.craft import build_craft_deployment
from repro.craft.batching import BatchPolicy
from repro.net.latency import RegionLatencyModel
from repro.net.topology import Topology
from repro.harness.checkers import check_election_safety
from repro.harness.workload import ClosedLoopWorkload
from repro.smr.kv import KVStateMachine

RTTS = {("us", "eu"): 0.080, ("us", "ap"): 0.170, ("eu", "ap"): 0.220}


def make_deployment(n_sites=6, regions=("us", "eu", "ap"), seed=3,
                    batch_size=5, **kwargs):
    topo = Topology.even_clusters(n_sites, list(regions))
    latency = RegionLatencyModel(dict(topo.node_regions), RTTS,
                                 intra_rtt=0.0008, jitter=0.1)
    return topo, build_craft_deployment(
        topo, latency, seed=seed,
        batch_policy=BatchPolicy(batch_size=batch_size),
        state_machine_factory=KVStateMachine, **kwargs)


def run_workloads(topo, dep, per_cluster=10, batch_size=5):
    workloads = []
    for cluster in topo.clusters:
        client = dep.add_client(site=topo.nodes_in_cluster(cluster)[0])
        workload = ClosedLoopWorkload(
            client, max_requests=per_cluster,
            command_factory=lambda s, c=cluster: {
                "op": "put", "key": f"{c}.{s}", "value": s})
        workload.start()
        workloads.append(workload)
    assert dep.run_until(lambda: all(w.done for w in workloads),
                         timeout=120.0)
    return workloads


class TestBootstrap:
    def test_local_leaders_elected_per_cluster(self):
        topo, dep = make_deployment()
        dep.start_all()
        leaders = dep.run_until_local_leaders()
        assert set(leaders) == set(topo.clusters)
        assert len(set(leaders.values())) == len(topo.clusters)

    def test_global_level_forms(self):
        topo, dep = make_deployment()
        dep.start_all()
        leaders = dep.run_until_local_leaders()
        global_leader = dep.run_until_global_ready(timeout=60.0)
        assert global_leader in leaders.values()

    def test_global_config_is_cluster_leaders(self):
        topo, dep = make_deployment()
        dep.start_all()
        leaders = dep.run_until_local_leaders()
        dep.run_until_global_ready(timeout=60.0)
        dep.run_for(3.0)  # allow seed retirement to settle
        engine = dep.servers[dep.global_leader()].global_engine
        assert set(engine.configuration.members) <= set(dep.servers)
        assert set(leaders.values()) <= set(engine.configuration.members)

    def test_seed_retires_when_not_local_leader(self):
        for seed in range(6):
            topo, dep = make_deployment(seed=seed)
            dep.start_all()
            leaders = dep.run_until_local_leaders()
            seed_site = dep.servers[topo.nodes[0]].global_seed
            if seed_site in leaders.values():
                continue  # seed happens to lead its cluster; nothing to check
            dep.run_until_global_ready(timeout=60.0)
            engine = dep.servers[dep.global_leader()].global_engine
            assert dep.run_until(
                lambda: seed_site not in engine.configuration.members,
                timeout=30.0)
            return
        pytest.skip("seed led its cluster for every tested seed")


class TestGlobalOrdering:
    def test_all_entries_reach_global_log(self):
        topo, dep = make_deployment()
        dep.start_all()
        dep.run_until_local_leaders()
        dep.run_until_global_ready(timeout=60.0)
        run_workloads(topo, dep, per_cluster=10)
        assert dep.run_until(lambda: dep.total_global_applied() >= 30,
                             timeout=120.0)

    def test_global_applied_sequences_agree(self):
        topo, dep = make_deployment()
        dep.start_all()
        dep.run_until_local_leaders()
        dep.run_until_global_ready(timeout=60.0)
        run_workloads(topo, dep, per_cluster=10)
        dep.run_until(lambda: dep.total_global_applied() >= 30, timeout=120.0)
        dep.run_for(10.0)
        sequences = [[(i, e.entry_id) for i, e in s.global_applied]
                     for s in dep.servers.values()]
        longest = max(sequences, key=len)
        for sequence in sequences:
            assert longest[:len(sequence)] == sequence
        check_election_safety(dep.trace)

    def test_every_site_converges_to_same_kv(self):
        topo, dep = make_deployment()
        dep.start_all()
        dep.run_until_local_leaders()
        dep.run_until_global_ready(timeout=60.0)
        run_workloads(topo, dep, per_cluster=10)
        assert dep.run_until(
            lambda: min(len(s._global_applied_ids)
                        for s in dep.servers.values()) >= 30,
            timeout=180.0)
        snapshots = {n: s.global_state_machine.snapshot()
                     for n, s in dep.servers.items()}
        reference = snapshots[topo.nodes[0]]
        assert len(reference) == 30
        assert all(s == reference for s in snapshots.values())

    def test_batches_have_configured_size(self):
        topo, dep = make_deployment(batch_size=5)
        dep.start_all()
        dep.run_until_local_leaders()
        dep.run_until_global_ready(timeout=60.0)
        run_workloads(topo, dep, per_cluster=10, batch_size=5)
        dep.run_until(lambda: dep.total_global_applied() >= 30, timeout=120.0)
        observer = dep.servers[dep.global_leader()]
        batches = [e for _, e in observer.global_applied
                   if e.kind is EntryKind.BATCH]
        assert batches
        assert all(len(b.payload) == 5 for b in batches)

    def test_clients_complete_at_local_latency(self):
        """Closed-loop proposers wait only for the local commit: mean
        latency must track intra-cluster timing, not WAN round trips."""
        topo, dep = make_deployment()
        dep.start_all()
        dep.run_until_local_leaders()
        dep.run_until_global_ready(timeout=60.0)
        workloads = run_workloads(topo, dep, per_cluster=10)
        for workload in workloads:
            latencies = workload.latencies()
            mean = sum(latencies) / len(latencies)
            assert mean < 0.150  # local fast-track territory, not 80ms+ RTT


class TestLocalLeaderFailover:
    def test_new_local_leader_joins_global(self):
        topo, dep = make_deployment(n_sites=9, regions=("us", "eu", "ap"),
                                    seed=4)
        dep.start_all()
        leaders = dep.run_until_local_leaders()
        dep.run_until_global_ready(timeout=60.0)
        victim_cluster = topo.clusters[0]
        victim = leaders[victim_cluster]
        dep.servers[victim].crash()
        assert dep.run_until(
            lambda: (dep.local_leader(victim_cluster) is not None
                     and dep.local_leader(victim_cluster) != victim),
            timeout=30.0)
        successor = dep.local_leader(victim_cluster)
        assert dep.run_until(
            lambda: (dep.servers[successor].global_engine is not None
                     and dep.servers[successor].global_engine.is_member),
            timeout=90.0)
        check_election_safety(dep.trace)

    def test_entries_flow_after_failover(self):
        topo, dep = make_deployment(n_sites=9, regions=("us", "eu", "ap"),
                                    seed=4)
        dep.start_all()
        leaders = dep.run_until_local_leaders()
        dep.run_until_global_ready(timeout=60.0)
        victim_cluster = topo.clusters[0]
        victim = leaders[victim_cluster]
        follower_site = [n for n in topo.nodes_in_cluster(victim_cluster)
                         if n != victim][0]
        client = dep.add_client(site=follower_site)
        workload = ClosedLoopWorkload(client, max_requests=12)
        workload.start()
        dep.run_until(lambda: workload.completed_count >= 3, timeout=30.0)
        dep.servers[victim].crash()
        assert dep.run_until(lambda: workload.done, timeout=120.0)
        # the cluster's entries still reach the global log
        assert dep.run_until(
            lambda: sum(1 for s in dep.servers.values() if s.alive
                        for eid in s._global_applied_ids
                        if eid.startswith(f"client.{follower_site}")) >= 10,
            timeout=180.0)
        check_election_safety(dep.trace)


class TestTwoMemberGlobalDeadlock:
    """Formerly a strict xfail pinning the 2-member global-configuration
    deadlock (ROADMAP, 'Global-membership deadlock'): with exactly two
    cluster leaders in the global configuration, a crashed one could not
    be excluded (quorum 2-of-2) and the degraded-reconfig guard rightly
    refused to shrink, so the successor's global join never completed.
    Fixed by the standing non-voting observer (the retired bootstrap
    seed) acting as election/CONFIG tiebreaker for degenerate voting
    sets, plus the joining-leader exclusion quorum -- see README 'Global
    membership liveness'."""

    def _two_cluster_deployment(self):
        topo = Topology.even_clusters(6, ["east", "west"])
        latency = RegionLatencyModel(dict(topo.node_regions),
                                     {("east", "west"): 0.080},
                                     intra_rtt=0.0008, jitter=0.1)
        return topo, build_craft_deployment(
            topo, latency, seed=18, batch_policy=BatchPolicy(batch_size=5),
            state_machine_factory=KVStateMachine)

    def test_successor_joins_global_after_leader_crash(self):
        topo, dep = self._two_cluster_deployment()
        dep.start_all()
        leaders = dep.run_until_local_leaders(timeout=30.0)
        dep.run_until_global_ready(timeout=60.0)
        assert dep.global_observers()  # the retired seed stands by
        victim = leaders["east"]
        dep.servers[victim].crash()
        assert dep.run_until(
            lambda: (dep.local_leader("east") is not None
                     and dep.local_leader("east") != victim),
            timeout=30.0)
        successor = dep.local_leader("east")
        # The join completes only once the dead leader's exclusion can
        # commit -- the observer tiebreaker supplies the missing vote.
        assert dep.run_until(
            lambda: (dep.servers[successor].global_engine is not None
                     and dep.servers[successor].global_engine.is_member),
            timeout=60.0)

    def test_exclusion_commits_and_batches_flow_without_dead_site(self):
        topo, dep = self._two_cluster_deployment()
        dep.start_all()
        leaders = dep.run_until_local_leaders(timeout=30.0)
        dep.run_until_global_ready(timeout=60.0)
        victim = leaders["east"]
        dep.servers[victim].crash()
        dep.run_until(lambda: (dep.local_leader("east") is not None
                               and dep.local_leader("east") != victim),
                      timeout=30.0)

        def victim_excluded():
            leader = dep.global_leader()
            if leader is None:
                return False
            engine = dep.servers[leader].global_engine
            return victim not in engine.configuration.members
        assert dep.run_until(victim_excluded, timeout=60.0)
        # Batches from both surviving clusters reach the global log
        # while the dead site never returns.
        workloads = []
        for cluster in topo.clusters:
            site = next(n for n in topo.nodes_in_cluster(cluster)
                        if n != victim and dep.servers[n].alive)
            client = dep.add_client(site=site)
            workload = ClosedLoopWorkload(
                client, max_requests=10,
                command_factory=lambda s, c=cluster: {
                    "op": "put", "key": f"{c}.{s}", "value": s})
            workload.start()
            workloads.append(workload)
        assert dep.run_until(lambda: all(w.done for w in workloads),
                             timeout=120.0)
        assert dep.run_until(lambda: dep.total_global_applied() >= 20,
                             timeout=120.0)
        assert not dep.servers[victim].alive
        check_election_safety(dep.trace)
