"""Snapshot & log-compaction subsystem: unit and end-to-end coverage.

End-to-end scenarios check the acceptance contract: a node that falls
behind a compacted leader catches up via InstallSnapshot, crash recovery
through a compacted log reproduces the peers' state machine exactly, and
the safety checkers hold across compaction + churn in all three engines.
"""

import pytest

from repro.consensus.config import Configuration
from repro.consensus.entry import EntryKind, InsertedBy, LogEntry
from repro.consensus.log import RaftLog
from repro.consensus.timing import TimingConfig
from repro.craft.batching import BatchPolicy
from repro.craft.deployment import build_craft_deployment
from repro.errors import ConfigurationError, LogError
from repro.fastraft.server import FastRaftServer
from repro.harness.builder import build_cluster
from repro.harness.checkers import (
    check_images_agree,
    check_state_machine_agreement,
    run_safety_checks,
)
from repro.harness.faults import FaultInjector
from repro.harness.workload import ClosedLoopWorkload
from repro.metrics.summary import tally_snapshots
from repro.net.latency import RegionLatencyModel
from repro.net.topology import Topology
from repro.raft.server import RaftServer
from repro.smr.kv import KVStateMachine
from repro.smr.machine import AppendOnlyLog, CounterMachine
from repro.snapshot import CompactionPolicy, Snapshot, SnapshotStore
from repro.storage.stable import StableStore
from tests.conftest import commit_n, started_cluster


def _entry(entry_id, term=1, kind=EntryKind.DATA):
    return LogEntry(entry_id=entry_id, kind=kind, payload=None,
                    origin="n0", term=term, inserted_by=InsertedBy.LEADER)


def _filled_log(n):
    log = RaftLog()
    for i in range(1, n + 1):
        log.insert(i, _entry(f"e{i}", term=1))
    return log


class TestRaftLogCompaction:
    def test_compact_drops_prefix(self):
        log = _filled_log(10)
        dropped = log.compact_to(6)
        assert dropped == 6
        assert log.snapshot_index == 6
        assert log.snapshot_term == 1
        assert log.first_retained_index == 7
        assert log.get(6) is None
        assert log.get(7) is not None
        assert log.last_index == 10

    def test_term_at_snapshot_point_and_below(self):
        log = _filled_log(5)
        log.compact_to(3)
        assert log.term_at(3) == 1
        with pytest.raises(LogError):
            log.term_at(2)

    def test_insert_below_snapshot_rejected(self):
        log = _filled_log(5)
        log.compact_to(3)
        with pytest.raises(LogError):
            log.insert(2, _entry("late"))

    def test_truncate_into_compacted_prefix_rejected(self):
        log = _filled_log(5)
        log.compact_to(3)
        with pytest.raises(LogError):
            log.truncate_from(2)

    def test_truncate_above_snapshot_keeps_anchor(self):
        log = _filled_log(5)
        log.compact_to(3)
        log.truncate_from(4)
        assert log.last_index == 3  # falls back to the compaction point
        assert log.term_at(3) == 1

    def test_install_snapshot_jumps_past_log_end(self):
        log = _filled_log(3)
        dropped = log.install_snapshot(10, 4)
        assert dropped == 3
        assert log.snapshot_index == 10
        assert log.snapshot_term == 4
        assert log.last_index == 10
        assert len(log) == 0

    def test_install_snapshot_keeps_retained_suffix(self):
        log = _filled_log(8)
        log.install_snapshot(5, 1)
        assert [i for i, _ in log] == [6, 7, 8]

    def test_stale_install_is_noop(self):
        log = _filled_log(8)
        log.compact_to(6)
        assert log.install_snapshot(4, 1) == 0
        assert log.snapshot_index == 6

    def test_entries_between_clamps_to_retained(self):
        log = _filled_log(8)
        log.compact_to(4)
        assert [i for i, _ in log.entries_between(1, 8)] == [5, 6, 7, 8]

    def test_contiguous_counts_compacted_as_held(self):
        log = _filled_log(8)
        log.compact_to(4)
        assert log.contiguous_from(1, 8)

    def test_duplicate_index_dropped_with_prefix(self):
        log = _filled_log(4)
        log.insert(5, _entry("e2"))  # same id at a second index
        log.compact_to(4)
        assert log.indices_of("e2") == {5}

    def test_best_config_entry_bounded_by_upto(self):
        from repro.consensus.entry import ConfigPayload
        log = _filled_log(2)
        log.insert(3, LogEntry(
            entry_id="c1", kind=EntryKind.CONFIG,
            payload=ConfigPayload(members=("a", "b"), version=1),
            origin="n0", term=1, inserted_by=InsertedBy.LEADER))
        log.insert(5, LogEntry(
            entry_id="c2", kind=EntryKind.CONFIG,
            payload=ConfigPayload(members=("a",), version=2),
            origin="n0", term=1, inserted_by=InsertedBy.LEADER))
        assert log.best_config_entry()[0] == 5
        # An uncommitted CONFIG above the commit point must not leak
        # into a snapshot of the committed prefix.
        assert log.best_config_entry(upto=4)[0] == 3
        assert log.best_config_entry(upto=2) is None


class TestCompactionPolicy:
    def test_threshold_trigger(self):
        policy = CompactionPolicy(threshold=10, retain=2)
        assert not policy.should_compact(9, 0, 1.0, float("-inf"))
        assert policy.should_compact(10, 0, 1.0, float("-inf"))
        assert not policy.should_compact(12, 5, 1.0, float("-inf"))

    def test_interval_trigger(self):
        policy = CompactionPolicy(threshold=5, min_interval=1.0, retain=0)
        assert not policy.should_compact(10, 0, 1.5, 1.0)
        assert policy.should_compact(10, 0, 2.5, 1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CompactionPolicy(threshold=0)
        with pytest.raises(ConfigurationError):
            CompactionPolicy(threshold=5, retain=5)
        with pytest.raises(ConfigurationError):
            CompactionPolicy(min_interval=-1.0)


class TestSnapshotStore:
    def test_save_and_latest(self):
        store = SnapshotStore(StableStore("n0"))
        snap = Snapshot(last_included_index=5, last_included_term=2,
                        machine_state={"a": 1})
        assert store.save(snap)
        assert store.latest is snap

    def test_save_is_monotonic(self):
        store = SnapshotStore(StableStore("n0"))
        newer = Snapshot(last_included_index=9, last_included_term=2,
                         machine_state=None)
        older = Snapshot(last_included_index=5, last_included_term=2,
                         machine_state=None)
        store.save(newer)
        assert not store.save(older)
        assert store.latest is newer


class TestMachineRestore:
    def test_kv_roundtrip(self):
        machine = KVStateMachine()
        machine.apply({"op": "put", "key": "k", "value": 1})
        image = machine.snapshot()
        other = KVStateMachine()
        other.restore(image)
        assert other.snapshot() == machine.snapshot()
        other.apply({"op": "put", "key": "k2", "value": 2})
        assert machine.get("k2") is None  # restored copy is independent

    def test_append_only_log_roundtrip(self):
        machine = AppendOnlyLog()
        machine.apply("a")
        other = AppendOnlyLog()
        other.restore(machine.snapshot())
        assert other.snapshot() == ("a",)

    def test_counter_roundtrip(self):
        machine = CounterMachine()
        machine.apply({"op": "add", "amount": 5})
        other = CounterMachine()
        other.restore(machine.snapshot())
        assert other.value == 5


POLICY = CompactionPolicy(threshold=10, retain=2)


def _compacting_cluster(server_cls, seed=1, **kwargs):
    kwargs.setdefault("compaction", POLICY)
    return started_cluster(server_cls, seed=seed, **kwargs)


class TestCompactionEndToEnd:
    @pytest.mark.parametrize("server_cls", [RaftServer, FastRaftServer])
    def test_leader_compacts_past_threshold(self, server_cls):
        cluster = _compacting_cluster(server_cls)
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 15)
        leader = cluster.servers[cluster.leader()].engine
        assert leader.snapshots_taken >= 1
        assert leader.log.snapshot_index > 0
        assert leader.snapshot_store.latest is not None
        run_safety_checks(cluster.servers.values(), cluster.trace)

    @pytest.mark.parametrize("server_cls", [RaftServer, FastRaftServer])
    def test_commits_unaffected_by_compaction(self, server_cls):
        cluster = _compacting_cluster(server_cls)
        client = cluster.add_client(site=cluster.leader())
        records = commit_n(cluster, client, 25)
        assert all(r.done for r in records)
        cluster.run_for(1.0)
        expected = {f"k{i}": i for i in range(25)}
        for server in cluster.servers.values():
            assert server.state_machine.snapshot() == expected
        run_safety_checks(cluster.servers.values(), cluster.trace)

    @pytest.mark.parametrize("server_cls", [RaftServer, FastRaftServer])
    def test_crash_recovery_through_compaction(self, server_cls):
        """Satellite: a node that snapshots, crashes, and rebuilds from
        StorageFabric must reach the same machine state as its peers."""
        cluster = _compacting_cluster(server_cls)
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 18)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        # Let the victim itself snapshot before it crashes.
        assert cluster.run_until(
            lambda: cluster.servers[victim].engine.snapshots_taken >= 1,
            timeout=10.0)
        faults = FaultInjector(cluster)
        faults.crash(victim)
        commit_n(cluster, client, 4)
        faults.recover(victim)
        recovered = cluster.servers[victim]
        # Recovery resumed from the persisted snapshot, not index 1.
        assert recovered.engine.commit_index > 0
        leader_engine = cluster.servers[cluster.leader()].engine
        target = leader_engine.commit_index
        assert cluster.run_until(
            lambda: recovered.engine.commit_index >= target, timeout=30.0)
        cluster.run_for(1.0)
        peers = [s for n, s in cluster.servers.items() if n != victim]
        assert recovered.state_machine.snapshot() in [
            p.state_machine.snapshot() for p in peers]
        assert recovered.state_machine.snapshot() == {
            f"k{i}": i for i in range(18)}
        run_safety_checks(cluster.servers.values(), cluster.trace)
        check_state_machine_agreement(cluster.servers.values())

    @pytest.mark.parametrize("server_cls", [RaftServer, FastRaftServer])
    def test_lagging_node_catches_up_via_install_snapshot(self, server_cls):
        cluster = _compacting_cluster(server_cls)
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 3)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        faults = FaultInjector(cluster)
        faults.crash(victim)
        commit_n(cluster, client, 30)  # leader compacts past the victim
        leader = cluster.servers[cluster.leader()].engine
        assert leader.log.snapshot_index > 3
        faults.recover(victim)
        recovered = cluster.servers[victim]
        assert cluster.run_until(
            lambda: recovered.engine.commit_index >= leader.commit_index,
            timeout=60.0)
        assert recovered.engine.snapshots_installed >= 1
        assert recovered.state_machine.get("k29") == 29
        cluster.run_for(1.0)
        run_safety_checks(cluster.servers.values(), cluster.trace)

    def test_fresh_joiner_admitted_via_install_snapshot(self):
        """Fast Raft self-announced join against a compacted leader: the
        joiner's whole history arrives as one snapshot."""
        cluster = _compacting_cluster(FastRaftServer, n_sites=3)
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 20)
        joiner = FastRaftServer(
            name="n8", loop=cluster.loop, network=cluster.network,
            store=cluster.fabric.store_for("n8"),
            bootstrap_config=Configuration(tuple(cluster.servers)),
            timing=cluster.timing, rng=cluster.rng, trace=cluster.trace,
            state_machine_factory=KVStateMachine, compaction=POLICY)
        cluster.add_server(joiner)
        joiner.start()
        leader = cluster.servers[cluster.leader()]
        assert cluster.run_until(
            lambda: "n8" in leader.engine.configuration.members,
            timeout=30.0)
        cluster.run_for(1.0)
        assert joiner.engine.snapshots_installed >= 1
        assert joiner.state_machine.snapshot() == {
            f"k{i}": i for i in range(20)}
        run_safety_checks(cluster.servers.values(), cluster.trace)

    def test_snapshot_counters_tally(self):
        cluster = _compacting_cluster(RaftServer)
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 15)
        counters = tally_snapshots(s.engine
                                   for s in cluster.servers.values())
        assert counters.taken >= 1
        assert counters.entries_compacted > 0
        assert "taken" in counters.format()

    def test_write_count_reflects_log_mutations(self):
        """The touch() satellite end to end: replicating entries bumps the
        durable write counter even though the log mutates in place."""
        cluster = started_cluster(RaftServer, seed=3)
        baseline = {n: s._store.write_count
                    for n, s in cluster.servers.items()}
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 5)
        for name, server in cluster.servers.items():
            assert server._store.write_count > baseline[name]


class TestCraftCompaction:
    def _deployment(self, local_compaction=POLICY):
        topo = Topology.even_clusters(6, ["east", "west"])
        latency = RegionLatencyModel(dict(topo.node_regions),
                                     {("east", "west"): 0.080},
                                     intra_rtt=0.0008, jitter=0.1)
        deployment = build_craft_deployment(
            topo, latency, seed=5,
            batch_policy=BatchPolicy(batch_size=5),
            state_machine_factory=KVStateMachine,
            local_compaction=local_compaction)
        deployment.start_all()
        deployment.run_until_local_leaders(timeout=30.0)
        deployment.run_until_global_ready(timeout=60.0)
        return topo, deployment

    def test_cluster_member_recovers_through_local_snapshot(self):
        topo, deployment = self._deployment()
        cluster_a = topo.clusters[0]
        leader_a = deployment.local_leader(cluster_a)
        client = deployment.add_client(site=leader_a)
        workload = ClosedLoopWorkload(client, max_requests=40)
        workload.start()
        assert deployment.run_until(
            lambda: workload.completed_count >= 5, timeout=60.0)
        victim = next(n for n in topo.nodes_in_cluster(cluster_a)
                      if n != leader_a)
        deployment.servers[victim].crash()
        assert deployment.run_until(lambda: workload.done, timeout=120.0)
        leader_engine = deployment.servers[
            deployment.local_leader(cluster_a)].local_engine
        assert leader_engine.snapshots_taken >= 1
        target = leader_engine.commit_index
        deployment.servers[victim].recover()
        recovered = deployment.servers[victim]
        assert deployment.run_until(
            lambda: recovered.local_engine.commit_index >= target,
            timeout=120.0)
        assert recovered.local_engine.snapshots_installed >= 1
        # The composite image carried the global state: the recovered
        # member's global machine agrees with peers at the same point.
        deployment.run_for(3.0)
        check_images_agree(
            ((s.global_applied_index, s.global_state_machine.snapshot(),
              s.name) for s in deployment.servers.values()),
            what="global state machines")

    def test_late_region_catches_up_via_gated_global_snapshot(self):
        """The ISSUE's migrated-site scenario: a brand-new single-site
        cluster joins after the global log has been compacted; the global
        leader must ship an InstallSnapshot, which the new cluster
        replicates through its (trivial) local consensus before adoption.
        """
        topo = Topology()
        placements = [("n0", "east"), ("n1", "east"), ("n2", "east"),
                      ("n3", "west"), ("n4", "west"), ("n5", "west"),
                      ("n6", "south")]
        for name, region in placements:
            topo.add_node(name, region=region, cluster=region)
        rtts = {("east", "west"): 0.080, ("east", "south"): 0.120,
                ("west", "south"): 0.150}
        latency = RegionLatencyModel(dict(topo.node_regions), rtts,
                                     intra_rtt=0.0008, jitter=0.1)
        deployment = build_craft_deployment(
            topo, latency, seed=6,
            batch_policy=BatchPolicy(batch_size=5),
            state_machine_factory=KVStateMachine,
            global_compaction=CompactionPolicy(threshold=6, retain=1))
        late = deployment.servers["n6"]
        for name, server in deployment.servers.items():
            if name != "n6":
                server.start()
        assert deployment.run_until(
            lambda: all(deployment.local_leader(c) is not None
                        for c in ("east", "west")), timeout=30.0)
        client = deployment.add_client(
            site=deployment.local_leader("east"))
        workload = ClosedLoopWorkload(client, max_requests=60)
        workload.start()
        assert deployment.run_until(lambda: workload.done, timeout=240.0)

        def global_compacted() -> bool:
            leader = deployment.global_leader()
            if leader is None:
                return False
            engine = deployment.servers[leader].global_engine
            return (engine is not None
                    and engine.log.snapshot_index > 0)
        assert deployment.run_until(global_compacted, timeout=120.0)
        late.start()  # the migrated site comes up and joins the world

        def late_caught_up() -> bool:
            engine = late.global_engine
            return (engine is not None and engine.is_member
                    and late.global_applied_index > 0)
        assert deployment.run_until(late_caught_up, timeout=240.0)
        assert late.global_engine.snapshots_installed >= 1
        # The image arrived through the gated path: a GLOBAL_STATE entry
        # carrying a snapshot committed in the south cluster's local log.
        gated = [e for _, e in late.applied_log
                 if e.kind is EntryKind.GLOBAL_STATE
                 and e.payload.snapshot is not None]
        assert gated, "global snapshot must be gated through local consensus"
        # And the inherited global machine matches a veteran's at the
        # same apply point.
        deployment.run_for(5.0)
        check_images_agree(
            ((s.global_applied_index, s.global_state_machine.snapshot(),
              s.name) for s in deployment.servers.values()),
            what="global state machines")

    def test_view_pruned_on_local_compaction_without_restore(self):
        """ROADMAP follow-up: the materialized global view must be pruned
        when a site *captures* a local snapshot, not only when it adopts
        one -- a leader that never restores would otherwise keep its full
        global history in memory for the life of the process."""
        topo, deployment = self._deployment()
        cluster_a = topo.clusters[0]
        client = deployment.add_client(
            site=deployment.local_leader(cluster_a))
        workload = ClosedLoopWorkload(client, max_requests=50)
        workload.start()
        assert deployment.run_until(lambda: workload.done, timeout=120.0)
        deployment.run_for(3.0)
        compacted_without_restore = [
            s for s in deployment.servers.values()
            if s.local_engine.snapshots_taken >= 1
            and s.local_engine.snapshots_installed == 0
            and s.global_applied_index > 0]
        assert compacted_without_restore, "scenario must exercise capture"
        for server in compacted_without_restore:
            assert server.global_view.snapshot_index > 0, (
                f"{server.name} compacted locally but kept its full "
                f"global view")
        # Pruning must not break global apply: every site still agrees.
        check_images_agree(
            ((s.global_applied_index, s.global_state_machine.snapshot(),
              s.name) for s in deployment.servers.values()),
            what="global state machines")

    def test_global_snapshots_survive_without_compaction_regression(self):
        """Compaction disabled: the craft pipeline behaves as before."""
        topo, deployment = self._deployment(local_compaction=None)
        cluster_a = topo.clusters[0]
        client = deployment.add_client(
            site=deployment.local_leader(cluster_a))
        workload = ClosedLoopWorkload(client, max_requests=12)
        workload.start()
        assert deployment.run_until(lambda: workload.done, timeout=120.0)
        engines = [s.local_engine for s in deployment.servers.values()]
        assert tally_snapshots(engines).taken == 0
