"""Tests for the scenario harness: builder, faults, workloads, checkers."""

import pytest

from repro.consensus.entry import EntryKind, InsertedBy, LogEntry
from repro.errors import ExperimentError, InvariantViolation
from repro.fastraft.server import FastRaftServer
from repro.harness.builder import build_cluster
from repro.harness.checkers import (
    check_applied_consistency,
    check_commit_monotonic,
    check_committed_prefix_agreement,
    check_election_safety,
    check_log_matching,
)
from repro.harness.faults import FaultInjector
from repro.harness.workload import ClosedLoopWorkload, PoissonWorkload
from repro.raft.server import RaftServer
from repro.sim.trace import TraceRecorder
from tests.conftest import started_cluster


class TestBuilder:
    def test_builds_requested_sites(self):
        cluster = build_cluster(RaftServer, n_sites=7, seed=0)
        assert len(cluster.servers) == 7
        assert sorted(cluster.servers) == [f"n{i}" for i in range(7)]

    def test_no_leader_before_start(self):
        cluster = build_cluster(RaftServer, n_sites=3, seed=0)
        assert cluster.leader() is None

    def test_same_seed_same_leader(self):
        leaders = {started_cluster(RaftServer, seed=42).leader()
                   for _ in range(3)}
        assert len(leaders) == 1

    def test_zero_sites_rejected(self):
        with pytest.raises(ExperimentError):
            build_cluster(RaftServer, n_sites=0)

    def test_client_to_unknown_site_rejected(self):
        cluster = build_cluster(RaftServer, n_sites=3, seed=0)
        with pytest.raises(ExperimentError):
            cluster.add_client(site="ghost")

    def test_run_until_timeout_returns_false(self):
        cluster = started_cluster(RaftServer, seed=0)
        assert not cluster.run_until(lambda: False, timeout=0.5)


class TestFaults:
    def test_injection_log(self):
        cluster = started_cluster(RaftServer, seed=1)
        faults = FaultInjector(cluster)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        faults.crash(victim)
        faults.recover(victim)
        kinds = [kind for _, kind, _ in faults.injected]
        assert kinds == ["crash", "recover"]

    def test_schedule_fires_at_time(self):
        cluster = started_cluster(RaftServer, seed=1)
        faults = FaultInjector(cluster)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        at = cluster.loop.now() + 1.0
        faults.schedule(at, "crash", victim)
        assert cluster.servers[victim].alive
        cluster.run_for(1.5)
        assert not cluster.servers[victim].alive

    def test_unknown_fault_kind_rejected(self):
        cluster = started_cluster(RaftServer, seed=1)
        with pytest.raises(ExperimentError):
            FaultInjector(cluster).schedule(1.0, "meteor", "n0")

    def test_unknown_site_rejected(self):
        cluster = started_cluster(RaftServer, seed=1)
        with pytest.raises(ExperimentError):
            FaultInjector(cluster).crash("ghost")

    def test_set_link_loss_overlays_current_model(self):
        from repro.net.loss import PerLinkLoss
        cluster = started_cluster(RaftServer, seed=1)
        faults = FaultInjector(cluster)
        faults.set_loss(0.05)
        base = cluster.network.loss_model
        faults.set_link_loss("n0", "n1", 1.0)
        model = cluster.network.loss_model
        assert isinstance(model, PerLinkLoss)
        assert model.base is base
        rng = cluster.rng.stream("test.loss")
        # the degraded link always drops, both directions
        assert model.should_drop(rng, "n0", "n1", 0.0)
        assert model.should_drop(rng, "n1", "n0", 0.0)
        # a second override accumulates on the same overlay
        faults.set_link_loss("n0", "n2", 1.0, symmetric=False)
        assert cluster.network.loss_model is model
        assert model.should_drop(rng, "n0", "n2", 0.0)
        # zero-rate override re-enables the reliable path on that link
        faults.set_link_loss("n0", "n1", 0.0)
        assert not model.should_drop(rng, "n0", "n1", 0.0)

    def test_set_bandwidth_wraps_and_rewraps(self):
        from repro.net.latency import (
            BandwidthLatencyModel,
            SharedLinkBandwidthModel,
        )
        cluster = started_cluster(RaftServer, seed=1)
        base = cluster.network.latency_model
        faults = FaultInjector(cluster)
        faults.set_bandwidth(1_000_000.0)
        model = cluster.network.latency_model
        assert isinstance(model, BandwidthLatencyModel)
        assert model.base is base and model.bandwidth == 1_000_000.0
        # re-wrapping swaps the rate without nesting wrappers
        faults.set_bandwidth(500.0, shared=True)
        model = cluster.network.latency_model
        assert isinstance(model, SharedLinkBandwidthModel)
        assert model.base is base and model.bandwidth == 500.0


class TestNonleaderSelector:
    def test_resolves_against_fire_time_leader(self):
        """Leadership moved between schedule evaluation and application:
        the selector must exclude the *current* leader, or a follower
        fault silently becomes a leader fault."""
        from repro.harness.faults import resolve_event_targets
        from repro.scenarios.spec import Event
        event = Event("crash", target="nonleader:0", at=1.0)
        order = ["n0", "n1", "n2"]
        assert resolve_event_targets(event, order, "n0") == ["n1"]
        # the initial leader n0 lost leadership to n1 before fire time
        assert resolve_event_targets(event, order, "n0",
                                     current_leader="n1") == ["n0"]

    def test_pinned_by_sorted_node_id(self):
        """Selection is pinned to sorted site ids, not builder insertion
        order, so two construction paths agree on nonleader:i."""
        from repro.harness.faults import resolve_event_targets
        from repro.scenarios.spec import Event
        event = Event("crash", target="nonleader:1", at=1.0)
        shuffled = ["n2", "n0", "n1"]
        assert resolve_event_targets(event, shuffled, "n0") == ["n2"]

    def test_fire_time_resolution_end_to_end(self):
        """A scheduled nonleader crash after a leader change hits a
        follower of the *new* leader (regression: it used to be able to
        crash the live leader recorded as a non-leader initially)."""
        cluster = started_cluster(RaftServer, seed=1)
        initial = cluster.leader()
        faults = FaultInjector(cluster)
        # Depose the initial leader by crashing it; a new one emerges.
        faults.crash(initial)
        assert cluster.run_until(
            lambda: cluster.leader() not in (None, initial), timeout=15.0)
        faults.recover(initial)
        cluster.run_for(0.5)
        new_leader = cluster.leader()
        from repro.scenarios.spec import Event
        event = Event("crash", target="nonleader:0", at=1.0)
        sites = faults.apply_event(event, initial_leader=initial)
        assert sites and sites[0] != new_leader


class TestWorkloads:
    def test_closed_loop_completes_exactly_max(self):
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0")
        workload = ClosedLoopWorkload(client, max_requests=7)
        workload.start()
        assert cluster.run_until(lambda: workload.done, timeout=20.0)
        assert workload.completed_count == 7
        assert len(workload.records) == 7

    def test_closed_loop_is_sequential(self):
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0")
        workload = ClosedLoopWorkload(client, max_requests=5)
        workload.start()
        cluster.run_until(lambda: workload.done, timeout=20.0)
        records = workload.records
        for earlier, later in zip(records, records[1:]):
            assert later.submitted_at >= earlier.committed_at

    def test_closed_loop_stop(self):
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0")
        workload = ClosedLoopWorkload(client, max_requests=100)
        workload.start()
        cluster.run_for(0.3)
        workload.stop()
        done_at_stop = workload.completed_count
        cluster.run_for(2.0)
        assert workload.completed_count <= done_at_stop + 1

    def test_poisson_submits_at_rate(self):
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0")
        workload = PoissonWorkload(client, cluster.loop, rate=20.0,
                                   max_requests=30)
        workload.start(cluster.rng.stream("workload"))
        cluster.run_for(4.0)
        assert len(workload.records) == 30
        assert workload.records[-1].done

    def test_poisson_rejects_bad_rate(self):
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0")
        with pytest.raises(ValueError):
            PoissonWorkload(client, cluster.loop, rate=0.0)


def _entry(entry_id, term=1, by=InsertedBy.LEADER):
    return LogEntry(entry_id=entry_id, kind=EntryKind.DATA, payload=None,
                    origin="x", term=term, inserted_by=by)


class FakeEngine:
    def __init__(self, name, entries, commit_index):
        from repro.consensus.log import RaftLog
        self.name = name
        self.log = RaftLog()
        for index, entry in entries:
            self.log.insert(index, entry)
        self.commit_index = commit_index


class TestCheckers:
    def test_prefix_agreement_passes(self):
        a = FakeEngine("a", [(1, _entry("x")), (2, _entry("y"))], 2)
        b = FakeEngine("b", [(1, _entry("x"))], 1)
        check_committed_prefix_agreement([a, b])

    def test_prefix_agreement_catches_divergence(self):
        a = FakeEngine("a", [(1, _entry("x"))], 1)
        b = FakeEngine("b", [(1, _entry("DIFFERENT"))], 1)
        with pytest.raises(InvariantViolation):
            check_committed_prefix_agreement([a, b])

    def test_prefix_agreement_catches_committed_hole(self):
        a = FakeEngine("a", [(1, _entry("x"))], 1)
        b = FakeEngine("b", [(2, _entry("y"))], 1)  # hole at 1
        with pytest.raises(InvariantViolation):
            check_committed_prefix_agreement([a, b])

    def test_log_matching_catches_same_term_conflict(self):
        a = FakeEngine("a", [(1, _entry("x", term=2))], 0)
        b = FakeEngine("b", [(1, _entry("y", term=2))], 0)
        with pytest.raises(InvariantViolation):
            check_log_matching([a, b])

    def test_log_matching_ignores_self_approved(self):
        a = FakeEngine("a", [(1, _entry("x", term=2, by=InsertedBy.SELF))], 0)
        b = FakeEngine("b", [(1, _entry("y", term=2))], 0)
        check_log_matching([a, b])  # no exception

    def test_election_safety_catches_double_leader(self):
        trace = TraceRecorder()
        trace.record(1.0, "n1", "raft.role.leader", scope="main", term=3)
        trace.record(1.1, "n2", "raft.role.leader", scope="main", term=3)
        with pytest.raises(InvariantViolation):
            check_election_safety(trace)

    def test_election_safety_allows_scoped_same_term(self):
        trace = TraceRecorder()
        trace.record(1.0, "n1", "craft.local.role.leader", scope="us", term=3)
        trace.record(1.1, "n2", "craft.local.role.leader", scope="eu", term=3)
        check_election_safety(trace)

    def test_commit_monotonic(self):
        check_commit_monotonic({"a": [0, 1, 2, 2, 5]})
        with pytest.raises(InvariantViolation):
            check_commit_monotonic({"a": [0, 3, 1]})

    def test_applied_consistency(self):
        class FakeServer:
            def __init__(self, applied):
                self.applied_log = applied

        ok_a = FakeServer([(1, _entry("x")), (2, _entry("y"))])
        ok_b = FakeServer([(1, _entry("x"))])
        check_applied_consistency([ok_a, ok_b])
        bad = FakeServer([(1, _entry("z"))])
        with pytest.raises(InvariantViolation):
            check_applied_consistency([ok_a, bad])
