"""Classic Raft: election, replication, commits, heartbeats."""

import pytest

from repro.consensus.engine import Role
from repro.consensus.entry import EntryKind
from repro.raft.server import RaftServer
from tests.conftest import assert_safe, commit_n, make_cluster, started_cluster


class TestElection:
    def test_exactly_one_leader_elected(self, raft_cluster):
        leaders = [s for s in raft_cluster.servers.values()
                   if s.engine.role is Role.LEADER]
        assert len(leaders) == 1

    def test_leader_known_to_followers(self, raft_cluster):
        leader = raft_cluster.leader()
        raft_cluster.run_for(0.5)
        for server in raft_cluster.servers.values():
            assert server.engine.leader_id == leader

    def test_single_site_elects_itself(self):
        cluster = started_cluster(RaftServer, n_sites=1, seed=3)
        assert cluster.leader() == "n0"

    def test_leader_appends_noop_on_election(self, raft_cluster):
        leader = raft_cluster.servers[raft_cluster.leader()]
        first = leader.engine.log.get(1)
        assert first is not None and first.kind is EntryKind.NOOP

    def test_different_seeds_can_elect_different_leaders(self):
        leaders = {started_cluster(RaftServer, seed=s).leader()
                   for s in range(8)}
        assert len(leaders) > 1

    def test_election_safety_in_trace(self, raft_cluster):
        raft_cluster.run_for(2.0)
        assert_safe(raft_cluster)


class TestCommit:
    def test_commit_replicates_everywhere(self, raft_cluster):
        client = raft_cluster.add_client(site="n0")
        commit_n(raft_cluster, client, 3)
        raft_cluster.run_for(0.5)
        indices = set(raft_cluster.commit_indices().values())
        assert indices == {4}  # noop + 3 data entries
        assert_safe(raft_cluster)

    def test_state_machine_applies_in_order(self, raft_cluster):
        client = raft_cluster.add_client(site="n1")
        commit_n(raft_cluster, client, 5)
        raft_cluster.run_for(0.5)
        for server in raft_cluster.servers.values():
            snapshot = server.state_machine.snapshot()
            assert snapshot == {f"k{i}": i for i in range(5)}

    def test_client_latency_within_heartbeat_bound(self, raft_cluster):
        client = raft_cluster.add_client(site="n0")
        records = commit_n(raft_cluster, client, 10)
        latencies = [r.latency for r in records]
        # proposal waits at most one heartbeat for dispatch plus rtt slack
        assert max(latencies) < 0.150
        assert min(latencies) > 0.0

    def test_proposer_on_leader_site(self, raft_cluster):
        leader = raft_cluster.leader()
        client = raft_cluster.add_client(site=leader)
        records = commit_n(raft_cluster, client, 3)
        assert all(r.done for r in records)

    def test_duplicate_request_commits_once(self, raft_cluster):
        client = raft_cluster.add_client(site="n0")
        record = raft_cluster.propose_and_wait(client, {"op": "put",
                                                        "key": "a",
                                                        "value": 1})
        leader_engine = raft_cluster.servers[raft_cluster.leader()].engine
        before = leader_engine.log.last_index
        # Simulate a duplicate arriving at the leader (client retry race).
        from repro.consensus.messages import ClientRequest
        leader_engine.handle(ClientRequest(request_id=record.request_id,
                                           command={"op": "put", "key": "a",
                                                    "value": 1}),
                             "client.retry")
        raft_cluster.run_for(0.5)
        assert leader_engine.log.last_index == before
        assert_safe(raft_cluster)

    def test_concurrent_proposers_all_commit(self):
        cluster = started_cluster(RaftServer, seed=5)
        clients = [cluster.add_client(site=f"n{i}") for i in range(5)]
        records = [c.submit({"op": "put", "key": f"c{i}", "value": i})
                   for i, c in enumerate(clients)]
        assert cluster.run_until(lambda: all(r.done for r in records), 10.0)
        cluster.run_for(0.5)
        assert_safe(cluster)
        kv = cluster.servers["n0"].state_machine.snapshot()
        assert len(kv) == 5


class TestHeartbeat:
    def test_no_election_while_leader_alive(self, raft_cluster):
        term_before = raft_cluster.servers[raft_cluster.leader()].engine.current_term
        raft_cluster.run_for(5.0)
        term_after = raft_cluster.servers[raft_cluster.leader()].engine.current_term
        assert term_before == term_after

    def test_empty_heartbeats_flow(self, raft_cluster):
        sent_before = raft_cluster.network.stats.by_type["AppendEntries"]
        raft_cluster.run_for(1.0)
        sent_after = raft_cluster.network.stats.by_type["AppendEntries"]
        # 4 followers x ~10 heartbeats/s
        assert sent_after - sent_before >= 30
