"""Tests for loss models."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.loss import BernoulliLoss, NoLoss, PerLinkLoss, ScheduledLoss


def drop_fraction(model, n=5000, now=0.0):
    rng = random.Random(42)
    drops = sum(model.should_drop(rng, "a", "b", now) for _ in range(n))
    return drops / n


class TestNoLoss:
    def test_never_drops(self):
        assert drop_fraction(NoLoss()) == 0.0


class TestBernoulliLoss:
    def test_zero_rate(self):
        assert drop_fraction(BernoulliLoss(0.0)) == 0.0

    def test_full_rate(self):
        assert drop_fraction(BernoulliLoss(1.0)) == 1.0

    def test_rate_matches_statistics(self):
        assert drop_fraction(BernoulliLoss(0.05)) == pytest.approx(0.05,
                                                                   abs=0.01)

    def test_invalid_rate(self):
        with pytest.raises(NetworkError):
            BernoulliLoss(1.5)
        with pytest.raises(NetworkError):
            BernoulliLoss(-0.1)


class TestPerLinkLoss:
    def test_link_specific_rate(self):
        model = PerLinkLoss({("a", "b"): 1.0}, default=0.0)
        rng = random.Random(0)
        assert model.should_drop(rng, "a", "b", 0.0)
        assert not model.should_drop(rng, "b", "a", 0.0)  # directional
        assert not model.should_drop(rng, "a", "c", 0.0)

    def test_default_applies_to_unlisted(self):
        model = PerLinkLoss({}, default=1.0)
        assert model.should_drop(random.Random(0), "x", "y", 0.0)

    def test_set_rate(self):
        model = PerLinkLoss({})
        model.set_rate("a", "b", 1.0)
        assert model.should_drop(random.Random(0), "a", "b", 0.0)

    def test_invalid_rates_rejected(self):
        with pytest.raises(NetworkError):
            PerLinkLoss({("a", "b"): 2.0})
        with pytest.raises(NetworkError):
            PerLinkLoss({}, default=-1)
        with pytest.raises(NetworkError):
            PerLinkLoss({}).set_rate("a", "b", 7)


class TestScheduledLoss:
    def test_base_outside_windows(self):
        model = ScheduledLoss(NoLoss(), [(10.0, 20.0, BernoulliLoss(1.0))])
        rng = random.Random(0)
        assert not model.should_drop(rng, "a", "b", 5.0)
        assert model.should_drop(rng, "a", "b", 15.0)
        assert not model.should_drop(rng, "a", "b", 25.0)

    def test_window_boundaries_half_open(self):
        model = ScheduledLoss(NoLoss(), [(10.0, 20.0, BernoulliLoss(1.0))])
        rng = random.Random(0)
        assert model.should_drop(rng, "a", "b", 10.0)
        assert not model.should_drop(rng, "a", "b", 20.0)

    def test_first_matching_window_wins(self):
        model = ScheduledLoss(NoLoss(), [
            (0.0, 100.0, BernoulliLoss(1.0)),
            (50.0, 60.0, NoLoss()),
        ])
        assert model.should_drop(random.Random(0), "a", "b", 55.0)

    def test_bad_window_rejected(self):
        with pytest.raises(NetworkError):
            ScheduledLoss(NoLoss(), [(5.0, 5.0, NoLoss())])

    def test_add_window(self):
        model = ScheduledLoss(NoLoss())
        model.add_window(0.0, 1.0, BernoulliLoss(1.0))
        assert model.should_drop(random.Random(0), "a", "b", 0.5)
