"""Shared fixtures and helpers for the protocol test suites."""

from __future__ import annotations

import pytest

from repro.fastraft.server import FastRaftServer
from repro.harness.builder import Cluster, build_cluster
from repro.harness.checkers import run_safety_checks
from repro.raft.server import RaftServer
from repro.smr.kv import KVStateMachine


def make_cluster(server_cls, n_sites=5, seed=0, **kwargs) -> Cluster:
    kwargs.setdefault("state_machine_factory", KVStateMachine)
    cluster = build_cluster(server_cls, n_sites=n_sites, seed=seed, **kwargs)
    return cluster


def started_cluster(server_cls, n_sites=5, seed=0, **kwargs) -> Cluster:
    cluster = make_cluster(server_cls, n_sites=n_sites, seed=seed, **kwargs)
    cluster.start_all()
    cluster.run_until_leader()
    return cluster


def commit_n(cluster: Cluster, client, n: int, timeout=30.0):
    """Commit n puts through the client; returns the records."""
    records = []
    for i in range(n):
        records.append(cluster.propose_and_wait(
            client, {"op": "put", "key": f"k{i}", "value": i},
            timeout=timeout))
    return records


def assert_safe(cluster: Cluster) -> None:
    run_safety_checks(cluster.servers.values(), cluster.trace)


@pytest.fixture
def raft_cluster():
    return started_cluster(RaftServer, seed=1)


@pytest.fixture
def fast_cluster():
    return started_cluster(FastRaftServer, seed=1)
