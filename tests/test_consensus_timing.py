"""Tests for timing configuration."""

import pytest

from repro.consensus.timing import TimingConfig
from repro.errors import ConfigurationError


class TestDefaults:
    def test_paper_intra_cluster_values(self):
        timing = TimingConfig.intra_cluster()
        assert timing.heartbeat_interval == pytest.approx(0.100)
        assert timing.member_timeout_beats == 5

    def test_paper_inter_cluster_values(self):
        timing = TimingConfig.inter_cluster()
        assert timing.heartbeat_interval == pytest.approx(0.500)
        assert timing.election_timeout_min >= 3 * timing.heartbeat_interval

    def test_decision_interval_defaults_to_half_heartbeat(self):
        timing = TimingConfig(heartbeat_interval=0.2)
        assert timing.effective_decision_interval == pytest.approx(0.1)

    def test_explicit_decision_interval(self):
        timing = TimingConfig(decision_interval=0.02)
        assert timing.effective_decision_interval == pytest.approx(0.02)


class TestValidation:
    def test_nonpositive_heartbeat_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingConfig(heartbeat_interval=0)

    def test_election_shorter_than_heartbeat_rejected(self):
        # "the election timeout cannot be shorter than message delays,
        # otherwise ... no progress can be made"
        with pytest.raises(ConfigurationError):
            TimingConfig(heartbeat_interval=0.5,
                         election_timeout_min=0.3,
                         election_timeout_max=0.6)

    def test_inverted_election_range_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingConfig(election_timeout_min=0.9,
                         election_timeout_max=0.5)

    def test_bad_member_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingConfig(member_timeout_beats=0)

    def test_bad_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingConfig(max_append_batch=0)


class TestOverrides:
    def test_with_overrides(self):
        timing = TimingConfig().with_overrides(heartbeat_interval=0.05,
                                               decision_interval=0.01)
        assert timing.heartbeat_interval == 0.05
        assert timing.effective_decision_interval == 0.01

    def test_overrides_keep_other_fields(self):
        timing = TimingConfig(member_timeout_beats=9)
        assert timing.with_overrides(
            heartbeat_interval=0.05).member_timeout_beats == 9

    def test_frozen(self):
        with pytest.raises(Exception):
            TimingConfig().heartbeat_interval = 1.0
