"""Observer/tiebreaker roles and the joining-leader exclusion quorum.

The tentpole safety property, exercised two ways:

- **Arithmetic** (`TestQuorumIntersection`): exhaustively, for every
  degenerate voting set a tiebreaker can serve (``|members| <= 2``,
  observers, an eligible joiner), any two voter sets that satisfy *any*
  mix of the quorum rules (classic, election, CONFIG-entry) intersect in
  at least one site. Intersection + one-vote-per-site is exactly what
  makes two conflicting committed configurations impossible.
- **Executions** (`TestNoConflictingConfigs`): seed sweeps over crash
  and partition schedules on a 2-voter + observer cluster; after every
  run, all sites' committed CONFIG entries must agree index-by-index and
  the usual safety checkers must pass. No seed may commit two
  conflicting configurations.

Plus the liveness the roles exist for: a 2-voter cluster that loses one
voter (leader or follower) keeps committing, excludes the dead voter,
and admits a replacement joiner whose votes count toward the exclusion.
"""

from __future__ import annotations

import itertools

import pytest

from repro.consensus.config import Configuration
from repro.consensus.engine import Role
from repro.consensus.entry import EntryKind
from repro.consensus.messages import JoinRequest
from repro.consensus.quorum import classic_quorum_size
from repro.fastraft.server import FastRaftServer
from repro.harness.builder import build_cluster
from repro.harness.checkers import (
    check_committed_prefix_agreement,
    check_election_safety,
)
from repro.smr.kv import KVStateMachine
from tests.conftest import assert_safe, commit_n


def observer_cluster(seed, n_sites=2, n_observers=1, **kwargs):
    kwargs.setdefault("state_machine_factory", KVStateMachine)
    return build_cluster(FastRaftServer, n_sites=n_sites, seed=seed,
                         n_observers=n_observers, **kwargs)


def committed_configs(server):
    """(index, members, observers, version) for every *committed* CONFIG
    entry in the server's log."""
    engine = server.engine
    out = []
    for index, entry in engine.log:
        if (index <= engine.commit_index
                and entry.kind is EntryKind.CONFIG):
            out.append((index, entry.payload.members,
                        entry.payload.observers, entry.payload.version))
    return out


def assert_single_config_lineage(cluster) -> None:
    """No two sites hold conflicting committed CONFIG entries: at every
    committed index where two sites both have a CONFIG entry, the
    configurations are identical."""
    by_index: dict[int, tuple] = {}
    for server in cluster.servers.values():
        for index, members, observers, version in committed_configs(server):
            seen = by_index.setdefault(index, (members, observers, version))
            assert seen == (members, observers, version), (
                f"conflicting committed configs at index {index}: "
                f"{seen} vs {(members, observers, version)}")


# ----------------------------------------------------------------------
# Arithmetic: every quorum-rule combination intersects
# ----------------------------------------------------------------------
class TestQuorumIntersection:
    def _quorum_families(self, members, observers, joiners):
        """All voter sets satisfying each rule, over the whole universe."""
        config = Configuration(members, observers)
        universe = sorted(set(members) | set(observers) | set(joiners))
        classic, election, config_rule = [], [], []
        for r in range(len(universe) + 1):
            for combo in itertools.combinations(universe, r):
                voters = set(combo)
                if config.is_classic_quorum(voters):
                    classic.append(voters)
                if config.is_election_quorum(voters):
                    election.append(voters)
                if config.config_entry_quorum(voters, set(joiners)):
                    config_rule.append(voters)
        return classic, election, config_rule

    def test_all_rule_mixes_intersect(self):
        """The no-two-conflicting-configs core: for every degenerate
        shape, any two quorums under any mix of rules share a site."""
        shapes = [
            (("a",), (), ()),
            (("a",), ("o",), ()),
            (("a", "b"), (), ()),
            (("a", "b"), ("o",), ()),
            (("a", "b"), ("o",), ("j",)),
            (("a", "b"), ("o", "p"), ()),
            (("a", "b"), ("o", "p"), ("j",)),
            (("a", "b"), (), ("j",)),
        ]
        for members, observers, joiners in shapes:
            families = self._quorum_families(members, observers, joiners)
            all_quorums = [q for family in families for q in family]
            for qa, qb in itertools.combinations(all_quorums, 2):
                assert qa & qb, (
                    f"disjoint quorums {sorted(qa)} / {sorted(qb)} for "
                    f"members={members} observers={observers} "
                    f"joiners={joiners}")

    def test_promotion_only_when_degenerate(self):
        """With three or more voters the tiebreaker never activates: the
        election and CONFIG rules collapse to the classic quorum."""
        config = Configuration(("a", "b", "c"), ("o",))
        assert not config.tiebreaker_active
        assert not config.is_election_quorum({"a", "o"})
        assert not config.config_entry_quorum({"a", "o"})
        assert config.is_election_quorum({"a", "b"})

    def test_observers_never_count_toward_ordinary_commits(self):
        config = Configuration(("a", "b"), ("o",))
        assert not config.is_classic_quorum({"a", "o"})
        assert not config.is_fast_quorum({"a", "o"})
        assert config.config_entry_quorum({"a", "o"})
        assert config.is_election_quorum({"b", "o"})

    def test_expanded_quorum_is_majority_of_electorate(self):
        config = Configuration(("a", "b"), ("o",))
        electorate = 3
        assert classic_quorum_size(electorate) == 2
        assert not config.config_entry_quorum({"o"})
        assert not config.is_election_quorum({"o"})


# ----------------------------------------------------------------------
# Roles: replication without votes, promotion, demotion
# ----------------------------------------------------------------------
class TestObserverRole:
    def test_observer_replicates_but_never_votes_commits(self):
        cluster = observer_cluster(seed=2, n_sites=3)
        cluster.start_all()
        cluster.run_until_leader()
        client = cluster.add_client(site="n0")
        commit_n(cluster, client, 5)
        cluster.run_for(1.0)
        observer = cluster.servers["n3"]
        assert observer.engine.commit_index >= 5  # fully replicated
        assert not observer.engine.is_member
        assert observer.engine.role is Role.FOLLOWER
        # a full cluster (3 voters) never needs the observer's ballot
        assert not cluster.servers[
            cluster.leader()].engine.configuration.tiebreaker_active
        assert_safe(cluster)

    def test_observer_does_not_ask_to_join(self):
        cluster = observer_cluster(seed=5, n_sites=2)
        cluster.start_all()
        cluster.run_until_leader()
        cluster.run_for(5.0)  # many election timeouts' worth
        leader = cluster.servers[cluster.leader()]
        assert leader.engine.configuration.members == ("n0", "n1")
        assert leader.engine.configuration.observers == ("n2",)

    def test_two_voter_leader_crash_recovers_via_tiebreaker(self):
        """The flat-engine version of the global deadlock: 2 voters, the
        *leader* dies. The observer's election ballot elects the
        survivor; its CONFIG votes commit the exclusion."""
        for seed in (1, 3, 7):
            cluster = observer_cluster(seed=seed, n_sites=2)
            cluster.start_all()
            victim = cluster.run_until_leader()
            survivor = next(n for n in ("n0", "n1") if n != victim)
            cluster.servers[victim].crash()
            assert cluster.run_until(
                lambda: cluster.leader() == survivor, timeout=30.0), \
                f"seed {seed}: survivor never won the tiebreaker election"
            engine = cluster.servers[survivor].engine
            assert cluster.run_until(
                lambda: victim not in engine.configuration.members,
                timeout=30.0), f"seed {seed}: exclusion never committed"
            client = cluster.add_client(site=survivor)
            records = commit_n(cluster, client, 3)
            assert all(r.done for r in records)
            assert_single_config_lineage(cluster)
            check_election_safety(cluster.trace)

    def test_two_voter_follower_crash_excluded_via_tiebreaker(self):
        cluster = observer_cluster(seed=4, n_sites=2)
        cluster.start_all()
        leader = cluster.run_until_leader()
        victim = next(n for n in ("n0", "n1") if n != leader)
        cluster.servers[victim].crash()
        engine = cluster.servers[leader].engine
        assert cluster.run_until(
            lambda: victim not in engine.configuration.members,
            timeout=30.0)
        assert engine.configuration.observers == ("n2",)
        client = cluster.add_client(site=leader)
        assert all(r.done for r in commit_n(cluster, client, 3))
        assert_single_config_lineage(cluster)

    def test_fast_committed_entry_survives_exclusion_insert(self):
        """Found by an end-to-end drive: the crashed leader had
        fast-committed (and client-acked) an entry whose copy at the
        survivor was still self-approved with the commit unheard. The
        exclusion's direct insert used to land at commit_index+1 and
        overwrite it -- a committed write vanished. It must land on an
        empty slot and let the decision procedure re-derive the
        surviving value from votes (Lemma 2)."""
        cluster = observer_cluster(seed=1, n_sites=2)
        cluster.start_all()
        leader = cluster.run_until_leader()
        client = cluster.add_client(site=leader)
        assert cluster.propose_and_wait(client, {"op": "put", "key": "pre",
                                                 "value": 1}).done
        cluster.servers[leader].crash()
        survivor = next(n for n in ("n0", "n1") if n != leader)
        assert cluster.run_until(lambda: cluster.leader() == survivor,
                                 timeout=30.0)
        engine = cluster.servers[survivor].engine
        assert cluster.run_until(
            lambda: leader not in engine.configuration.members,
            timeout=30.0)
        client2 = cluster.add_client(site=survivor)
        assert cluster.propose_and_wait(client2, {"op": "put", "key": "post",
                                                  "value": 2}).done
        snap = cluster.servers[survivor].state_machine.snapshot()
        assert snap == {"pre": 1, "post": 2}, snap
        # the recovered ex-leader rejoins and converges to the same state
        cluster.servers[leader].recover()
        assert cluster.run_until(
            lambda: leader in engine.configuration.members, timeout=60.0)
        cluster.run_for(2.0)
        assert cluster.servers[leader].state_machine.snapshot() == snap
        assert_safe(cluster)
        assert_single_config_lineage(cluster)

    def test_observer_promoted_to_voter_on_join(self):
        """An observer that asks to join moves from the observer list to
        the member list in one single-site change."""
        cluster = observer_cluster(seed=6, n_sites=2)
        cluster.start_all()
        leader_name = cluster.run_until_leader()
        leader = cluster.servers[leader_name]
        observer = cluster.servers["n2"]
        observer.engine.seek_membership()
        assert cluster.run_until(
            lambda: "n2" in leader.engine.configuration.members,
            timeout=30.0)
        assert "n2" not in leader.engine.configuration.observers
        assert cluster.run_until(lambda: observer.engine.is_member,
                                 timeout=15.0)
        assert_safe(cluster)


class TestClassicRaftObservers:
    """The observer role is engine-agnostic: classic Raft replicates to
    observers and its membership changes preserve the observer list."""

    def test_observer_replicated_and_preserved_across_config_change(self):
        from repro.raft.server import RaftServer
        cluster = build_cluster(RaftServer, n_sites=3, n_observers=1,
                                seed=2, state_machine_factory=KVStateMachine)
        cluster.start_all()
        leader_name = cluster.run_until_leader()
        client = cluster.add_client(site=leader_name)
        commit_n(cluster, client, 4)
        cluster.run_for(1.0)
        observer = cluster.servers["n3"]
        assert observer.engine.commit_index >= 4  # replicated, non-voting
        assert not observer.engine.is_member
        # a membership change must not erase the observer list
        joiner = RaftServer(
            name="n8", loop=cluster.loop, network=cluster.network,
            store=cluster.fabric.store_for("n8"),
            bootstrap_config=Configuration(("n0", "n1", "n2"), ("n3",)),
            timing=cluster.timing, rng=cluster.rng, trace=cluster.trace,
            state_machine_factory=KVStateMachine)
        cluster.add_server(joiner)
        joiner.start()
        leader = cluster.servers[leader_name]
        leader.engine.admin_add_site("n8")  # classic Raft: admin API
        assert cluster.run_until(
            lambda: "n8" in leader.engine.configuration.members,
            timeout=30.0)
        assert leader.engine.configuration.observers == ("n3",)
        assert observer.engine.configuration.observers == ("n3",)
        assert_safe(cluster)


# ----------------------------------------------------------------------
# Joining-leader exclusion quorum (no observer needed)
# ----------------------------------------------------------------------
class TestJoiningLeaderExclusionQuorum:
    def test_replacement_joiner_unwedges_two_voter_exclusion(self):
        """2 voters, no observer, one voter dead: the exclusion cannot
        decide (2-of-2). A joiner naming the dead voter as the seat it
        replaces is caught up early and its votes complete the quorum."""
        cluster = build_cluster(FastRaftServer, n_sites=2, seed=9,
                                state_machine_factory=KVStateMachine)
        cluster.start_all()
        leader_name = cluster.run_until_leader()
        victim = next(n for n in ("n0", "n1") if n != leader_name)
        client = cluster.add_client(site=leader_name)
        commit_n(cluster, client, 3)
        cluster.servers[victim].crash()
        leader = cluster.servers[leader_name]
        # wedged: the exclusion change is pending but cannot decide
        cluster.run_for(3.0)
        assert victim in leader.engine.configuration.members
        # a fresh site joins, naming the dead voter's seat
        joiner = FastRaftServer(
            name="n8", loop=cluster.loop, network=cluster.network,
            store=cluster.fabric.store_for("n8"),
            bootstrap_config=Configuration(("n0", "n1")),
            timing=cluster.timing, rng=cluster.rng, trace=cluster.trace,
            state_machine_factory=KVStateMachine)
        cluster.add_server(joiner)
        joiner.start()
        cluster.network.send("n8", leader_name,
                             JoinRequest(site="n8", replaces=victim))
        assert cluster.run_until(
            lambda: victim not in leader.engine.configuration.members,
            timeout=30.0), "the replacement joiner never completed the " \
                           "exclusion quorum"
        assert cluster.run_until(
            lambda: "n8" in leader.engine.configuration.members,
            timeout=30.0)
        assert all(r.done for r in commit_n(cluster, client, 3))
        # the joiner replayed the full history before voting
        assert cluster.run_until(
            lambda: joiner.state_machine.snapshot().get("k0") == 0,
            timeout=15.0)
        assert_single_config_lineage(cluster)
        check_election_safety(cluster.trace)

    def test_unrelated_joiner_does_not_count(self):
        """A joiner that does not name the dead voter's seat must not
        tip the exclusion quorum -- the expansion is single-purpose."""
        cluster = build_cluster(FastRaftServer, n_sites=2, seed=11,
                                state_machine_factory=KVStateMachine)
        cluster.start_all()
        leader_name = cluster.run_until_leader()
        victim = next(n for n in ("n0", "n1") if n != leader_name)
        cluster.servers[victim].crash()
        leader = cluster.servers[leader_name]
        joiner = FastRaftServer(
            name="n8", loop=cluster.loop, network=cluster.network,
            store=cluster.fabric.store_for("n8"),
            bootstrap_config=Configuration(("n0", "n1")),
            timing=cluster.timing, rng=cluster.rng, trace=cluster.trace,
            state_machine_factory=KVStateMachine)
        cluster.add_server(joiner)
        joiner.start()
        cluster.network.send("n8", leader_name,
                             JoinRequest(site="n8"))  # no replaces
        cluster.run_for(10.0)
        assert victim in leader.engine.configuration.members
        assert "n8" not in leader.engine.configuration.members


# ----------------------------------------------------------------------
# Seed sweeps: no execution commits two conflicting configs
# ----------------------------------------------------------------------
class TestNoConflictingConfigs:
    SEEDS = range(12)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_crash_schedule_single_lineage(self, seed):
        """Crash one of the two voters (leader on odd seeds, follower on
        even), let the tiebreaker settle the exclusion, then bring the
        crashed voter back to rejoin: one config lineage throughout."""
        cluster = observer_cluster(seed=seed, n_sites=2)
        cluster.start_all()
        leader_name = cluster.run_until_leader()
        follower = next(n for n in ("n0", "n1") if n != leader_name)
        victim = leader_name if seed % 2 else follower
        client_site = follower if seed % 2 else leader_name
        client = cluster.add_client(site=client_site)
        commit_n(cluster, client, 2)
        cluster.servers[victim].crash()
        survivor = next(n for n in ("n0", "n1") if n != victim)
        engine = cluster.servers[survivor].engine
        assert cluster.run_until(
            lambda: (cluster.leader() == survivor
                     and victim not in engine.configuration.members),
            timeout=40.0), f"seed {seed}: tiebreaker never settled"
        commit_n(cluster, client, 2)
        cluster.servers[victim].recover()
        assert cluster.run_until(
            lambda: victim in engine.configuration.members, timeout=40.0)
        cluster.run_for(2.0)
        assert_single_config_lineage(cluster)
        check_committed_prefix_agreement(
            s.engine for s in cluster.servers.values())
        check_election_safety(cluster.trace)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_partition_schedule_single_lineage(self, seed):
        """Isolate the leader from {follower, observer}: the pair elects
        a new leader via the tiebreaker, the old leader can commit
        nothing alone, and healing converges to one lineage."""
        cluster = observer_cluster(seed=seed, n_sites=2)
        cluster.start_all()
        old_leader = cluster.run_until_leader()
        follower = next(n for n in ("n0", "n1") if n != old_leader)
        cluster.network.partition([[old_leader], [follower, "n2"]])
        assert cluster.run_until(
            lambda: cluster.servers[follower].engine.role is Role.LEADER,
            timeout=40.0), f"seed {seed}: pair side never elected"
        client = cluster.add_client(site=follower)
        commit_n(cluster, client, 2)
        cluster.network.heal_partition()
        engine = cluster.servers[follower].engine
        cluster.run_until(
            lambda: cluster.servers[old_leader].engine.commit_index
            >= engine.commit_index, timeout=40.0)
        cluster.run_for(2.0)
        assert_single_config_lineage(cluster)
        check_committed_prefix_agreement(
            s.engine for s in cluster.servers.values())
        check_election_safety(cluster.trace)
