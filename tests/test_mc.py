"""Model-checking subsystem battery.

Four guarantees are pinned here:

1. **Loop hooks** -- ``pending_handles``/``fire_handle`` expose the
   scheduler's branch set and fire one chosen event without disturbing
   the rest of the queue.
2. **Fork isolation** -- driving a forked world never mutates its
   parent (the scheduled-closure deep copy actually severs the worlds).
3. **Determinism** -- the same target, depth, and strategy produce
   identical visited-state fingerprints and byte-identical exported
   traces, and an exported schedule replays to the recorded state.
4. **The recovery liveness edge** -- the probe-before-trust handshake
   keeps ``mc_evicted_while_down`` violation-free (ROADMAP item 4,
   fixed), the ``_noprobe`` variant still reproduces the pre-fix silent
   window (so the violation export and schedule replay machinery stay
   exercised), and the recovery x eviction-timing battery explores the
   handshake itself from in-flight roots. The extra liveness probes
   (leader stability, commit progress) ride the same targets.
"""

import dataclasses
import hashlib
import json

import pytest

from repro.errors import ModelCheckError, SimulationError
from repro.mc import (
    branch_set,
    explore,
    export_report,
    fingerprint,
    fire_event,
    fork_world,
    make_strategy,
    replay_file,
)
from repro.mc.probes import (
    CommitProgressProbe,
    LeaderStabilityProbe,
    RecoveredRejoinProbe,
    make_probe,
)
from repro.scenarios.mc import get_mc_target, mc_target_names, prepare_world
from repro.sim.loop import SimLoop


# ----------------------------------------------------------------------
# 1. Loop hooks
# ----------------------------------------------------------------------
class TestLoopHooks:
    def test_pending_handles_sorted_by_due_time(self):
        loop = SimLoop()
        for delay in (0.3, 0.1, 0.2):
            loop.call_later(delay, lambda: None)
        assert [h.when for h in loop.pending_handles()] == [0.1, 0.2, 0.3]

    def test_cancelled_handles_are_not_pending(self):
        loop = SimLoop()
        keep = loop.call_later(0.1, lambda: None)
        drop = loop.call_later(0.2, lambda: None)
        drop.cancel()
        assert loop.pending_handles() == [keep]

    def test_fire_handle_runs_callback_and_advances_clock(self):
        loop = SimLoop()
        seen = []
        loop.call_later(0.5, lambda: seen.append(loop.now()))
        loop.fire_handle(loop.pending_handles()[0])
        assert seen == [0.5]
        assert loop.now() == 0.5
        assert not loop.pending_handles()

    def test_fire_handle_out_of_order(self):
        # Firing a later-due event first is the whole point: the clock
        # jumps forward and the earlier event stays firable.
        loop = SimLoop()
        seen = []
        loop.call_later(0.1, lambda: seen.append("early"))
        loop.call_later(0.9, lambda: seen.append("late"))
        loop.fire_handle(loop.pending_handles()[-1])
        assert seen == ["late"] and loop.now() == 0.9
        loop.fire_handle(loop.pending_handles()[0])
        assert seen == ["late", "early"]
        assert loop.now() == 0.9  # never runs backwards

    def test_fire_handle_rejects_cancelled(self):
        loop = SimLoop()
        handle = loop.call_later(0.1, lambda: None)
        handle.cancel()
        with pytest.raises(SimulationError):
            loop.fire_handle(handle)


# ----------------------------------------------------------------------
# 2. Fork isolation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def healthy_target():
    return get_mc_target("mc_small_healthy")


@pytest.fixture(scope="module")
def evicted_target():
    return get_mc_target("mc_evicted_while_down")


def test_branch_set_is_nonempty_and_sorted(healthy_target):
    world = prepare_world(healthy_target)
    events = branch_set(world)
    assert events
    assert events == sorted(events, key=lambda e: (e.when, e.seq))


def test_fork_is_isolated(healthy_target):
    world = prepare_world(healthy_target)
    base = fingerprint(world)
    base_seqs = [h.seq for h in world.loop.pending_handles()]
    fork = fork_world(world)
    for _ in range(5):
        fire_event(fork, branch_set(fork)[0])
    # The fork moved; the parent did not.
    assert fork.loop.now() > world.loop.now()
    assert fingerprint(world) == base
    assert [h.seq for h in world.loop.pending_handles()] == base_seqs


def test_fire_event_rejects_divergence(healthy_target):
    world = prepare_world(healthy_target)
    event = branch_set(world)[0]
    stale = dataclasses.replace(event, seq=10 ** 9)
    with pytest.raises(ModelCheckError):
        fire_event(world, stale)


# ----------------------------------------------------------------------
# 3. Determinism
# ----------------------------------------------------------------------
def _export_digest(report, directory) -> str:
    out = export_report(report, directory)
    digest = hashlib.sha256()
    for path in sorted(out.iterdir()):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


@pytest.mark.parametrize("strategy", ["dfs", "bfs", "random"])
def test_exploration_is_deterministic(healthy_target, strategy, tmp_path):
    runs = [explore(healthy_target, strategy=strategy, depth=4,
                    max_states=120, walk_seed=3) for _ in range(2)]
    assert (runs[0].visited_fingerprints()
            == runs[1].visited_fingerprints())
    assert (_export_digest(runs[0], tmp_path / "a")
            == _export_digest(runs[1], tmp_path / "b"))


def test_unknown_strategy_rejected():
    with pytest.raises(ModelCheckError):
        make_strategy("simulated-annealing")


def test_registry_lists_targets():
    names = mc_target_names()
    for required in ("mc_small_healthy", "mc_small_classic",
                     "mc_evicted_while_down",
                     "mc_evicted_while_down_noprobe",
                     "mc_recover_before_eviction",
                     "mc_recover_at_eviction",
                     "mc_recover_after_eviction", "mc_fig3_fast"):
        assert required in names
    with pytest.raises(ModelCheckError):
        get_mc_target("mc_no_such_target")


# ----------------------------------------------------------------------
# 4. The recovery liveness edge (ROADMAP item 4, fixed)
# ----------------------------------------------------------------------
DEPTH = 12


@pytest.fixture(scope="module")
def evicted_report(evicted_target):
    return explore(evicted_target, strategy="dfs", depth=DEPTH,
                   max_states=150)


@pytest.fixture(scope="module")
def noprobe_report():
    return explore(get_mc_target("mc_evicted_while_down_noprobe"),
                   strategy="dfs", depth=DEPTH, max_states=150)


def test_evicted_while_down_recovery_is_live(evicted_report):
    """ROADMAP item 4 fixed (was a strict xfail): the probe-before-trust
    handshake detects the stale restored configuration and routes the
    site straight onto the rejoin path -- the exploration starts with
    the recovery probes in flight and reorders them adversarially."""
    assert not evicted_report.liveness_violations
    assert not evicted_report.safety_violations


def test_explorer_flags_evicted_while_down_without_probe(noprobe_report):
    """With the handshake disabled the pre-fix silent window is back:
    the recovered site trusts its stale configuration and idles."""
    assert noprobe_report.liveness_violations
    assert not noprobe_report.safety_violations
    flagged = {v.probe for v in noprobe_report.liveness_violations}
    assert flagged == {"recovered_rejoin"}


def test_replay_reproduces_flagged_state(noprobe_report, tmp_path):
    out = export_report(noprobe_report, tmp_path / "trace")
    manifest = json.loads((out / "violations.json").read_text())
    name = next(entry["schedule"] for entry in manifest
                if "schedule" in entry)
    result = replay_file(out / name)
    assert result.matched
    # The reproduced world really is the stuck state the probe flagged.
    assert RecoveredRejoinProbe(bound=1).state_flags(result.world)


def test_healthy_cluster_is_clean_at_same_depth(healthy_target):
    report = explore(healthy_target, strategy="dfs", depth=DEPTH,
                     max_states=150)
    assert not report.violations


@pytest.mark.parametrize("name", ["mc_recover_before_eviction",
                                  "mc_recover_at_eviction",
                                  "mc_recover_after_eviction"])
def test_recovery_timing_battery_is_clean(name):
    """The eviction-timing battery: recovery before / racing / just
    after the member timeout, each explored from a root where the
    handshake is still in flight. Every ordering must stay live."""
    report = explore(get_mc_target(name), strategy="dfs", depth=DEPTH,
                     max_states=150)
    assert not report.violations


# ----------------------------------------------------------------------
# 5. The extra liveness probes (leader stability, commit progress)
# ----------------------------------------------------------------------
class _Node:
    def __init__(self, depth, flags, fp):
        self.depth = depth
        self.flags = flags
        self.fingerprint = fp


def test_probe_registry_resolves_and_rejects():
    for name, cls in (("recovered_rejoin", RecoveredRejoinProbe),
                      ("leader_stability", LeaderStabilityProbe),
                      ("commit_progress", CommitProgressProbe)):
        assert isinstance(make_probe(name, 5), cls)
    with pytest.raises(ModelCheckError):
        make_probe("quantum_oracle", 5)


def test_extra_probes_ride_registered_targets():
    target = get_mc_target("mc_small_healthy")
    assert "leader_stability" in target.probes
    assert "commit_progress" in target.probes


def test_leader_stability_flags_only_terminal_leaderlessness(healthy_target):
    world = prepare_world(healthy_target)
    probe = LeaderStabilityProbe(5)
    # A healthy warmed-up world has a leader: no flag.
    assert not probe.state_flags(world)


def test_commit_progress_judges_lasso_only():
    """An adversarial but finite ordering can stall commits legitimately,
    so the step bound must not apply -- only a closed cycle flags."""
    probe = CommitProgressProbe(3)
    flags = {"commit_progress": frozenset({"n0:5"})}
    deep = [_Node(d, flags, f"fp{d}") for d in range(6)]
    assert not probe.judge(deep[-1], deep)        # past bound, no cycle
    cycle = [_Node(0, flags, "same"), _Node(1, flags, "mid"),
             _Node(2, flags, "same")]
    verdict = probe.judge(cycle[-1], cycle)
    assert [v.reason for v in verdict] == ["lasso"]


def test_leader_stability_step_bound_applies():
    probe = LeaderStabilityProbe(3)
    flags = {"leader_stability": frozenset({"cluster"})}
    path = [_Node(d, flags, f"fp{d}") for d in range(4)]
    verdict = probe.judge(path[-1], path)
    assert [v.reason for v in verdict] == ["step_bound"]
