"""Property-based tests (hypothesis) for core data structures."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consensus.config import Configuration
from repro.consensus.entry import EntryKind, InsertedBy, LogEntry
from repro.consensus.log import RaftLog
from repro.consensus.quorum import (
    classic_quorum_size,
    fast_quorum_size,
    quorum_intersection_ok,
)
from repro.fastraft.votes import PossibleEntries
from repro.metrics.summary import percentile, summarize
from repro.net.latency import BandwidthLatencyModel, ConstantLatency
from repro.sim.loop import SimLoop
from repro.sim.rng import RngRegistry
from repro.snapshot import Snapshot
from repro.snapshot.chunking import (
    ChunkAssembler,
    chunk_offsets,
    deserialize_snapshot,
    serialize_snapshot,
)


def entry(entry_id: str) -> LogEntry:
    return LogEntry(entry_id=entry_id, kind=EntryKind.DATA, payload=None,
                    origin="n0", term=1, inserted_by=InsertedBy.SELF)


class TestQuorumProperties:
    @given(st.integers(min_value=1, max_value=2000))
    def test_two_classic_quorums_intersect(self, members):
        assert 2 * classic_quorum_size(members) > members

    @given(st.integers(min_value=1, max_value=2000))
    def test_fast_quorum_plurality_condition(self, members):
        """Zhao's condition (Lemma 2) for every configuration size."""
        assert quorum_intersection_ok(members)

    @given(st.integers(min_value=1, max_value=2000))
    def test_fast_quorum_bounds(self, members):
        fq = fast_quorum_size(members)
        assert classic_quorum_size(members) <= fq <= members

    @given(st.sets(st.text(min_size=1, max_size=4), min_size=1,
                   max_size=12))
    def test_configuration_quorum_checks_consistent(self, names):
        config = Configuration(tuple(names))
        assert config.is_classic_quorum(set(config.members))
        assert config.is_fast_quorum(set(config.members))
        below = set(list(config.members)[:config.classic_quorum - 1])
        assert not config.is_classic_quorum(below)


class TestLogProperties:
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=30),
                              st.text(min_size=1, max_size=3)),
                    max_size=40))
    def test_insert_sequence_invariants(self, operations):
        """After arbitrary inserts/overwrites: last_index is the max
        occupied slot; the id index matches slot contents exactly."""
        log = RaftLog()
        expected: dict[int, str] = {}
        for index, entry_id in operations:
            log.insert(index, entry(entry_id))
            expected[index] = entry_id
        assert log.last_index == (max(expected) if expected else 0)
        assert len(log) == len(expected)
        for index, entry_id in expected.items():
            assert log.get(index).entry_id == entry_id
        for index, entry_id in expected.items():
            assert index in log.indices_of(entry_id)

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=30),
                              st.text(min_size=1, max_size=3)),
                    max_size=40),
           st.integers(min_value=1, max_value=31))
    def test_truncate_removes_exactly_suffix(self, operations, cut):
        log = RaftLog()
        expected: dict[int, str] = {}
        for index, entry_id in operations:
            log.insert(index, entry(entry_id))
            expected[index] = entry_id
        log.truncate_from(cut)
        survivors = {i: e for i, e in expected.items() if i < cut}
        assert len(log) == len(survivors)
        for index in expected:
            if index >= cut:
                assert log.get(index) is None
        # id index consistent after truncation
        for index, entry_id in survivors.items():
            assert index in log.indices_of(entry_id)

    @given(st.lists(st.integers(min_value=1, max_value=20), min_size=1,
                    max_size=30))
    def test_committed_index_of_monotone(self, indices):
        """Raising the commit index never hides a committed duplicate."""
        log = RaftLog()
        for index in indices:
            log.insert(index, entry("dup"))
        results = [log.committed_index_of("dup", c) for c in range(0, 22)]
        seen = None
        for result in results:
            if result is not None:
                seen = result
                assert result == min(log.indices_of("dup"))
        assert seen is not None


class TestVoteBookProperties:
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=6),
                              st.sampled_from(["a", "b", "c"]),
                              st.sampled_from(["n1", "n2", "n3", "n4"])),
                    max_size=40))
    def test_one_vote_per_site_per_index(self, votes):
        """However votes arrive (including revotes), a site holds at most
        one live vote per index."""
        book = PossibleEntries()
        for index, value, voter in votes:
            book.add_vote(index, entry(value), voter)
        for index in book.indices():
            seen: set[str] = set()
            for record in book.candidates(index):
                assert not (record.voters & seen), "double-counted voter"
                seen |= record.voters

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=6),
                              st.sampled_from(["a", "b", "c"]),
                              st.sampled_from(["n1", "n2", "n3"])),
                    max_size=30),
           st.sampled_from(["a", "b", "c"]),
           st.integers(min_value=1, max_value=6))
    def test_null_out_preserves_voter_counts(self, votes, chosen_id, keep):
        book = PossibleEntries()
        for index, value, voter in votes:
            book.add_vote(index, entry(value), voter)
        before = {i: book.voters_at(i) for i in book.indices()}
        book.null_out(chosen_id, except_index=keep)
        for index, voters in before.items():
            assert book.voters_at(index) == voters


class TestSummaryProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_summary_bounds(self, values):
        stats = summarize(values)
        assert stats.minimum <= stats.median <= stats.maximum
        assert stats.minimum <= stats.mean <= stats.maximum
        assert stats.p5 <= stats.p95

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=50),
           st.floats(min_value=0, max_value=1))
    def test_percentile_within_range(self, values, fraction):
        ordered = sorted(values)
        result = percentile(ordered, fraction)
        assert ordered[0] <= result <= ordered[-1]


#: Arbitrary JSON-ish machine states for snapshot payload properties.
machine_states = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20)


class TestChunkingProperties:
    @given(machine_states, st.integers(min_value=1, max_value=4096))
    @settings(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_chunk_then_reassemble_is_identity(self, state, chunk_size):
        """For any snapshot payload and chunk_size >= 1, splitting the
        wire form into chunks and reassembling them (in any arrival
        order -- reversed here, the worst case) reproduces the snapshot
        exactly."""
        snapshot = Snapshot(last_included_index=5, last_included_term=2,
                            machine_state=state, origin="n0")
        data = serialize_snapshot(snapshot)
        pieces = chunk_offsets(len(data), chunk_size)
        assert sum(length for _, length in pieces) == len(data)
        assembler = ChunkAssembler(5, 2, 1, len(data))
        for offset, length in reversed(pieces):
            assembler.add(offset, data[offset:offset + length])
        assert assembler.complete
        assert deserialize_snapshot(assembler.assemble()) == snapshot

    @given(st.integers(min_value=0, max_value=20_000),
           st.integers(min_value=0, max_value=20_000),
           st.integers(min_value=1, max_value=4096),
           st.floats(min_value=1.0, max_value=1e9, allow_nan=False))
    @settings(deadline=None, max_examples=60)
    def test_charged_latency_monotone_in_payload_size(
            self, size_a, size_b, chunk_size, bandwidth):
        """Total charged transfer latency (every chunk's serialization
        plus propagation) never decreases when the payload grows."""
        model = BandwidthLatencyModel(ConstantLatency(0.01), bandwidth)
        rng = RngRegistry(0).stream("x")

        def total_charge(size: int) -> float:
            return sum(
                model.transfer_delay(rng, "a", "b", length)
                for _, length in chunk_offsets(size, chunk_size))
        small, big = sorted((size_a, size_b))
        assert total_charge(small) <= total_charge(big)

    @given(st.integers(min_value=0, max_value=20_000),
           st.integers(min_value=1, max_value=4096))
    @settings(deadline=None, max_examples=60)
    def test_monolithic_and_chunked_charge_same_bytes(self, size,
                                                      chunk_size):
        """Chunking redistributes the payload, it never shrinks it."""
        pieces = chunk_offsets(size, chunk_size)
        assert sum(length for _, length in pieces) == size
        offsets = [offset for offset, _ in pieces]
        assert offsets == sorted(set(offsets))


class TestSchedulerProperties:
    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), max_size=50))
    def test_events_fire_in_time_order(self, delays):
        loop = SimLoop()
        fired: list[float] = []
        for delay in delays:
            loop.call_later(delay, lambda d=delay: fired.append(loop.now()))
        loop.run_until_idle()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.integers(), st.text(min_size=1, max_size=8))
    def test_rng_streams_deterministic(self, seed, name):
        a = RngRegistry(seed).stream(name).random()
        b = RngRegistry(seed).stream(name).random()
        assert a == b
