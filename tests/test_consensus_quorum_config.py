"""Tests for quorum arithmetic and configurations."""

import pytest

from repro.consensus.config import Configuration
from repro.consensus.quorum import (
    classic_quorum_size,
    fast_quorum_size,
    quorum_intersection_ok,
)
from repro.errors import ConfigurationError


class TestQuorumSizes:
    def test_classic_majority(self):
        assert classic_quorum_size(1) == 1
        assert classic_quorum_size(2) == 2
        assert classic_quorum_size(3) == 2
        assert classic_quorum_size(4) == 3
        assert classic_quorum_size(5) == 3
        assert classic_quorum_size(20) == 11

    def test_fast_quorum_paper_values(self):
        # ceil(3M/4); the paper's 5-site example gives 4.
        assert fast_quorum_size(5) == 4
        assert fast_quorum_size(4) == 3
        assert fast_quorum_size(3) == 3
        assert fast_quorum_size(20) == 15

    def test_fast_at_least_classic(self):
        for m in range(1, 100):
            assert fast_quorum_size(m) >= classic_quorum_size(m)

    def test_intersection_condition_holds_for_all_sizes(self):
        """Zhao's plurality condition holds for ceil(3M/4) at every M."""
        for m in range(1, 500):
            assert quorum_intersection_ok(m), f"fails at M={m}"

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            classic_quorum_size(0)
        with pytest.raises(ConfigurationError):
            fast_quorum_size(-1)


class TestConfiguration:
    def test_members_sorted_unique(self):
        config = Configuration(("c", "a", "b"))
        assert config.members == ("a", "b", "c")

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration(("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration(())

    def test_quorum_properties(self):
        config = Configuration(("a", "b", "c", "d", "e"))
        assert config.size == 5
        assert config.classic_quorum == 3
        assert config.fast_quorum == 4

    def test_is_classic_quorum_with_set(self):
        config = Configuration(("a", "b", "c", "d", "e"))
        assert config.is_classic_quorum({"a", "b", "c"})
        assert not config.is_classic_quorum({"a", "b"})
        # non-members do not count
        assert not config.is_classic_quorum({"a", "b", "zz"})

    def test_is_quorum_with_int(self):
        config = Configuration(("a", "b", "c", "d", "e"))
        assert config.is_classic_quorum(3)
        assert config.is_fast_quorum(4)
        assert not config.is_fast_quorum(3)

    def test_contains(self):
        config = Configuration(("a", "b"))
        assert "a" in config
        assert "z" not in config

    def test_others(self):
        config = Configuration(("a", "b", "c"))
        assert config.others("b") == ("a", "c")

    def test_with_member(self):
        config = Configuration(("a", "b"))
        bigger = config.with_member("c")
        assert bigger.members == ("a", "b", "c")
        assert config.members == ("a", "b")  # immutable
        with pytest.raises(ConfigurationError):
            config.with_member("a")

    def test_without_member(self):
        config = Configuration(("a", "b", "c"))
        smaller = config.without_member("b")
        assert smaller.members == ("a", "c")
        with pytest.raises(ConfigurationError):
            config.without_member("z")

    def test_cannot_remove_last_member(self):
        with pytest.raises(ConfigurationError):
            Configuration(("a",)).without_member("a")

    def test_single_change_from(self):
        base = Configuration(("a", "b", "c"))
        assert base.single_change_from(base)
        assert base.with_member("d").single_change_from(base)
        assert base.without_member("c").single_change_from(base)
        two_changes = Configuration(("a", "b", "d", "e"))
        assert not two_changes.single_change_from(base)
