"""Tests for named RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_same_stream_object():
    rng = RngRegistry(1)
    assert rng.stream("a") is rng.stream("a")


def test_different_names_independent():
    rng = RngRegistry(1)
    a = [rng.stream("a").random() for _ in range(5)]
    b = [rng.stream("b").random() for _ in range(5)]
    assert a != b


def test_deterministic_across_registries():
    first = [RngRegistry(7).stream("x").random() for _ in range(3)]
    second = [RngRegistry(7).stream("x").random() for _ in range(3)]
    assert first == second


def test_root_seed_changes_streams():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_draw_order_between_streams_does_not_matter():
    """Interleaving draws on one stream must not perturb another."""
    rng1 = RngRegistry(3)
    rng1.stream("noise")  # created but never used
    a1 = [rng1.stream("a").random() for _ in range(3)]

    rng2 = RngRegistry(3)
    for _ in range(100):
        rng2.stream("noise").random()
    a2 = [rng2.stream("a").random() for _ in range(3)]
    assert a1 == a2


def test_derive_seed_is_stable():
    assert derive_seed(5, "net.latency") == derive_seed(5, "net.latency")
    assert derive_seed(5, "a") != derive_seed(5, "b")
    assert derive_seed(5, "a") != derive_seed(6, "a")


def test_fork_creates_independent_registry():
    parent = RngRegistry(9)
    child = parent.fork("trial1")
    assert child.root_seed != parent.root_seed
    assert child.stream("x").random() != parent.stream("x").random()


def test_fork_deterministic():
    a = RngRegistry(9).fork("t").stream("x").random()
    b = RngRegistry(9).fork("t").stream("x").random()
    assert a == b
