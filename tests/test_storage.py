"""Tests for stable storage crash/recovery semantics."""

import pytest

from repro.errors import StorageError
from repro.storage.stable import StableStore, StorageFabric


class TestStableStore:
    def test_set_get(self):
        store = StableStore("n1")
        store.set("term", 3)
        assert store.get("term") == 3

    def test_get_default(self):
        store = StableStore("n1")
        assert store.get("missing", 7) == 7
        assert store.get("missing") is None

    def test_require_raises_on_missing(self):
        store = StableStore("n1")
        with pytest.raises(StorageError):
            store.require("missing")

    def test_contains(self):
        store = StableStore("n1")
        store.set("x", 1)
        assert "x" in store
        assert "y" not in store

    def test_keys_sorted(self):
        store = StableStore("n1")
        store.set("b", 1)
        store.set("a", 2)
        assert store.keys() == ["a", "b"]

    def test_write_count(self):
        store = StableStore("n1")
        store.set("a", 1)
        store.set("a", 2)
        assert store.write_count == 2

    def test_wipe(self):
        store = StableStore("n1")
        store.set("a", 1)
        store.wipe()
        assert "a" not in store

    def test_touch_counts_in_place_mutation(self):
        """In-place mutations of stored mutable objects must be charged
        to the write counter via touch() so fsync-cost reports stay
        honest."""
        store = StableStore("n1")
        log = [1]
        store.set("log", log)
        assert store.write_count == 1
        log.append(2)          # durable by reference, but...
        store.touch("log")     # ...the mutation site must declare it
        assert store.write_count == 2
        assert store.get("log") == [1, 2]

    def test_touch_unwritten_key_raises(self):
        store = StableStore("n1")
        with pytest.raises(StorageError):
            store.touch("log")

    def test_mutable_value_shared_by_reference(self):
        """The conservative durability model: in-place mutations of stored
        objects are immediately durable."""
        store = StableStore("n1")
        log = [1, 2]
        store.set("log", log)
        log.append(3)
        assert store.get("log") == [1, 2, 3]


class TestStorageFabric:
    def test_store_survives_node_object(self):
        fabric = StorageFabric()
        fabric.store_for("n1").set("term", 9)
        # A "recovered" node fetches the same store by name.
        assert fabric.store_for("n1").get("term") == 9

    def test_distinct_stores_per_name(self):
        fabric = StorageFabric()
        fabric.store_for("n1").set("x", 1)
        assert fabric.store_for("n2").get("x") is None

    def test_forget(self):
        fabric = StorageFabric()
        fabric.store_for("n1").set("x", 1)
        fabric.forget("n1")
        assert fabric.store_for("n1").get("x") is None

    def test_contains(self):
        fabric = StorageFabric()
        fabric.store_for("n1")
        assert "n1" in fabric
        assert "n2" not in fabric
