"""Dispatch-table completeness over the wire-message catalog.

Every message dataclass in :mod:`repro.consensus.messages` must have a
registered handler on each engine that can receive it -- on the flat
``@handles`` table (current core) *and* on the legacy ``_build_dispatch``
table, so both cores route identically. A new message type added without
a handler turns from a silent runtime drop (or a mid-run
``ConsensusError`` on first delivery) into a failure here.
"""

from __future__ import annotations

import dataclasses
import inspect

import pytest

from repro.consensus import messages as messages_module
from repro.craft.global_engine import CRaftGlobalEngine
from repro.craft.local import CRaftLocalEngine
from repro.craft.server import CRaftServer
from repro.fastraft.engine import FastRaftEngine
from repro.raft.engine import ClassicRaftEngine

#: Wire/bookkeeping dataclasses engines never dispatch on, with the
#: reason each is exempt. Anything new must either get a handler or an
#: explicit entry here.
NON_ENGINE_MESSAGES = {
    "ClientReply": "delivered to clients, not to servers",
    "Envelope": "unwrapped by the server layer before engine dispatch",
    "PendingClient": "leader-side bookkeeping record, never on the wire",
    "ReadRequest": "lease reads are served by the server layer",
    "ReadReply": "delivered to clients, not to servers",
}

#: Message types only the *other* protocol family uses.
PROTOCOL_EXEMPT = {
    ClassicRaftEngine: {"ProposeEntry", "VoteEntry"},
    FastRaftEngine: {"ProposeToLeader"},
    CRaftLocalEngine: {"ProposeToLeader"},
    CRaftGlobalEngine: {"ProposeToLeader"},
}

ENGINES = sorted(PROTOCOL_EXEMPT, key=lambda cls: cls.__name__)


def message_types() -> dict[str, type]:
    return {name: cls
            for name, cls in inspect.getmembers(messages_module,
                                                inspect.isclass)
            if cls.__module__ == messages_module.__name__
            and dataclasses.is_dataclass(cls)}


@pytest.mark.parametrize("engine_cls", ENGINES,
                         ids=lambda cls: cls.__name__)
def test_flat_table_covers_every_receivable_message(engine_cls):
    expected = (set(message_types())
                - set(NON_ENGINE_MESSAGES)
                - PROTOCOL_EXEMPT[engine_cls])
    table = {cls.__name__ for cls in engine_cls._DISPATCH_TABLE}
    missing = expected - table
    assert not missing, (
        f"{engine_cls.__name__} has no @handles entry for {sorted(missing)}"
        " -- these messages would raise ConsensusError on delivery")


@pytest.mark.parametrize("engine_cls", ENGINES,
                         ids=lambda cls: cls.__name__)
def test_legacy_and_flat_tables_route_the_same_types(engine_cls):
    """The legacy per-instance dict and the flat class table must cover
    the same message types -- a handler registered on one core only
    would make the cores diverge on delivery."""
    # _build_dispatch only binds methods, so a blank instance suffices.
    blank = object.__new__(engine_cls)
    legacy = {cls.__name__ for cls in engine_cls._build_dispatch(blank)}
    flat = {cls.__name__ for cls in engine_cls._DISPATCH_TABLE}
    assert legacy == flat


def test_flat_tables_hold_only_known_messages():
    """No stale entries: every table key is a catalog message class."""
    catalog = set(message_types().values())
    for engine_cls in ENGINES:
        stray = set(engine_cls._DISPATCH_TABLE) - catalog
        assert not stray, f"{engine_cls.__name__}: {stray}"


def test_exempt_messages_have_a_server_side_route():
    """The engine exemptions are justified: the server layer actually
    handles Envelope (both the wrapped and the enveloped fast path),
    and ClientReply is a client-side type."""
    assert callable(CRaftServer.on_message)
    assert callable(CRaftServer.on_enveloped)
    assert "ClientReply" in message_types()
    # PendingClient never travels: nothing to route.
    assert "PendingClient" in NON_ENGINE_MESSAGES
