"""Serving layer: session dedup, lease reads, proposal coalescing.

The exactly-once contract under test: a session client retries every
request until committed (at-least-once delivery); the server side must
apply each request to the state machine exactly once and answer retried
duplicates without re-entering consensus -- across leader failover,
crash recovery, and snapshot restore. Lease reads must observe a
linearizable history.
"""

import pytest

from repro.consensus.messages import ClientRequest
from repro.consensus.timing import TimingConfig
from repro.craft.batching import BatchPolicy
from repro.fastraft.server import FastRaftServer
from repro.harness.faults import FaultInjector
from repro.raft.server import RaftServer
from repro.smr.kv import KVCommand
from repro.smr.sessions import SessionTable, parse_session
from repro.snapshot import CompactionPolicy
from tests.conftest import started_cluster


def duplicate_of(record, client):
    """Re-create the exact wire message a session client retries with."""
    return ClientRequest(request_id=record.request_id,
                         command=record.command,
                         session_id=client.name,
                         sequence=record.sequence)


class TestParseSession:
    def test_session_ids_parse(self):
        assert parse_session("c0.7") == ("c0", 7)
        assert parse_session("s12.read.3") == ("s12.read", 3)

    def test_non_session_ids_rejected(self):
        assert parse_session("noop") is None          # no separator
        assert parse_session(".5") is None            # empty session
        assert parse_session("c0.x") is None          # non-integer tail
        assert parse_session("c0.-1") is None         # negative sequence


class TestSessionTable:
    def test_observe_and_lookup(self):
        table = SessionTable()
        table.observe("c0.1", 10)
        table.observe("c0.2", 11)
        assert table.last_applied("c0") == (2, 11)
        assert table.is_duplicate("c0", 1)
        assert table.is_duplicate("c0", 2)
        assert not table.is_duplicate("c0", 3)
        assert len(table) == 1

    def test_unknown_session_is_never_duplicate(self):
        table = SessionTable()
        assert table.last_applied("ghost") == (0, 0)
        assert not table.is_duplicate("ghost", 1)

    def test_out_of_order_observe_keeps_max(self):
        table = SessionTable()
        table.observe("c0.5", 50)
        table.observe("c0.3", 30)  # stale replay must not regress
        assert table.last_applied("c0") == (5, 50)

    def test_non_session_ids_ignored(self):
        table = SessionTable()
        table.observe("noop", 1)
        table.observe("batch!3", 2)
        assert len(table) == 0

    def test_rebuild_from_applied_ids(self):
        table = SessionTable.from_applied_ids(
            ["c0.1", "c0.3", "c1.2", "noop"])
        assert table.is_duplicate("c0", 3)
        assert table.is_duplicate("c1", 2)
        assert not table.is_duplicate("c1", 3)
        assert len(table) == 2


class TestDuplicateDelivery:
    def test_duplicate_answered_without_consensus(self):
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0", session=True)
        record = cluster.propose_and_wait(client,
                                          KVCommand.append("k", "x"))
        server = cluster.servers["n0"]
        # a real retry fires a full proposal timeout later -- long after
        # the commit has propagated and applied at the attached site
        assert cluster.run_until(
            lambda: server.session_count >= 1, timeout=10.0)
        commits_before = server.engine.commit_index
        cluster.network.send_local(client.name, "n0",
                                   duplicate_of(record, client))
        cluster.run_for(1.0)
        assert server.session_duplicates == 1
        # answered from the table: nothing new entered the log
        assert server.engine.commit_index == commits_before
        for live in cluster.live_servers():
            assert live.state_machine.get("k") == "x"  # not "xx"

    def test_duplicate_of_older_sequence_still_suppressed(self):
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0", session=True)
        first = cluster.propose_and_wait(client, KVCommand.append("k", "a"))
        cluster.propose_and_wait(client, KVCommand.append("k", "b"))
        server = cluster.servers["n0"]
        assert cluster.run_until(
            lambda: server.state_machine.get("k") == "ab", timeout=10.0)
        cluster.network.send_local(client.name, "n0",
                                   duplicate_of(first, client))
        cluster.run_for(1.0)
        assert cluster.servers["n0"].session_duplicates == 1
        assert cluster.servers["n0"].state_machine.get("k") == "ab"

    def test_sessionless_clients_unaffected(self):
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0")  # no session
        record = cluster.propose_and_wait(client,
                                          KVCommand.append("k", "x"))
        assert record.sequence == 0  # wire-identical to the old client
        assert cluster.servers["n0"].session_count == 0


class TestRetryRacingCommit:
    def test_retry_during_leader_crash_applies_once(self):
        """The retry races the original through a leader change; the
        applied-id and session layers must both collapse the pair."""
        cluster = started_cluster(FastRaftServer, seed=6)
        leader = cluster.leader()
        follower = next(n for n in cluster.servers if n != leader)
        client = cluster.add_client(site=follower, proposal_timeout=0.5,
                                    session=True)
        FaultInjector(cluster).crash(leader)
        record = client.submit(KVCommand.append("raced", "x"))
        assert cluster.run_until(lambda: record.done, timeout=30.0)
        cluster.run_for(2.0)  # let any straggler retry land too
        for live in cluster.live_servers():
            assert live.state_machine.get("raced") == "x"

    def test_retry_before_commit_falls_through_to_consensus(self):
        """A retry of a not-yet-applied request is not a duplicate: the
        session table only covers applied sequences, so the retry rides
        to the engine (whose applied-id set dedups the double commit)."""
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0", session=True)
        record = client.submit(KVCommand.append("k", "x"))
        # re-deliver immediately, before anything could commit
        cluster.network.send_local(client.name, "n0",
                                   duplicate_of(record, client))
        assert cluster.run_until(lambda: record.done, timeout=10.0)
        cluster.run_for(1.0)
        assert cluster.servers["n0"].session_duplicates == 0
        for live in cluster.live_servers():
            assert live.state_machine.get("k") == "x"


class TestDedupSurvivesFailover:
    def test_new_leader_recognizes_old_duplicates(self):
        cluster = started_cluster(FastRaftServer, seed=6)
        old_leader = cluster.leader()
        client = cluster.add_client(site="n0", session=True)
        record = cluster.propose_and_wait(client,
                                          KVCommand.append("k", "x"))
        FaultInjector(cluster).crash(old_leader)
        cluster.run_until_leader(timeout=30.0)
        new_leader = cluster.leader()
        assert new_leader != old_leader
        promoted = cluster.servers[new_leader]
        assert cluster.run_until(
            lambda: promoted.session_count >= 1, timeout=30.0)
        cluster.network.send_local(client.name, new_leader,
                                   duplicate_of(record, client))
        cluster.run_for(1.0)
        assert cluster.servers[new_leader].session_duplicates == 1
        for live in cluster.live_servers():
            assert live.state_machine.get("k") == "x"

    def test_dedup_survives_crash_recovery(self):
        """Session state is volatile; recovery must rebuild it from the
        replayed log before any duplicate can sneak through."""
        cluster = started_cluster(FastRaftServer, seed=1)
        client = cluster.add_client(site="n0", session=True)
        record = cluster.propose_and_wait(client,
                                          KVCommand.append("k", "x"))
        faults = FaultInjector(cluster)
        faults.crash("n2")
        cluster.run_for(1.0)
        faults.recover("n2")
        recovered = cluster.servers["n2"]
        assert cluster.run_until(
            lambda: recovered.session_count >= 1, timeout=30.0)
        cluster.network.send_local(client.name, "n2",
                                   duplicate_of(record, client))
        cluster.run_for(1.0)
        assert recovered.session_duplicates == 1
        assert recovered.state_machine.get("k") == "x"


class TestDedupSurvivesSnapshotRestore:
    def test_rebuilt_table_from_snapshot_applied_ids(self):
        """A site that catches up through InstallSnapshot never saw the
        compacted entries apply; its session table must come from the
        snapshot's applied-id set."""
        cluster = started_cluster(
            FastRaftServer, seed=1,
            compaction=CompactionPolicy(threshold=16, retain=2))
        client = cluster.add_client(site="n0", session=True)
        cluster.network.disconnect("n4")
        records = [cluster.propose_and_wait(
            client, KVCommand.append(f"k{i}", "x")) for i in range(40)]
        cluster.network.reconnect("n4")
        behind = cluster.servers["n4"]
        target = cluster.servers["n0"].engine.commit_index
        assert cluster.run_until(
            lambda: behind.engine.commit_index >= target, timeout=60.0)
        assert behind.session_count >= 1
        cluster.network.send_local(client.name, "n4",
                                   duplicate_of(records[0], client))
        cluster.run_for(1.0)
        assert behind.session_duplicates == 1
        assert behind.state_machine.get("k0") == "x"


class TestCraftSessions:
    def make_deployment(self):
        from repro.craft import build_craft_deployment
        from repro.net.latency import RegionLatencyModel
        from repro.net.topology import Topology
        from repro.smr.kv import KVStateMachine
        topo = Topology.even_clusters(6, ["us", "eu", "ap"])
        latency = RegionLatencyModel(
            dict(topo.node_regions),
            {("us", "eu"): 0.080, ("us", "ap"): 0.170,
             ("eu", "ap"): 0.220}, intra_rtt=0.0008, jitter=0.1)
        dep = build_craft_deployment(
            topo, latency, seed=3, batch_policy=BatchPolicy(batch_size=1),
            state_machine_factory=KVStateMachine)
        dep.start_all()
        dep.run_until_local_leaders()
        dep.run_until_global_ready(timeout=60.0)
        return topo, dep

    def test_duplicate_suppressed_at_attached_site(self):
        topo, dep = self.make_deployment()
        site = topo.nodes_in_cluster(topo.clusters[0])[0]
        client = dep.add_client(site=site, session=True)
        record = client.submit(KVCommand.append("k", "x"))
        assert dep.run_until(lambda: record.done, timeout=60.0)
        server = dep.servers[site]
        assert dep.run_until(lambda: server.session_count >= 1,
                             timeout=60.0)
        dep.network.send_local(client.name, site,
                               duplicate_of(record, client))
        dep.run_for(1.0)
        assert server.session_duplicates == 1

    def test_duplicate_suppressed_across_clusters(self):
        """Batches carry applied ids to every cluster, so a session that
        fails over to a *different* cluster is still deduped there."""
        topo, dep = self.make_deployment()
        home = topo.nodes_in_cluster(topo.clusters[0])[0]
        away = topo.nodes_in_cluster(topo.clusters[1])[0]
        client = dep.add_client(site=home, session=True)
        record = client.submit(KVCommand.append("k", "x"))
        assert dep.run_until(lambda: record.done, timeout=60.0)
        remote = dep.servers[away]
        assert dep.run_until(lambda: remote.session_count >= 1,
                             timeout=60.0)
        dep.network.send_local(client.name, away,
                               duplicate_of(record, client))
        dep.run_for(1.0)
        assert remote.session_duplicates == 1


LEASE_TIMING = TimingConfig(lease_duration=0.5)


class TestLeaseReads:
    def test_leader_serves_read_locally(self):
        cluster = started_cluster(RaftServer, seed=1, timing=LEASE_TIMING)
        leader = cluster.leader()
        writer = cluster.add_client(site=leader)
        cluster.propose_and_wait(writer, KVCommand.put("x", 1))
        cluster.run_for(0.5)  # a quorum-acked beat establishes the lease
        reader = cluster.add_client(site=leader)
        record = reader.read("x")
        assert cluster.run_until(lambda: record.done, timeout=5.0)
        assert record.result == 1
        assert record.kind == "read"

    def test_follower_read_waits_for_fresh_beat(self):
        cluster = started_cluster(RaftServer, seed=1, timing=LEASE_TIMING)
        leader = cluster.leader()
        writer = cluster.add_client(site=leader)
        cluster.propose_and_wait(writer, KVCommand.put("x", 7))
        follower = next(n for n in cluster.servers if n != leader)
        reader = cluster.add_client(site=follower)
        record = reader.read("x")
        assert cluster.run_until(lambda: record.done, timeout=5.0)
        assert record.result == 7

    def test_reads_refused_when_leases_disabled(self):
        cluster = started_cluster(RaftServer, seed=1)  # lease_duration=0
        reader = cluster.add_client(site="n0", proposal_timeout=0.2,
                                    max_attempts=3)
        record = reader.read("x")
        cluster.run_for(2.0)
        assert not record.done
        assert record in reader.abandoned

    def test_lease_reads_observe_linearizable_history(self):
        """Reads overlapping write ``i`` (with write ``i-1`` already
        acknowledged) may return only ``i-1`` or ``i``, and successive
        reads through one site never travel backwards."""
        cluster = started_cluster(RaftServer, seed=2, timing=LEASE_TIMING)
        leader = cluster.leader()
        writer = cluster.add_client(site=leader)
        follower = next(n for n in cluster.servers if n != leader)
        reader = cluster.add_client(site=follower)
        cluster.propose_and_wait(writer, KVCommand.put("x", 0))
        seen = []
        for i in range(1, 11):
            write = writer.submit(KVCommand.put("x", i))
            read = reader.read("x")
            assert cluster.run_until(
                lambda: write.done and read.done, timeout=10.0)
            assert read.result in (i - 1, i)
            seen.append(read.result)
        assert seen == sorted(seen)  # monotonic through one session


class TestProposalCoalescing:
    def test_full_batch_flushes_and_commits(self):
        cluster = started_cluster(
            FastRaftServer, seed=1,
            propose_batch=BatchPolicy(batch_size=4, max_age=0.05))
        leader = cluster.run_until_leader()
        client = cluster.add_client(site=leader)
        records = [client.submit(KVCommand.put(f"k{i}", i))
                   for i in range(4)]
        assert cluster.run_until(
            lambda: all(r.done for r in records), timeout=10.0)
        cluster.run_for(1.0)  # let the commit propagate to followers
        for live in cluster.live_servers():
            assert live.state_machine.get("k3") == 3

    def test_partial_batch_flushes_on_age(self):
        cluster = started_cluster(
            FastRaftServer, seed=1,
            propose_batch=BatchPolicy(batch_size=100, max_age=0.05))
        leader = cluster.run_until_leader()
        client = cluster.add_client(site=leader)
        record = client.submit(KVCommand.put("solo", 1))
        assert cluster.run_until(lambda: record.done, timeout=10.0)

    def test_no_max_age_flushes_next_turn(self):
        """``max_age=None`` coalesces only same-instant arrivals: the
        flush timer arms at the pending batch's own arrival time."""
        cluster = started_cluster(
            FastRaftServer, seed=1,
            propose_batch=BatchPolicy(batch_size=100))
        leader = cluster.run_until_leader()
        client = cluster.add_client(site=leader)
        record = client.submit(KVCommand.put("solo", 1))
        assert cluster.run_until(lambda: record.done, timeout=10.0)

    def test_follower_requests_bypass_coalescer(self):
        cluster = started_cluster(
            FastRaftServer, seed=1,
            propose_batch=BatchPolicy(batch_size=100))
        leader = cluster.run_until_leader()
        follower = next(n for n in cluster.servers if n != leader)
        client = cluster.add_client(site=follower)
        record = cluster.propose_and_wait(client, KVCommand.put("f", 1))
        assert record.done
