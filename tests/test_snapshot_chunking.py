"""Chunked InstallSnapshot transfer and the size-aware cost model.

Unit coverage for the chunking vocabulary (offsets, assembler, sender),
the message/store sizing, and the bandwidth latency decorator; protocol
coverage for the follower's discard rules (term bump, newer snapshot,
stale leader); and seeded end-to-end rejoins through chunked transfer in
all three engines -- including a leader crash mid-transfer.
"""

import random

import pytest

from repro.consensus.config import Configuration, TransferConfig
from repro.consensus.engine import EngineContext
from repro.consensus.entry import (
    ConfigPayload,
    EntryKind,
    InsertedBy,
    LogEntry,
)
from repro.consensus.messages import (
    AppendEntries,
    Envelope,
    InstallSnapshotChunk,
    InstallSnapshotChunkAck,
    InstallSnapshotRequest,
    InstallSnapshotResponse,
    RequestVote,
)
from repro.consensus.timing import TimingConfig
from repro.craft.batching import BatchPolicy
from repro.craft.deployment import build_craft_deployment
from repro.errors import ConfigurationError, ConsensusError, NetworkError
from repro.fastraft.server import FastRaftServer
from repro.harness.builder import build_cluster
from repro.harness.checkers import (
    check_images_agree,
    check_state_machine_agreement,
    run_safety_checks,
)
from repro.harness.faults import FaultInjector
from repro.harness.workload import ClosedLoopWorkload
from repro.net.latency import BandwidthLatencyModel, ConstantLatency
from repro.net.latency import RegionLatencyModel
from repro.net.sizes import payload_size
from repro.net.topology import Topology
from repro.raft.engine import ClassicRaftEngine
from repro.raft.server import RaftServer
from repro.sim.loop import SimLoop
from repro.sim.trace import TraceRecorder
from repro.smr.kv import KVStateMachine
from repro.snapshot import CompactionPolicy, Snapshot
from repro.snapshot.chunking import (
    ChunkAssembler,
    chunk_offsets,
    deserialize_snapshot,
    serialize_snapshot,
    snapshot_wire_size,
)
from repro.storage.stable import StableStore
from tests.conftest import commit_n, started_cluster


# ----------------------------------------------------------------------
# Chunking vocabulary
# ----------------------------------------------------------------------
class TestChunkOffsets:
    def test_covers_range_exactly(self):
        offsets = chunk_offsets(10, 3)
        assert offsets == [(0, 3), (3, 3), (6, 3), (9, 1)]
        assert sum(length for _, length in offsets) == 10

    def test_single_chunk_when_size_fits(self):
        assert chunk_offsets(5, 10) == [(0, 5)]

    def test_empty_payload_still_one_chunk(self):
        assert chunk_offsets(0, 4) == [(0, 0)]

    def test_chunk_size_validated(self):
        with pytest.raises(ConsensusError):
            chunk_offsets(10, 0)


class TestChunkAssembler:
    def _assembler(self, data, chunk_size):
        return ChunkAssembler(last_included_index=7, last_included_term=2,
                              leader_term=3, total_size=len(data))

    def test_out_of_order_reassembly(self):
        data = bytes(range(50))
        asm = self._assembler(data, 7)
        pieces = chunk_offsets(len(data), 7)
        for offset, length in reversed(pieces):
            assert not asm.complete
            asm.add(offset, data[offset:offset + length])
        assert asm.complete
        assert asm.assemble() == data

    def test_duplicates_ignored(self):
        data = b"abcdefgh"
        asm = self._assembler(data, 4)
        assert asm.add(0, data[:4])
        assert not asm.add(0, data[:4])
        assert asm.received_bytes == 4
        asm.add(4, data[4:])
        assert asm.assemble() == data

    def test_incomplete_assemble_raises(self):
        asm = self._assembler(b"abcdefgh", 4)
        asm.add(0, b"abcd")
        with pytest.raises(ConsensusError):
            asm.assemble()

    def test_snapshot_roundtrip_through_chunks(self):
        snapshot = Snapshot(last_included_index=12, last_included_term=3,
                            machine_state={"k": list(range(40))},
                            applied_ids=("a", "b"), origin="n1")
        data = serialize_snapshot(snapshot)
        asm = ChunkAssembler(12, 3, 1, len(data))
        for offset, length in chunk_offsets(len(data), 13):
            asm.add(offset, data[offset:offset + length])
        assert deserialize_snapshot(asm.assemble()) == snapshot


class TestTransferConfig:
    def test_defaults_monolithic(self):
        assert not TransferConfig().chunked

    def test_chunked_flag(self):
        assert TransferConfig(chunk_size=1024).chunked

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TransferConfig(chunk_size=0)
        with pytest.raises(ConfigurationError):
            TransferConfig(chunk_window=0)
        with pytest.raises(ConfigurationError):
            TransferConfig(retry_timeout=0.0)


# ----------------------------------------------------------------------
# Size-aware cost model
# ----------------------------------------------------------------------
def _entry(entry_id, payload=None):
    return LogEntry(entry_id=entry_id, kind=EntryKind.DATA, payload=payload,
                    origin="n0", term=1, inserted_by=InsertedBy.LEADER)


class TestPayloadSizes:
    def test_append_entries_grows_with_batch(self):
        empty = AppendEntries(term=1, leader_id="n0", prev_log_index=0,
                              prev_log_term=0, entries=(), leader_commit=0)
        loaded = AppendEntries(
            term=1, leader_id="n0", prev_log_index=0, prev_log_term=0,
            entries=tuple((i, _entry(f"e{i}", "x" * 100))
                          for i in range(1, 11)),
            leader_commit=0)
        assert payload_size(loaded) > payload_size(empty) + 1000

    def test_chunk_size_tracks_data(self):
        small = InstallSnapshotChunk(term=1, leader_id="n0",
                                     last_included_index=5,
                                     last_included_term=1, offset=0,
                                     data=b"x" * 10, total_size=10,
                                     done=True)
        big = InstallSnapshotChunk(term=1, leader_id="n0",
                                   last_included_index=5,
                                   last_included_term=1, offset=0,
                                   data=b"x" * 1000, total_size=1000,
                                   done=True)
        assert payload_size(big) - payload_size(small) == 990

    def test_monolithic_matches_chunked_total(self):
        """Both transfer modes put the same image bytes on the wire."""
        snapshot = Snapshot(last_included_index=9, last_included_term=2,
                            machine_state={f"k{i}": i for i in range(50)})
        mono = InstallSnapshotRequest(term=1, leader_id="n0",
                                      snapshot=snapshot)
        wire = snapshot_wire_size(snapshot)
        data = serialize_snapshot(snapshot)
        chunk_bytes = sum(
            length for _, length in chunk_offsets(len(data), 64))
        assert chunk_bytes == wire
        assert payload_size(mono) >= wire

    def test_envelope_delegates_to_inner(self):
        chunk = InstallSnapshotChunk(term=1, leader_id="n0",
                                     last_included_index=5,
                                     last_included_term=1, offset=0,
                                     data=b"y" * 500, total_size=500,
                                     done=True)
        enveloped = Envelope("global", "global", chunk)
        assert payload_size(enveloped) > payload_size(chunk)
        assert payload_size(enveloped) < payload_size(chunk) + 100


class TestBandwidthLatencyModel:
    def test_adds_serialization_delay(self):
        model = BandwidthLatencyModel(ConstantLatency(0.010), 1000.0)
        rng = random.Random(0)
        assert model.transfer_delay(rng, "a", "b", 0) == pytest.approx(0.010)
        assert model.transfer_delay(rng, "a", "b", 500) == pytest.approx(
            0.010 + 0.5)

    def test_bandwidth_validated(self):
        with pytest.raises(NetworkError):
            BandwidthLatencyModel(ConstantLatency(0.01), 0.0)

    def test_network_charges_payload_size(self):
        """A big message takes measurably longer than a small one."""
        from repro.net.network import Network
        from repro.sim.actor import Actor
        from repro.sim.rng import RngRegistry

        received = {}

        class Sink(Actor):
            def on_message(self, message, sender):
                received[len(message)] = self.loop.now()

        loop = SimLoop()
        net = Network(loop, RngRegistry(1),
                      BandwidthLatencyModel(ConstantLatency(0.001), 1000.0))
        sink = Sink(loop, "b")
        net.register(sink)
        net.send("a", "b", b"x" * 10)
        net.send("a", "b", b"x" * 1000)
        loop.run_for(5.0)
        assert received[10] == pytest.approx(0.001 + 0.010 + 0.032)
        assert received[1000] == pytest.approx(0.001 + 1.0 + 0.032)
        assert net.stats.bytes_sent == 10 + 1000 + 2 * 32  # + headers

    def test_size_blind_model_skips_sizing(self):
        """Without a size-aware model nothing is charged or counted."""
        cluster = started_cluster(RaftServer, seed=2)
        assert cluster.network.stats.bytes_sent == 0


class TestWeightedWrites:
    def test_set_weighs_payload(self):
        store = StableStore("n0")
        store.set("term", 3)
        small = store.write_bytes
        store.set("snapshot", Snapshot(
            last_included_index=50, last_included_term=2,
            machine_state={f"k{i}": "v" * 100 for i in range(50)}))
        assert store.write_bytes - small > 100 * small

    def test_touch_takes_size(self):
        store = StableStore("n0")
        store.set("log", [])
        before = store.write_bytes
        store.touch("log", size=4096)
        assert store.write_bytes == before + 4096
        assert store.write_count == 2


# ----------------------------------------------------------------------
# Follower protocol: discard rules (driven engine, no cluster)
# ----------------------------------------------------------------------
def _snapshot(index, term=1, origin="n1", payload=None):
    return Snapshot(last_included_index=index, last_included_term=term,
                    machine_state=payload or {"upto": index}, origin=origin)


def _chunks_for(snapshot, term, leader, chunk_size=16):
    data = serialize_snapshot(snapshot)
    pieces = chunk_offsets(len(data), chunk_size)
    last_offset = pieces[-1][0]
    return [InstallSnapshotChunk(
        term=term, leader_id=leader,
        last_included_index=snapshot.last_included_index,
        last_included_term=snapshot.last_included_term,
        offset=offset, data=data[offset:offset + length],
        total_size=len(data), done=offset == last_offset)
        for offset, length in pieces]


class DrivenFollower:
    """A ClassicRaftEngine fed messages by hand; sends are collected."""

    def __init__(self, config: Configuration | None = None):
        self.loop = SimLoop()
        self.sent = []
        ctx = EngineContext(
            name="f1", loop=self.loop,
            send=lambda dst, message: self.sent.append((dst, message)),
            rng=random.Random(0), trace=TraceRecorder(enabled=True),
            store=StableStore("f1"), timing=TimingConfig(),
            transfer=TransferConfig(chunk_size=16))
        self.engine = ClassicRaftEngine(
            ctx, config or Configuration(("f1", "n1", "n2")))

    def deliver(self, message, sender):
        self.engine.handle(message, sender)

    def acks(self):
        return [m for _, m in self.sent
                if isinstance(m, InstallSnapshotChunkAck)]

    def responses(self):
        return [m for _, m in self.sent
                if isinstance(m, InstallSnapshotResponse)]


class TestFollowerDiscardRules:
    def test_chunks_buffer_until_complete_then_install(self):
        follower = DrivenFollower()
        chunks = _chunks_for(_snapshot(10), term=1, leader="n1")
        assert len(chunks) > 3
        for chunk in chunks[:-1]:
            follower.deliver(chunk, "n1")
            assert follower.engine.snapshots_installed == 0
        assert follower.engine._chunk_assembler is not None
        follower.deliver(chunks[-1], "n1")
        assert follower.engine._chunk_assembler is None
        assert follower.engine.snapshots_installed == 1
        assert follower.engine.commit_index == 10
        assert len(follower.acks()) == len(chunks)
        assert [r for r in follower.responses() if r.success]

    def test_unordered_and_duplicated_chunks_install_once(self):
        follower = DrivenFollower()
        chunks = _chunks_for(_snapshot(10), term=1, leader="n1")
        for chunk in reversed(chunks):
            follower.deliver(chunk, "n1")
        for chunk in chunks:  # a full duplicate wave
            follower.deliver(chunk, "n1")
        assert follower.engine.snapshots_installed == 1
        assert follower.engine.commit_index == 10

    def test_partial_transfer_discarded_on_term_bump(self):
        follower = DrivenFollower()
        chunks = _chunks_for(_snapshot(10), term=1, leader="n1")
        for chunk in chunks[:2]:
            follower.deliver(chunk, "n1")
        assert follower.engine._chunk_assembler is not None
        follower.deliver(RequestVote(term=2, candidate_id="n2",
                                     last_log_index=20, last_log_term=2),
                         "n2")
        assert follower.engine._chunk_assembler is None
        # the old leader's stragglers are rejected, not buffered
        for chunk in chunks[2:]:
            follower.deliver(chunk, "n1")
        assert follower.engine._chunk_assembler is None
        assert follower.engine.snapshots_installed == 0
        assert any(not ack.success for ack in follower.acks())

    def test_newer_snapshot_supersedes_partial(self):
        follower = DrivenFollower()
        old = _chunks_for(_snapshot(10), term=1, leader="n1")
        new = _chunks_for(_snapshot(20), term=1, leader="n1")
        for chunk in old[:2]:
            follower.deliver(chunk, "n1")
        for chunk in new:
            follower.deliver(chunk, "n1")
        assert follower.engine.snapshots_installed == 1
        assert follower.engine.commit_index == 20
        # stragglers of the superseded transfer die quietly
        for chunk in old[2:]:
            follower.deliver(chunk, "n1")
        assert follower.engine.commit_index == 20
        assert follower.engine.snapshots_installed == 1

    def test_new_leader_restarts_transfer_cleanly(self):
        """Mid-transfer leader change: the partial from the old leader is
        discarded and the new leader's transfer installs its own image."""
        follower = DrivenFollower()
        old = _chunks_for(_snapshot(10, origin="n1"), term=1, leader="n1")
        for chunk in old[:3]:
            follower.deliver(chunk, "n1")
        replacement = _snapshot(12, term=2, origin="n2")
        for chunk in _chunks_for(replacement, term=2, leader="n2"):
            follower.deliver(chunk, "n2")
        assert follower.engine.snapshots_installed == 1
        assert follower.engine.commit_index == 12
        assert follower.engine.snapshot_store.latest.origin == "n2"

    def test_partial_transfer_discarded_on_observer_promotion(self):
        """Mid-transfer observer-to-voter promotion: the governing
        config changes under the partial buffer, so it is discarded
        (same family as the term-bump / newer-snapshot rules) and the
        transfer restarts cleanly from the leader's next chunks."""
        follower = DrivenFollower(
            config=Configuration(("n1", "n2"), observers=("f1",)))
        assert not follower.engine.is_member
        chunks = _chunks_for(_snapshot(10), term=1, leader="n1")
        for chunk in chunks[:2]:
            follower.deliver(chunk, "n1")
        assert follower.engine._chunk_assembler is not None
        # The leader promotes f1: a CONFIG entry carrying it as a voter.
        promotion = LogEntry(
            entry_id="n1:config9.t1", kind=EntryKind.CONFIG,
            payload=ConfigPayload(members=("f1", "n1", "n2"), version=9),
            origin="n1", term=1, inserted_by=InsertedBy.LEADER)
        follower.deliver(AppendEntries(
            term=1, leader_id="n1", prev_log_index=0, prev_log_term=0,
            entries=((1, promotion),), leader_commit=0), "n1")
        assert follower.engine.is_member
        assert follower.engine._chunk_assembler is None  # partial gone
        # A fresh full transfer still installs.
        for chunk in chunks:
            follower.deliver(chunk, "n1")
        assert follower.engine.snapshots_installed == 1
        assert follower.engine.commit_index == 10

    def test_demotion_keeps_partial_transfer(self):
        """Only the observer-to-voter direction voids the buffer: an
        unrelated config change mid-transfer (here: some other site
        joining) leaves the reassembly untouched."""
        follower = DrivenFollower()
        chunks = _chunks_for(_snapshot(10), term=1, leader="n1")
        for chunk in chunks[:2]:
            follower.deliver(chunk, "n1")
        join = LogEntry(
            entry_id="n1:config9.t1", kind=EntryKind.CONFIG,
            payload=ConfigPayload(members=("f1", "n1", "n2", "n3"),
                                  version=9),
            origin="n1", term=1, inserted_by=InsertedBy.LEADER)
        follower.deliver(AppendEntries(
            term=1, leader_id="n1", prev_log_index=0, prev_log_term=0,
            entries=((1, join),), leader_commit=0), "n1")
        assert follower.engine._chunk_assembler is not None

    def test_chunks_for_covered_prefix_full_confirmed(self):
        """A follower already past the snapshot point short-circuits with
        a full InstallSnapshotResponse so the leader stops shipping."""
        follower = DrivenFollower()
        for chunk in _chunks_for(_snapshot(10), term=1, leader="n1"):
            follower.deliver(chunk, "n1")
        assert follower.engine.commit_index == 10
        follower.sent.clear()
        follower.deliver(_chunks_for(_snapshot(5), term=1, leader="n1")[0],
                         "n1")
        responses = follower.responses()
        assert responses and responses[-1].success
        assert responses[-1].last_included_index == 5
        assert not follower.acks()


# ----------------------------------------------------------------------
# End-to-end: chunked rejoin in all three engines
# ----------------------------------------------------------------------
POLICY = CompactionPolicy(threshold=10, retain=2)
TRANSFER = TransferConfig(chunk_size=512, chunk_window=4)


class TestChunkedCatchupEndToEnd:
    @pytest.mark.parametrize("server_cls", [RaftServer, FastRaftServer])
    def test_rejoin_via_chunked_install(self, server_cls):
        cluster = build_cluster(
            server_cls, n_sites=5, seed=9,
            state_machine_factory=KVStateMachine, compaction=POLICY,
            transfer=TRANSFER, bandwidth=500_000.0)
        cluster.start_all()
        cluster.run_until_leader()
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 3)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        faults = FaultInjector(cluster)
        faults.crash(victim)
        commit_n(cluster, client, 30)
        leader = cluster.servers[cluster.leader()].engine
        assert leader.log.snapshot_index > 3
        faults.recover(victim)
        recovered = cluster.servers[victim]
        assert cluster.run_until(
            lambda: recovered.engine.commit_index >= leader.commit_index,
            timeout=60.0)
        assert recovered.engine.snapshots_installed >= 1
        chunks = sum(s.engine.snapshot_chunks_sent
                     for s in cluster.servers.values())
        assert chunks > 1, "the transfer must actually have been chunked"
        cluster.run_for(1.0)
        run_safety_checks(cluster.servers.values(), cluster.trace)
        check_state_machine_agreement(cluster.servers.values())
        assert recovered.state_machine.get("k29") == 29

    def test_craft_member_rejoin_via_chunked_install(self):
        topo = Topology.even_clusters(6, ["east", "west"])
        latency = RegionLatencyModel(dict(topo.node_regions),
                                     {("east", "west"): 0.080},
                                     intra_rtt=0.0008, jitter=0.1)
        deployment = build_craft_deployment(
            topo, latency, seed=5, batch_policy=BatchPolicy(batch_size=5),
            state_machine_factory=KVStateMachine, local_compaction=POLICY,
            transfer=TRANSFER, bandwidth=2_000_000.0)
        deployment.start_all()
        deployment.run_until_local_leaders(timeout=30.0)
        deployment.run_until_global_ready(timeout=60.0)
        cluster_a = topo.clusters[0]
        leader_a = deployment.local_leader(cluster_a)
        client = deployment.add_client(site=leader_a)
        workload = ClosedLoopWorkload(client, max_requests=40)
        workload.start()
        assert deployment.run_until(
            lambda: workload.completed_count >= 5, timeout=60.0)
        victim = next(n for n in topo.nodes_in_cluster(cluster_a)
                      if n != leader_a)
        deployment.servers[victim].crash()
        assert deployment.run_until(lambda: workload.done, timeout=120.0)
        target = deployment.servers[
            deployment.local_leader(cluster_a)].local_engine.commit_index
        deployment.servers[victim].recover()
        recovered = deployment.servers[victim]
        assert deployment.run_until(
            lambda: recovered.local_engine.commit_index >= target,
            timeout=120.0)
        assert recovered.local_engine.snapshots_installed >= 1
        assert sum(s.local_engine.snapshot_chunks_sent
                   for s in deployment.servers.values()) > 1
        deployment.run_for(3.0)
        check_images_agree(
            ((s.global_applied_index, s.global_state_machine.snapshot(),
              s.name) for s in deployment.servers.values()),
            what="global state machines")

    def test_leader_crash_mid_transfer(self):
        """The shipping leader dies with chunks in flight; the follower
        discards the partial and converges through the successor."""
        cluster = build_cluster(
            RaftServer, n_sites=5, seed=13,
            state_machine_factory=KVStateMachine, compaction=POLICY,
            latency=ConstantLatency(0.020),
            transfer=TransferConfig(chunk_size=1024, chunk_window=1),
            bandwidth=60_000.0)
        cluster.start_all()
        cluster.run_until_leader()
        leader_name = cluster.leader()
        client = cluster.add_client(site=leader_name)
        # Distinct values per key: pickle memoizes repeated objects, so
        # identical values would collapse into a tiny image.
        value = "x" * 512
        for i in range(3):
            cluster.propose_and_wait(
                client, {"op": "put", "key": f"k{i}", "value": f"{value}{i}"})
        victim = next(n for n in cluster.servers if n != leader_name)
        faults = FaultInjector(cluster)
        faults.crash(victim)
        for i in range(3, 30):
            cluster.propose_and_wait(
                client, {"op": "put", "key": f"k{i}", "value": f"{value}{i}"},
                timeout=60.0)
        leader = cluster.servers[leader_name]
        assert leader.engine.log.snapshot_index > 3
        faults.recover(victim)
        # Wait for the transfer to be genuinely mid-flight, then kill
        # the leader before the follower can have completed it.
        started = cluster.run_until(
            lambda: (victim in leader.engine._chunk_senders
                     and len(leader.engine._chunk_senders[victim].acked)
                     >= 1),
            timeout=30.0)
        assert started, "transfer never started"
        sender = leader.engine._chunk_senders[victim]
        assert not sender.done, "transfer finished too fast to interrupt"
        faults.crash(leader_name)
        recovered = cluster.servers[victim]

        def caught_up():
            name = cluster.leader()
            if name is None:
                return False
            return (recovered.engine.commit_index
                    >= cluster.servers[name].engine.commit_index)
        assert cluster.run_until(caught_up, timeout=120.0)
        assert recovered.engine.snapshots_installed >= 1
        discards = [e for e in cluster.trace
                    if e.category == "raft.snapshot.transfer_discarded"
                    and e.node == victim]
        assert discards, "the partial transfer should have been discarded"
        cluster.run_for(1.0)
        live = [s for s in cluster.servers.values()
                if s.name != leader_name]
        run_safety_checks(cluster.servers.values(), cluster.trace)
        check_state_machine_agreement(live)
        assert recovered.state_machine.get("k29") == f"{value}29"
