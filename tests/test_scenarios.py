"""Scenario subsystem battery.

Three guarantees are pinned here:

1. **Migration fidelity** -- every migrated figure driver reproduces the
   exact table values the hand-written (pre-scenario) drivers produced
   for a pinned seed. The golden values below were captured from the
   seed-state code before the refactor; any drift in RNG stream usage,
   construction order, or event scheduling shows up as a mismatch.
2. **Serial == parallel** -- the SweepRunner produces identical metrics
   with ``jobs=1`` and ``jobs>1`` for the same cells.
3. **Spec semantics** -- the declarative layer (topology placement,
   event triggers, schedules, registry) behaves as documented.
"""

import math

import pytest

from repro.errors import ExperimentError
from repro.experiments.ablations import (
    AblationConfig,
    run_decision_interval_ablation,
)
from repro.experiments.catchup import CatchupConfig, run_catchup
from repro.experiments.fig3_latency import Fig3Config, run_fig3
from repro.experiments.fig4_churn import Fig4Config, run_fig4
from repro.experiments.fig5_throughput import Fig5Config, run_fig5
from repro.experiments.flapping import FlappingConfig, run_flapping
from repro.experiments.large_mesh import LargeMeshConfig, run_large_mesh
from repro.experiments.migrated_region import (
    MigratedRegionConfig,
    run_migrated_region,
)
from repro.experiments.rounds import RoundsConfig, run_rounds
from repro.experiments.two_region_failover import (
    TwoRegionFailoverConfig,
    run_two_region_failover,
)
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.runner import SweepRunner, run_cell
from repro.scenarios.spec import (
    Cell,
    Event,
    EventSchedule,
    LatencySpec,
    ScenarioSpec,
    SLOSpec,
    TopologySpec,
    WorkloadSpec,
)


def rows_equal(actual, expected):
    """Cell-wise equality that treats NaN == NaN (empty phases)."""
    assert len(actual) == len(expected)
    for row_a, row_e in zip(actual, expected):
        assert len(row_a) == len(row_e)
        for a, e in zip(row_a, row_e):
            if (isinstance(a, float) and isinstance(e, float)
                    and math.isnan(a) and math.isnan(e)):
                continue
            assert a == e, f"{row_a} != {row_e}"


# ----------------------------------------------------------------------
# 1. Migration fidelity: pinned-seed goldens from the pre-scenario code
# ----------------------------------------------------------------------
class TestGoldenTables:
    def test_rounds_golden(self):
        r = run_rounds(RoundsConfig.quick())
        assert [r.classic_commit_hops, r.classic_proposer_hops,
                r.fast_commit_hops, r.fast_proposer_hops] == [3, 4, 2, 3]

    def test_fig3_golden(self):
        r = run_fig3(Fig3Config(loss_rates=(0.0, 0.05), trials=8))
        rows_equal(r.table().as_dict()["rows"], [
            [0.0, 99.63279773782213, 49.3842454428823,
             100.07348202911001, 50.12365861729137, 2.01750167172357],
            [5.0, 161.77169408559584, 55.692111127086086,
             394.4196759970233, 82.99195823140847, 2.904750615692094],
        ])

    def test_fig4_golden(self):
        r = run_fig4(Fig4Config(warmup_commits=10, total_commits=50))
        table = r.table().as_dict()
        rows_equal(table["rows"], [
            ["before leave", 11, 49.22197213695124, 50.00000000000004,
             50.00000000000004],
            ["transition", 39, 62.82051282051274, 100.72072294255966,
             150.81615631430833],
            ["recovered", 0, float("nan"), float("nan"), float("nan")],
        ])
        assert table["notes"] == [
            "members after recovery: ['n2', 'n3', 'n4'], fast quorum 3",
            "silent leave at t=0.82s, loss 5%, member timeout 5 beats",
        ]

    def test_fig5_golden(self):
        # Re-pinned for the global-membership liveness work (PR 4): the
        # bootstrap seed now retires into a standing observer that keeps
        # receiving replication, which shifts the shared latency-RNG
        # stream and therefore the committed count within the window.
        r = run_fig5(Fig5Config(cluster_counts=(2,), trial_duration=20.0,
                                trials=1, warmup=5.0))
        rows_equal(r.table().as_dict()["rows"], [[2, 4.0, 31.5, 7.875]])

    def test_ablation_decision_golden(self):
        table = run_decision_interval_ablation(
            AblationConfig(commits=10, decision_fractions=(0.5, 1.0)))
        rows_equal(table.as_dict()["rows"], [
            [0.5, 50.0, 49.257631255792674],
            [1.0, 100.0, 99.38668269739864],
        ])

    def test_catchup_golden(self):
        r = run_catchup(CatchupConfig.smoke("fastraft"))
        rows_equal(r.table().as_dict()["rows"], [
            ["full replay", 71, 72, 0, 1749.9999999999632],
            ["snapshots", 71, 3, 1, 1449.9999999999695],
        ])


# ----------------------------------------------------------------------
# 2. Serial vs parallel: the identical-results guarantee
# ----------------------------------------------------------------------
class TestSweepRunnerParallel:
    def test_fig3_serial_equals_parallel(self):
        config = Fig3Config(loss_rates=(0.0, 0.05), trials=6)
        serial = run_fig3(config, jobs=1)
        parallel = run_fig3(config, jobs=3)
        assert serial.table().as_dict() == parallel.table().as_dict()

    def test_catchup_serial_equals_parallel(self):
        config = CatchupConfig.smoke("raft")
        serial = run_catchup(config, jobs=1)
        parallel = run_catchup(config, jobs=2)
        assert serial.table().as_dict() == parallel.table().as_dict()

    def test_single_cell_runs_inline(self):
        """jobs > 1 with one cell must not pay the pool overhead."""
        config = Fig4Config(warmup_commits=5, total_commits=25)
        serial = run_fig4(config).table().as_dict()
        parallel = run_fig4(config, jobs=4).table().as_dict()
        rows_equal(serial["rows"], parallel["rows"])
        assert serial["notes"] == parallel["notes"]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ExperimentError):
            SweepRunner(0)


# ----------------------------------------------------------------------
# 2b. The persistent worker pool
# ----------------------------------------------------------------------
class TestPersistentSweepPool:
    def test_pool_persists_until_shape_changes(self):
        from repro.scenarios import runner
        runner.close_sweep_pool()
        first = runner.sweep_pool(2)
        assert runner.sweep_pool(2) is first      # reused, not respawned
        resized = runner.sweep_pool(3)
        assert resized is not first               # shape change rebuilds
        runner.close_sweep_pool()
        assert runner._POOL is None
        runner.close_sweep_pool()                 # idempotent

    def test_worker_failure_names_cell_and_terminates_pool(self):
        from repro.scenarios import runner
        spec = ScenarioSpec(name="boom", engine="raft",
                            topology=TopologySpec(n_sites=3),
                            workload=WorkloadSpec(requests=1),
                            drive="not_a_registered_drive")
        cells = [Cell(key=("boom", i), spec=spec, seed=i)
                 for i in range(2)]
        with pytest.raises(ExperimentError) as err:
            SweepRunner(jobs=2).map(cells)
        message = str(err.value)
        assert "'boom'" in message and "failed in worker" in message
        assert runner._POOL is None               # terminated, not leaked

    def test_per_cell_profiles_in_serial_and_parallel(self, tmp_path):
        import pstats

        from repro.experiments.fig3_latency import fig3_cells
        cells = fig3_cells(Fig3Config(loss_rates=(0.0,), trials=2))
        serial_dir, parallel_dir = tmp_path / "s", tmp_path / "p"
        serial = SweepRunner(jobs=1, profile_dir=str(serial_dir)).map(cells)
        parallel = SweepRunner(jobs=2,
                               profile_dir=str(parallel_dir)).map(cells)
        assert serial == parallel                 # profiling changes nothing
        for directory in (serial_dir, parallel_dir):
            dumps = sorted(directory.glob("cell_*.pstats"))
            assert len(dumps) == len(cells)
            stats = pstats.Stats(str(dumps[0]))   # loadable, non-empty
            assert stats.total_calls > 0

    def test_profile_context_threads_through_nested_runs(self, tmp_path):
        from repro.scenarios.runner import per_cell_profiles
        with per_cell_profiles(tmp_path):
            run_fig3(Fig3Config(loss_rates=(0.0,), trials=1), jobs=1)
        assert list(tmp_path.glob("cell_*.pstats"))


# ----------------------------------------------------------------------
# 3. Spec semantics
# ----------------------------------------------------------------------
class TestSpecs:
    def test_topology_region_sizes(self):
        topo = TopologySpec(n_sites=5, regions=("core", "edge"),
                            region_sizes=(3, 2)).build()
        assert topo.nodes_in_region("core") == ["n0", "n1", "n2"]
        assert topo.nodes_in_region("edge") == ["n3", "n4"]

    def test_topology_rejects_bad_sizes(self):
        with pytest.raises(ExperimentError):
            TopologySpec(n_sites=5, regions=("a", "b"),
                         region_sizes=(3, 3))

    def test_event_needs_exactly_one_trigger(self):
        with pytest.raises(ExperimentError):
            Event("crash", target="n0")
        with pytest.raises(ExperimentError):
            Event("crash", target="n0", at=1.0, after_commits=5)
        with pytest.raises(ExperimentError):
            Event("explode", target="n0", at=1.0)

    def test_flapping_schedule_windows(self):
        schedule = EventSchedule.flapping_link(
            (("a",), ("b",)), first_outage=1.0, outage=0.5, stable=2.0,
            cycles=2)
        assert schedule.outage_windows() == [(1.0, 1.5), (3.5, 4.0)]

    def test_craft_requires_regions(self):
        with pytest.raises(ExperimentError):
            ScenarioSpec(name="x", engine="craft")

    def test_unknown_placement_rejected(self):
        with pytest.raises(ExperimentError):
            WorkloadSpec(placement="everywhere")

    def test_latency_spec_builds_bandwidth_wrappers(self):
        from repro.net.latency import (
            BandwidthLatencyModel,
            SharedLinkBandwidthModel,
        )
        plain = LatencySpec.constant(0.01, bandwidth=1000.0).build(None)
        shared = LatencySpec.constant(0.01, bandwidth=1000.0,
                                      shared_link=True).build(None)
        assert type(plain) is BandwidthLatencyModel
        assert type(shared) is SharedLinkBandwidthModel

    def test_shared_link_without_bandwidth_rejected(self):
        """The congestion knob must never silently no-op."""
        from repro.harness.builder import build_cluster
        from repro.raft.server import RaftServer
        with pytest.raises(ExperimentError):
            LatencySpec.constant(0.01, shared_link=True)
        with pytest.raises(ExperimentError):
            build_cluster(RaftServer, n_sites=3, shared_link=True)

    def test_duplicate_cell_keys_rejected(self):
        spec = ScenarioSpec(name="dup", engine="raft",
                            topology=TopologySpec(n_sites=3),
                            workload=WorkloadSpec(requests=1))
        cells = [Cell(key=("same",), spec=spec, seed=1),
                 Cell(key=("same",), spec=spec, seed=2)]
        with pytest.raises(ExperimentError):
            SweepRunner().run(cells)

    def test_nonleader_target_requires_recorded_leader(self):
        from repro.harness.faults import resolve_event_targets
        event = Event("crash", target="nonleader:0", at=1.0)
        with pytest.raises(ExperimentError):
            resolve_event_targets(event, ["n0", "n1"], None)

    def test_timed_event_before_election_fires_instead_of_crashing(self):
        spec = ScenarioSpec(
            name="unit.early_event", engine="raft",
            topology=TopologySpec(n_sites=3),
            schedule=EventSchedule((
                Event("set_loss", at=0.05, args=(0.0,)),)),
            workload=WorkloadSpec(placement="leader", requests=5))
        stats = run_cell(spec, seed=4)
        assert stats.count == 5

    def test_run_cell_executes_spec_directly(self):
        spec = ScenarioSpec(
            name="unit.direct", engine="raft",
            topology=TopologySpec(n_sites=3),
            workload=WorkloadSpec(placement="leader", requests=5))
        stats = run_cell(spec, seed=1)
        assert stats.count == 5

    def test_timed_events_fire_in_order(self):
        spec = ScenarioSpec(
            name="unit.timed", engine="raft",
            topology=TopologySpec(n_sites=3),
            schedule=EventSchedule((
                Event("crash", target="nonleader:0", at=2.0),
                Event("recover", target="nonleader:0", at=4.0))),
            workload=WorkloadSpec(placement="leader", requests=30))
        stats = run_cell(spec, seed=2)
        assert stats.count == 30


# ----------------------------------------------------------------------
# Registry + new scenarios
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_scenarios_registered(self):
        names = scenario_names()
        for expected in ("rounds", "fig3", "fig4", "fig5", "ablations",
                         "catchup", "catchup_wan", "flapping_wan",
                         "migrated_region", "two_region_failover",
                         "large_mesh", "heavy_traffic"):
            assert expected in names

    def test_unknown_scenario_raises(self):
        with pytest.raises(ExperimentError):
            get_scenario("no_such_scenario")

    def test_registry_runs_a_scenario_end_to_end(self):
        scenario = get_scenario("fig4")
        result = scenario.run(Fig4Config(warmup_commits=5,
                                         total_commits=25), jobs=1)
        tables = scenario.tables(result)
        assert len(tables) == 1
        payload = scenario.as_dict(result)
        assert payload["scenario"] == "fig4"


class TestNewScenarios:
    def test_flapping_wan_smoke(self):
        result = run_flapping(FlappingConfig.smoke())
        result.check_shape()
        # The link spends real time down, yet every commit lands and the
        # completions cluster into the stability windows.
        assert result.outage_commits <= result.stable_commits / 4

    def test_migrated_region_smoke(self):
        result = run_migrated_region(MigratedRegionConfig.smoke())
        result.check_shape()
        # The whole region adopted the image through the gated path.
        assert result.gated_sites == 3
        assert result.installs >= 1

    def test_large_mesh_smoke(self):
        """The 6x5 flapping mesh the core speedup makes tractable: the
        global level keeps committing while one region's uplink flaps."""
        result = run_large_mesh(LargeMeshConfig.smoke())
        result.check_shape()
        assert result.config.clusters >= 6
        assert result.config.sites_per_cluster >= 5
        assert result.throughput > 0

    def test_large_mesh_rejects_small_meshes(self):
        with pytest.raises(ExperimentError):
            LargeMeshConfig(clusters=2)

    def test_two_region_failover_smoke(self):
        """The formerly-deadlocked shape at its pinned seed: the east
        leader's crash must not wedge the global configuration."""
        result = run_two_region_failover(TwoRegionFailoverConfig.smoke())
        result.check_shape()
        assert result.observer  # a standing tiebreaker existed
        assert result.victim not in result.members_after
        assert result.successor in result.members_after

    def test_heavy_traffic_smoke(self):
        """The serving capstone: a session fleet on the 6x5 mesh with
        adaptive batching; the run itself enforces the SLOSpec, so a
        clean return means every percentile bound held."""
        from repro.experiments.heavy_traffic import (
            HeavyTrafficConfig,
            run_heavy_traffic,
        )
        result = run_heavy_traffic(HeavyTrafficConfig.smoke())
        result.check_shape()
        assert result.latency.count > 0
        assert result.latency.p99 >= result.latency.median
        assert result.abandoned_fraction <= 0.05
        assert len(result.table().rows) == 1

    def test_heavy_traffic_rejects_small_meshes(self):
        from repro.experiments.heavy_traffic import HeavyTrafficConfig
        with pytest.raises(ExperimentError):
            HeavyTrafficConfig(clusters=2)


class TestScenarioVocabulary:
    def test_new_actions_registered(self):
        from repro.scenarios.spec import EVENT_ACTIONS
        assert "set_link_loss" in EVENT_ACTIONS
        assert "set_bandwidth" in EVENT_ACTIONS

    def test_poisson_workload_spec_validation(self):
        with pytest.raises(ExperimentError):
            WorkloadSpec(arrival="poisson")  # needs a positive rate
        with pytest.raises(ExperimentError):
            WorkloadSpec(arrival="burst")
        spec = WorkloadSpec(arrival="poisson", rate=25.0, requests=10)
        assert spec.rate == 25.0

    def test_poisson_cell_runs_and_completes(self):
        spec = ScenarioSpec(
            name="unit.poisson", engine="raft",
            topology=TopologySpec(n_sites=3),
            workload=WorkloadSpec(placement="leader", requests=20,
                                  arrival="poisson", rate=50.0))
        stats = run_cell(spec, seed=7)
        assert stats.count == 20

    def test_poisson_cell_deterministic(self):
        spec = ScenarioSpec(
            name="unit.poisson_det", engine="raft",
            topology=TopologySpec(n_sites=3),
            workload=WorkloadSpec(placement="leader", requests=12,
                                  arrival="poisson", rate=40.0))
        first = run_cell(spec, seed=5)
        second = run_cell(spec, seed=5)
        assert first.mean == second.mean

    def test_link_loss_and_bandwidth_events_fire(self):
        spec = ScenarioSpec(
            name="unit.link_events", engine="raft",
            topology=TopologySpec(n_sites=3),
            schedule=EventSchedule((
                Event("set_link_loss", at=0.5, args=("n0", "n1", 0.3)),
                Event("set_bandwidth", at=0.8, args=(10_000_000.0,)),
                Event("set_link_loss", at=1.2, args=("n0", "n1", 0.0)),
            )),
            workload=WorkloadSpec(placement="leader", requests=25))
        stats = run_cell(spec, seed=4)
        assert stats.count == 25


class TestSLOSpec:
    def stats(self, median=0.5, p99=1.0, p999=2.0, maximum=3.0):
        from repro.metrics.summary import SummaryStats
        return SummaryStats(count=100, mean=median, median=median,
                            stdev=0.0, minimum=0.0, maximum=maximum,
                            p5=0.0, p95=p99, p99=p99, p999=p999)

    def test_within_bounds_passes(self):
        slo = SLOSpec(p50=1.0, p99=2.0, p999=4.0, min_throughput=10.0,
                      max_abandoned_fraction=0.05)
        slo.check(latency=self.stats(), throughput=50.0,
                  abandoned_fraction=0.0)

    def test_violations_name_every_failed_bound(self):
        slo = SLOSpec(p50=0.1, p999=1.0, min_throughput=100.0)
        with pytest.raises(ExperimentError) as err:
            slo.check(latency=self.stats(), throughput=50.0)
        message = str(err.value)
        assert "SLO violated" in message
        assert "p50" in message
        assert "p999" in message
        assert "throughput" in message
        assert "p99" not in message.replace("p999", "")  # unset: unchecked

    def test_throughput_bound_is_a_floor(self):
        SLOSpec(min_throughput=10.0).check(throughput=10.0)
        with pytest.raises(ExperimentError):
            SLOSpec(min_throughput=10.0).check(throughput=9.9)

    def test_none_measurements_are_unchecked(self):
        SLOSpec(p50=0.1, min_throughput=100.0).check()

    def test_max_latency_and_abandoned(self):
        with pytest.raises(ExperimentError):
            SLOSpec(max_latency=2.0).check(latency=self.stats(maximum=3.0))
        with pytest.raises(ExperimentError):
            SLOSpec(max_abandoned_fraction=0.01).check(
                abandoned_fraction=0.02)
