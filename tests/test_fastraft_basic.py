"""Fast Raft: fast track, classic fallback, latency shape."""

import pytest

from repro.consensus.engine import Role
from repro.consensus.entry import InsertedBy
from repro.fastraft.server import FastRaftServer
from repro.harness.checkers import check_leader_approved_prefix
from repro.harness.workload import ClosedLoopWorkload
from repro.net.loss import BernoulliLoss
from repro.raft.server import RaftServer
from tests.conftest import assert_safe, commit_n, started_cluster


def trace_count(cluster, category):
    return len([e for e in cluster.trace.events if e.category == category])


class TestFastTrack:
    def test_commits_use_fast_track_without_loss(self, fast_cluster):
        client = fast_cluster.add_client(site="n0")
        records = commit_n(fast_cluster, client, 10)
        assert all(r.done for r in records)
        assert trace_count(fast_cluster, "fastraft.fast_commit") >= 10
        assert trace_count(fast_cluster, "fastraft.classic_commit") == 0
        assert_safe(fast_cluster)

    def test_entries_leader_approved_after_commit(self, fast_cluster):
        client = fast_cluster.add_client(site="n0")
        commit_n(fast_cluster, client, 3)
        fast_cluster.run_for(0.5)
        leader = fast_cluster.servers[fast_cluster.leader()].engine
        for index in range(1, leader.commit_index + 1):
            assert leader.log.get(index).inserted_by is InsertedBy.LEADER
        check_leader_approved_prefix(leader)

    def test_followers_receive_leader_approved_via_append(self, fast_cluster):
        client = fast_cluster.add_client(site="n0")
        commit_n(fast_cluster, client, 3)
        fast_cluster.run_for(1.0)
        for server in fast_cluster.servers.values():
            engine = server.engine
            assert engine.commit_index == 3
            for index in range(1, 4):
                assert engine.log.get(index).inserted_by is InsertedBy.LEADER

    def test_state_machines_converge(self, fast_cluster):
        client = fast_cluster.add_client(site="n2")
        commit_n(fast_cluster, client, 5)
        fast_cluster.run_for(1.0)
        snapshots = {name: s.state_machine.snapshot()
                     for name, s in fast_cluster.servers.items()}
        assert all(s == {f"k{i}": i for i in range(5)}
                   for s in snapshots.values())

    def test_single_site_cluster(self):
        cluster = started_cluster(FastRaftServer, n_sites=1, seed=3)
        client = cluster.add_client(site="n0")
        records = commit_n(cluster, client, 3)
        assert all(r.done for r in records)


class TestLatencyShape:
    """The Fig. 3 headline: fast track halves commit latency."""

    def mean_latency(self, server_cls, seed=13, n=20, loss=None):
        cluster = started_cluster(server_cls, seed=seed, loss=loss)
        client = cluster.add_client(site="n0")
        workload = ClosedLoopWorkload(client, max_requests=n)
        workload.start()
        assert cluster.run_until(lambda: workload.done, timeout=90.0)
        latencies = workload.latencies()
        return sum(latencies) / len(latencies)

    def test_fast_raft_roughly_half_classic_latency(self):
        classic = self.mean_latency(RaftServer)
        fast = self.mean_latency(FastRaftServer)
        assert fast < 0.7 * classic
        assert fast > 0.25 * classic  # not an order-of-magnitude artifact

    def test_fast_raft_degrades_with_loss(self):
        clean = self.mean_latency(FastRaftServer, loss=None)
        lossy = self.mean_latency(FastRaftServer, loss=BernoulliLoss(0.10))
        assert lossy > clean * 1.15


class TestClassicTrackFallback:
    def test_loss_triggers_classic_track(self):
        cluster = started_cluster(FastRaftServer, seed=21,
                                  loss=BernoulliLoss(0.10))
        client = cluster.add_client(site="n0")
        workload = ClosedLoopWorkload(client, max_requests=30)
        workload.start()
        assert cluster.run_until(lambda: workload.done, timeout=120.0)
        assert trace_count(cluster, "fastraft.classic_commit") > 0
        assert_safe(cluster)

    def test_fast_track_unavailable_below_fast_quorum(self):
        """With 2 of 5 sites down, only the classic track can commit."""
        cluster = started_cluster(FastRaftServer, seed=23)
        from repro.harness.faults import FaultInjector
        faults = FaultInjector(cluster)
        victims = [n for n in cluster.servers if n != cluster.leader()][:2]
        # Crash (not silent-leave detection): keep membership at 5.
        faults.crash(victims[0])
        faults.crash(victims[1])
        # Commit a couple of entries before the member timeout fires.
        client = cluster.add_client(site=cluster.leader())
        records = []
        for i in range(2):
            records.append(cluster.propose_and_wait(
                client, {"op": "put", "key": f"x{i}", "value": i},
                timeout=5.0))
        assert all(r.done for r in records)
        assert trace_count(cluster, "fastraft.classic_commit") >= 1
        assert_safe(cluster)


class TestConcurrentProposals:
    def test_conflicting_proposals_serialize(self):
        cluster = started_cluster(FastRaftServer, seed=17)
        clients = [cluster.add_client(site=f"n{i}") for i in range(5)]
        records = [c.submit({"op": "put", "key": f"c{i}", "value": i})
                   for i, c in enumerate(clients)]
        assert cluster.run_until(lambda: all(r.done for r in records),
                                 timeout=30.0)
        cluster.run_for(1.0)
        assert_safe(cluster)
        kv = cluster.servers["n0"].state_machine.snapshot()
        assert kv == {f"c{i}": i for i in range(5)}

    def test_two_writers_same_key_last_write_wins_consistently(self):
        cluster = started_cluster(FastRaftServer, seed=18)
        a = cluster.add_client(site="n0")
        b = cluster.add_client(site="n3")
        ra = a.submit({"op": "put", "key": "k", "value": "A"})
        rb = b.submit({"op": "put", "key": "k", "value": "B"})
        assert cluster.run_until(lambda: ra.done and rb.done, timeout=10.0)
        cluster.run_for(1.0)
        values = {s.state_machine.get("k")
                  for s in cluster.servers.values()}
        assert len(values) == 1  # same winner everywhere
        assert_safe(cluster)


class TestVoteFlow:
    def test_leader_collects_votes_from_all(self, fast_cluster):
        client = fast_cluster.add_client(site="n0")
        commit_n(fast_cluster, client, 1)
        stats = fast_cluster.network.stats
        assert stats.by_type["ProposeEntry"] >= 5
        assert stats.by_type["VoteEntry"] >= 3

    def test_commit_notice_sent_to_remote_origin(self, fast_cluster):
        origin = next(n for n in fast_cluster.servers
                      if n != fast_cluster.leader())
        client = fast_cluster.add_client(site=origin)
        commit_n(fast_cluster, client, 1)
        assert fast_cluster.network.stats.by_type["CommitNotice"] >= 1
