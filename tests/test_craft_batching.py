"""Tests for the C-Raft batcher (pure logic)."""

from repro.consensus.entry import EntryKind, InsertedBy, LogEntry
from repro.craft.batching import Batcher, BatchPolicy


def data_entry(entry_id):
    return LogEntry(entry_id=entry_id, kind=EntryKind.DATA, payload=None,
                    origin="n0", term=1, inserted_by=InsertedBy.LEADER)


def state_entry(entry_id):
    return LogEntry(entry_id=entry_id, kind=EntryKind.GLOBAL_STATE,
                    payload=None, origin="n0", term=1,
                    inserted_by=InsertedBy.LEADER)


def feed(batcher, start, count, now=0.0):
    for i in range(start, start + count):
        batcher.observe_local_commit(i, data_entry(f"e{i}"), now)


class TestReadiness:
    def test_not_ready_below_batch_size(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10))
        feed(batcher, 1, 9)
        assert not batcher.ready(0.0)

    def test_ready_at_batch_size(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10))
        feed(batcher, 1, 10)
        assert batcher.ready(0.0)

    def test_outstanding_limit_blocks(self):
        batcher = Batcher("c", BatchPolicy(batch_size=5, max_outstanding=1))
        feed(batcher, 1, 10)
        batcher.take_batch(0.0)
        assert not batcher.ready(0.0)
        batcher.batch_done()
        assert batcher.ready(0.0)

    def test_age_flush(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10, max_age=2.0))
        feed(batcher, 1, 3, now=5.0)
        assert not batcher.ready(6.0)
        assert batcher.ready(7.5)

    def test_no_age_flush_when_disabled(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10, max_age=None))
        feed(batcher, 1, 3, now=0.0)
        assert not batcher.ready(1e9)


class TestTakeBatch:
    def test_batch_contents_and_range(self):
        batcher = Batcher("c", BatchPolicy(batch_size=3))
        feed(batcher, 4, 5)
        payload = batcher.take_batch(0.0)
        assert payload.cluster == "c"
        assert payload.sequence == 1
        assert [e.entry_id for e in payload.entries] == ["e4", "e5", "e6"]
        assert payload.local_range == (4, 6)
        assert batcher.pending_count == 2
        assert batcher.next_unbatched == 7

    def test_sequences_increment(self):
        batcher = Batcher("c", BatchPolicy(batch_size=2, max_outstanding=5))
        feed(batcher, 1, 4)
        assert batcher.take_batch(0.0).sequence == 1
        assert batcher.take_batch(0.0).sequence == 2

    def test_interleaved_non_data_skipped(self):
        batcher = Batcher("c", BatchPolicy(batch_size=2))
        batcher.observe_local_commit(1, data_entry("a"), 0.0)
        batcher.observe_local_commit(2, state_entry("s"), 0.0)
        batcher.observe_local_commit(3, data_entry("b"), 0.0)
        payload = batcher.take_batch(0.0)
        assert [e.entry_id for e in payload.entries] == ["a", "b"]
        assert payload.local_range == (1, 3)


class TestCoverage:
    def test_advance_covered_drops_pending(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10))
        feed(batcher, 1, 6)
        batcher.advance_covered(4)
        assert batcher.pending_count == 2
        assert batcher.next_unbatched == 5

    def test_advance_covered_ignores_stale(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10))
        feed(batcher, 10, 3)
        batcher.advance_covered(12)
        batcher.advance_covered(5)  # stale, no effect
        assert batcher.next_unbatched == 13

    def test_entries_below_next_unbatched_ignored(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10))
        batcher.advance_covered(5)
        batcher.observe_local_commit(3, data_entry("old"), 0.0)
        assert batcher.pending_count == 0


class TestRebuild:
    def test_rebuild_from_applied_log(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10))
        applied = [(i, data_entry(f"e{i}")) for i in range(1, 8)]
        applied.insert(3, (99, state_entry("s")))  # non-data ignored
        batcher.rebuild(applied, next_unbatched=4, now=0.0)
        assert batcher.pending_count == 4  # e4..e7
        assert batcher.outstanding == 0
        assert batcher.next_unbatched == 4

    def test_rebuild_resets_outstanding(self):
        batcher = Batcher("c", BatchPolicy(batch_size=2))
        feed(batcher, 1, 2)
        batcher.take_batch(0.0)
        assert batcher.outstanding == 1
        batcher.rebuild([], next_unbatched=1, now=0.0)
        assert batcher.outstanding == 0


class TestPolicyValidation:
    def test_bad_batch_size(self):
        import pytest
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            BatchPolicy(batch_size=0)

    def test_bad_adaptive_bounds(self):
        import pytest
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            BatchPolicy(adaptive=True, batch_floor=10, batch_ceiling=5)
        with pytest.raises(ConfigurationError):
            BatchPolicy(adaptive=True, age_floor=2.0, age_ceiling=1.0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(adaptive=True, max_outstanding=4,
                        outstanding_ceiling=2)
        with pytest.raises(ConfigurationError):
            BatchPolicy(adaptive=True, ewma_alpha=0.0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(adaptive=True, target_commit_latency=0.0)

    def test_non_adaptive_skips_adaptive_validation(self):
        # inert bounds are not validated when the controller is off
        BatchPolicy(adaptive=False, batch_floor=10, batch_ceiling=5)


ADAPTIVE = BatchPolicy(batch_size=4, max_outstanding=1, adaptive=True,
                       batch_floor=2, batch_ceiling=32,
                       outstanding_ceiling=4, target_commit_latency=0.5)


class TestAdaptiveController:
    def test_knobs_match_policy_until_fed(self):
        batcher = Batcher("c", ADAPTIVE)
        assert batcher.effective_batch_size == 4
        assert batcher.effective_max_outstanding == 1

    def test_slow_rounds_grow_batch_and_window(self):
        batcher = Batcher("c", ADAPTIVE)
        for _ in range(10):
            batcher.observe_commit_latency(2.0)  # 4x the target
        assert batcher.effective_batch_size > 4
        assert batcher.effective_max_outstanding > 1

    def test_fast_rounds_shrink_back(self):
        batcher = Batcher("c", ADAPTIVE)
        for _ in range(10):
            batcher.observe_commit_latency(2.0)
        grown = batcher.effective_batch_size
        for _ in range(40):
            batcher.observe_commit_latency(0.01)
        assert batcher.effective_batch_size < grown
        assert batcher.effective_batch_size >= ADAPTIVE.batch_floor
        assert batcher.effective_max_outstanding == ADAPTIVE.max_outstanding

    def test_bounds_are_hard(self):
        batcher = Batcher("c", ADAPTIVE)
        for _ in range(100):
            batcher.observe_commit_latency(100.0)
        assert batcher.effective_batch_size == ADAPTIVE.batch_ceiling
        assert (batcher.effective_max_outstanding
                == ADAPTIVE.outstanding_ceiling)

    def test_on_target_latency_holds_steady(self):
        batcher = Batcher("c", ADAPTIVE)
        for _ in range(10):
            batcher.observe_commit_latency(0.5)  # exactly on target
        assert batcher.effective_batch_size == 4

    def test_byte_ceiling_caps_count(self):
        policy = BatchPolicy(batch_size=8, adaptive=True, batch_floor=1,
                             batch_ceiling=64, target_commit_latency=0.5,
                             target_batch_bytes=64)
        batcher = Batcher("c", policy)
        feed(batcher, 1, 8)
        batcher.take_batch(0.0)  # seeds the per-entry byte EWMA
        batcher.batch_done()
        batcher.observe_commit_latency(5.0)  # latency asks for growth...
        # ...but the byte cap holds the effective size down
        assert (batcher.effective_batch_size
                <= max(1, 64 // 8))

    def test_non_adaptive_ignores_latency_feed(self):
        batcher = Batcher("c", BatchPolicy(batch_size=4))
        for _ in range(10):
            batcher.observe_commit_latency(100.0)
        assert batcher.effective_batch_size == 4


class TestFusedObserve:
    def test_observe_and_check_matches_split_calls(self):
        split = Batcher("c", BatchPolicy(batch_size=3))
        fused = Batcher("c", BatchPolicy(batch_size=3))
        due = []
        for i in range(1, 6):
            entry = data_entry(f"e{i}")
            split.observe_local_commit(i, entry, 0.0)
            due.append(split.ready(0.0))
            assert fused.observe_and_check(i, entry, 0.0) == due[-1]
        assert split.pending_count == fused.pending_count

    def test_observe_and_check_skips_non_data(self):
        batcher = Batcher("c", BatchPolicy(batch_size=1))
        assert not batcher.observe_and_check(1, state_entry("s"), 0.0)
        assert batcher.pending_count == 0


class TestAgeDeadline:
    def test_deadline_tracks_oldest_pending(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10, max_age=2.0))
        assert batcher.age_deadline() is None
        feed(batcher, 1, 1, now=5.0)
        assert batcher.age_deadline() == 7.0
        feed(batcher, 2, 1, now=6.0)  # younger entry: deadline unchanged
        assert batcher.age_deadline() == 7.0

    def test_deadline_none_without_age_flush(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10))
        feed(batcher, 1, 3)
        assert batcher.age_deadline() is None
        assert not batcher.has_age_flush

    def test_take_batch_resets_deadline(self):
        batcher = Batcher("c", BatchPolicy(batch_size=2, max_age=2.0))
        feed(batcher, 1, 2, now=1.0)
        batcher.take_batch(3.0)
        assert batcher.age_deadline() is None


class TestProposalCoalescer:
    def make(self, **overrides):
        from repro.craft.batching import ProposalCoalescer
        defaults = dict(batch_size=3, max_age=0.05)
        defaults.update(overrides)
        return ProposalCoalescer(BatchPolicy(**defaults))

    def test_flush_ready_at_batch_size(self):
        coalescer = self.make()
        assert not coalescer.add("r1", "m1", "c1", 0.0)
        assert not coalescer.add("r2", "m2", "c2", 0.0)
        assert coalescer.add("r3", "m3", "c3", 0.0)
        assert coalescer.pending_count == 3

    def test_drain_empties_and_orders(self):
        coalescer = self.make()
        coalescer.add("r1", "m1", "c1", 0.0)
        coalescer.add("r2", "m2", "c2", 0.0)
        assert coalescer.drain() == [("m1", "c1"), ("m2", "c2")]
        assert coalescer.pending_count == 0
        assert coalescer.age_deadline() is None

    def test_duplicate_ids_coalesce_keeping_first_sender(self):
        coalescer = self.make()
        coalescer.add("r1", "m1", "c1", 0.0)
        coalescer.add("r1", "m1-retry", "c9", 0.0)
        assert coalescer.pending_count == 1
        assert coalescer.drain() == [("m1", "c1")]

    def test_age_deadline_from_first_pending(self):
        coalescer = self.make(max_age=0.5)
        coalescer.add("r1", "m1", "c1", 2.0)
        coalescer.add("r2", "m2", "c2", 3.0)
        assert coalescer.age_deadline() == 2.5

    def test_no_max_age_means_flush_now(self):
        coalescer = self.make(max_age=None)
        coalescer.add("r1", "m1", "c1", 2.0)
        assert coalescer.age_deadline() == 2.0

    def test_adaptive_flush_size(self):
        coalescer = self.make(adaptive=True, batch_floor=1,
                              batch_ceiling=16,
                              target_commit_latency=0.5)
        for _ in range(10):
            coalescer.observe_commit_latency(5.0)
        for i in range(3):
            assert not coalescer.add(f"r{i}", "m", "c", 0.0)
        for _ in range(40):
            coalescer.observe_commit_latency(0.01)
        coalescer.drain()
        assert coalescer.add("r9", "m", "c", 0.0)  # back at the floor
