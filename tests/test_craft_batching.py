"""Tests for the C-Raft batcher (pure logic)."""

from repro.consensus.entry import EntryKind, InsertedBy, LogEntry
from repro.craft.batching import Batcher, BatchPolicy


def data_entry(entry_id):
    return LogEntry(entry_id=entry_id, kind=EntryKind.DATA, payload=None,
                    origin="n0", term=1, inserted_by=InsertedBy.LEADER)


def state_entry(entry_id):
    return LogEntry(entry_id=entry_id, kind=EntryKind.GLOBAL_STATE,
                    payload=None, origin="n0", term=1,
                    inserted_by=InsertedBy.LEADER)


def feed(batcher, start, count, now=0.0):
    for i in range(start, start + count):
        batcher.observe_local_commit(i, data_entry(f"e{i}"), now)


class TestReadiness:
    def test_not_ready_below_batch_size(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10))
        feed(batcher, 1, 9)
        assert not batcher.ready(0.0)

    def test_ready_at_batch_size(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10))
        feed(batcher, 1, 10)
        assert batcher.ready(0.0)

    def test_outstanding_limit_blocks(self):
        batcher = Batcher("c", BatchPolicy(batch_size=5, max_outstanding=1))
        feed(batcher, 1, 10)
        batcher.take_batch(0.0)
        assert not batcher.ready(0.0)
        batcher.batch_done()
        assert batcher.ready(0.0)

    def test_age_flush(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10, max_age=2.0))
        feed(batcher, 1, 3, now=5.0)
        assert not batcher.ready(6.0)
        assert batcher.ready(7.5)

    def test_no_age_flush_when_disabled(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10, max_age=None))
        feed(batcher, 1, 3, now=0.0)
        assert not batcher.ready(1e9)


class TestTakeBatch:
    def test_batch_contents_and_range(self):
        batcher = Batcher("c", BatchPolicy(batch_size=3))
        feed(batcher, 4, 5)
        payload = batcher.take_batch(0.0)
        assert payload.cluster == "c"
        assert payload.sequence == 1
        assert [e.entry_id for e in payload.entries] == ["e4", "e5", "e6"]
        assert payload.local_range == (4, 6)
        assert batcher.pending_count == 2
        assert batcher.next_unbatched == 7

    def test_sequences_increment(self):
        batcher = Batcher("c", BatchPolicy(batch_size=2, max_outstanding=5))
        feed(batcher, 1, 4)
        assert batcher.take_batch(0.0).sequence == 1
        assert batcher.take_batch(0.0).sequence == 2

    def test_interleaved_non_data_skipped(self):
        batcher = Batcher("c", BatchPolicy(batch_size=2))
        batcher.observe_local_commit(1, data_entry("a"), 0.0)
        batcher.observe_local_commit(2, state_entry("s"), 0.0)
        batcher.observe_local_commit(3, data_entry("b"), 0.0)
        payload = batcher.take_batch(0.0)
        assert [e.entry_id for e in payload.entries] == ["a", "b"]
        assert payload.local_range == (1, 3)


class TestCoverage:
    def test_advance_covered_drops_pending(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10))
        feed(batcher, 1, 6)
        batcher.advance_covered(4)
        assert batcher.pending_count == 2
        assert batcher.next_unbatched == 5

    def test_advance_covered_ignores_stale(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10))
        feed(batcher, 10, 3)
        batcher.advance_covered(12)
        batcher.advance_covered(5)  # stale, no effect
        assert batcher.next_unbatched == 13

    def test_entries_below_next_unbatched_ignored(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10))
        batcher.advance_covered(5)
        batcher.observe_local_commit(3, data_entry("old"), 0.0)
        assert batcher.pending_count == 0


class TestRebuild:
    def test_rebuild_from_applied_log(self):
        batcher = Batcher("c", BatchPolicy(batch_size=10))
        applied = [(i, data_entry(f"e{i}")) for i in range(1, 8)]
        applied.insert(3, (99, state_entry("s")))  # non-data ignored
        batcher.rebuild(applied, next_unbatched=4, now=0.0)
        assert batcher.pending_count == 4  # e4..e7
        assert batcher.outstanding == 0
        assert batcher.next_unbatched == 4

    def test_rebuild_resets_outstanding(self):
        batcher = Batcher("c", BatchPolicy(batch_size=2))
        feed(batcher, 1, 2)
        batcher.take_batch(0.0)
        assert batcher.outstanding == 1
        batcher.rebuild([], next_unbatched=1, now=0.0)
        assert batcher.outstanding == 0
