"""Classic Raft administrator-driven membership changes."""

import pytest

from repro.consensus.config import Configuration
from repro.errors import NotLeaderError
from repro.raft.server import RaftServer
from repro.smr.kv import KVStateMachine
from tests.conftest import assert_safe, commit_n, started_cluster


def add_fresh_server(cluster, name):
    """Create (but do not admit) a new site that knows current members."""
    members = tuple(cluster.servers)
    server = RaftServer(
        name=name, loop=cluster.loop, network=cluster.network,
        store=cluster.fabric.store_for(name),
        bootstrap_config=Configuration(members), timing=cluster.timing,
        rng=cluster.rng, trace=cluster.trace,
        state_machine_factory=KVStateMachine)
    cluster.add_server(server)
    server.start()
    return server


class TestAddSite:
    def test_add_site_becomes_voting_member(self):
        cluster = started_cluster(RaftServer, n_sites=3, seed=1)
        client = cluster.add_client(site="n0")
        commit_n(cluster, client, 3)
        joiner = add_fresh_server(cluster, "n9")
        leader = cluster.servers[cluster.leader()]
        leader.admin_add_site("n9")
        assert cluster.run_until(
            lambda: "n9" in leader.engine.configuration.members,
            timeout=10.0)
        cluster.run_for(1.0)
        assert joiner.engine.commit_index >= 4  # caught up
        assert_safe(cluster)

    def test_joiner_receives_join_accepted_state(self):
        cluster = started_cluster(RaftServer, n_sites=3, seed=1)
        joiner = add_fresh_server(cluster, "n9")
        leader = cluster.servers[cluster.leader()]
        leader.admin_add_site("n9")
        cluster.run_until(
            lambda: "n9" in joiner.engine.configuration.members,
            timeout=10.0)
        assert "n9" in joiner.engine.configuration.members

    def test_new_member_counts_in_quorum(self):
        cluster = started_cluster(RaftServer, n_sites=3, seed=1)
        add_fresh_server(cluster, "n9")
        leader = cluster.servers[cluster.leader()]
        leader.admin_add_site("n9")
        cluster.run_until(
            lambda: "n9" in leader.engine.configuration.members, timeout=10.0)
        assert leader.engine.configuration.classic_quorum == 3  # of 4

    def test_add_duplicate_rejected(self):
        cluster = started_cluster(RaftServer, n_sites=3, seed=1)
        leader = cluster.servers[cluster.leader()]
        with pytest.raises(Exception):
            leader.admin_add_site("n0")

    def test_admin_on_follower_raises_not_leader(self):
        cluster = started_cluster(RaftServer, n_sites=3, seed=1)
        follower = next(n for n in cluster.servers if n != cluster.leader())
        with pytest.raises(NotLeaderError) as excinfo:
            cluster.servers[follower].admin_add_site("n9")
        assert excinfo.value.leader_hint == cluster.leader()


class TestRemoveSite:
    def test_remove_follower(self):
        cluster = started_cluster(RaftServer, n_sites=5, seed=1)
        leader = cluster.servers[cluster.leader()]
        victim = next(n for n in cluster.servers if n != cluster.leader())
        leader.admin_remove_site(victim)
        assert cluster.run_until(
            lambda: victim not in leader.engine.configuration.members,
            timeout=10.0)
        assert leader.engine.configuration.size == 4
        assert_safe(cluster)

    def test_commits_work_after_removal(self):
        cluster = started_cluster(RaftServer, n_sites=5, seed=1)
        leader = cluster.servers[cluster.leader()]
        victim = next(n for n in cluster.servers if n != cluster.leader())
        leader.admin_remove_site(victim)
        cluster.run_until(
            lambda: victim not in leader.engine.configuration.members,
            timeout=10.0)
        client = cluster.add_client(site=cluster.leader())
        records = commit_n(cluster, client, 3)
        assert all(r.done for r in records)
        assert_safe(cluster)

    def test_leader_removes_itself_and_steps_down(self):
        cluster = started_cluster(RaftServer, n_sites=3, seed=1)
        old_leader_name = cluster.leader()
        cluster.servers[old_leader_name].admin_remove_site(old_leader_name)
        assert cluster.run_until(
            lambda: (cluster.leader() is not None
                     and cluster.leader() != old_leader_name),
            timeout=10.0)
        new_leader = cluster.servers[cluster.leader()]
        assert old_leader_name not in new_leader.engine.configuration.members
        assert_safe(cluster)


class TestSequentialChanges:
    def test_one_at_a_time(self):
        """Two queued changes commit in order, never concurrently."""
        cluster = started_cluster(RaftServer, n_sites=5, seed=1)
        leader = cluster.servers[cluster.leader()]
        victims = [n for n in cluster.servers
                   if n != cluster.leader()][:2]
        leader.admin_remove_site(victims[0])
        leader.admin_remove_site(victims[1])
        assert cluster.run_until(
            lambda: leader.engine.configuration.size == 3, timeout=10.0)
        # every adopted config along the way differed by at most one site
        configs = [e.payload["members"] for e in cluster.trace.select_prefix("raft.config.adopt")
                   if e.node == leader.name]
        previous = ("n0", "n1", "n2", "n3", "n4")
        for members in configs:
            assert len(set(previous) ^ set(members)) <= 1
            previous = members
        assert_safe(cluster)
