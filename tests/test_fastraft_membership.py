"""Fast Raft self-announced membership: joins, leaves, silent leaves."""

from repro.consensus.config import Configuration
from repro.consensus.engine import Role
from repro.fastraft.server import FastRaftServer
from repro.harness.faults import FaultInjector
from repro.harness.workload import ClosedLoopWorkload
from repro.net.loss import BernoulliLoss
from repro.smr.kv import KVStateMachine
from tests.conftest import assert_safe, commit_n, started_cluster


def add_joining_server(cluster, name):
    """A fresh site that knows the current members as contacts; it joins
    by itself through the join-request protocol."""
    members = tuple(n for n in cluster.servers)
    server = FastRaftServer(
        name=name, loop=cluster.loop, network=cluster.network,
        store=cluster.fabric.store_for(name),
        bootstrap_config=Configuration(members), timing=cluster.timing,
        rng=cluster.rng, trace=cluster.trace,
        state_machine_factory=KVStateMachine)
    cluster.add_server(server)
    server.start()
    return server


class TestJoin:
    def test_site_joins_by_request(self):
        cluster = started_cluster(FastRaftServer, n_sites=3, seed=1)
        client = cluster.add_client(site="n0")
        commit_n(cluster, client, 4)
        joiner = add_joining_server(cluster, "n8")
        leader = cluster.servers[cluster.leader()]
        assert cluster.run_until(
            lambda: "n8" in leader.engine.configuration.members,
            timeout=15.0)
        cluster.run_for(1.0)
        assert joiner.engine.commit_index >= 4
        assert "n8" in joiner.engine.configuration.members
        assert_safe(cluster)

    def test_joiner_caught_up_before_voting(self):
        cluster = started_cluster(FastRaftServer, n_sites=3, seed=1)
        client = cluster.add_client(site="n0")
        commit_n(cluster, client, 5)
        joiner = add_joining_server(cluster, "n8")
        leader = cluster.servers[cluster.leader()]
        cluster.run_until(
            lambda: "n8" in leader.engine.configuration.members,
            timeout=15.0)
        cluster.run_for(0.5)
        # the joiner's state machine replays the full history
        assert joiner.state_machine.snapshot() == {
            f"k{i}": i for i in range(5)}

    def test_joined_site_participates_in_commits(self):
        cluster = started_cluster(FastRaftServer, n_sites=3, seed=1)
        add_joining_server(cluster, "n8")
        leader = cluster.servers[cluster.leader()]
        cluster.run_until(
            lambda: "n8" in leader.engine.configuration.members,
            timeout=15.0)
        client = cluster.add_client(site="n8")
        records = commit_n(cluster, client, 3)
        assert all(r.done for r in records)
        assert_safe(cluster)

    def test_duplicate_join_requests_ignored(self):
        cluster = started_cluster(FastRaftServer, n_sites=3, seed=1)
        add_joining_server(cluster, "n8")
        leader = cluster.servers[cluster.leader()]
        cluster.run_until(
            lambda: "n8" in leader.engine.configuration.members,
            timeout=15.0)
        cluster.run_for(2.0)  # extra join retries must be no-ops
        members = leader.engine.configuration.members
        assert members.count("n8") == 1
        assert_safe(cluster)

    def test_two_joiners_admitted_sequentially(self):
        cluster = started_cluster(FastRaftServer, n_sites=3, seed=1)
        add_joining_server(cluster, "n8")
        add_joining_server(cluster, "n9")
        leader = cluster.servers[cluster.leader()]
        assert cluster.run_until(
            lambda: {"n8", "n9"} <= set(leader.engine.configuration.members),
            timeout=30.0)
        # every config adoption was a single-site change
        previous = {"n0", "n1", "n2"}
        for event in cluster.trace.select_prefix("fastraft.config.adopt"):
            if event.node != leader.name:
                continue
            members = set(event.payload["members"])
            assert len(previous ^ members) <= 1
            previous = members
        assert_safe(cluster)


class TestAnnouncedLeave:
    def test_leave_request_removes_site(self):
        cluster = started_cluster(FastRaftServer, n_sites=5, seed=2)
        leaver = next(n for n in cluster.servers if n != cluster.leader())
        FaultInjector(cluster).announced_leave(leaver)
        leader = cluster.servers[cluster.leader()]
        assert cluster.run_until(
            lambda: leaver not in leader.engine.configuration.members,
            timeout=15.0)
        assert_safe(cluster)

    def test_commits_continue_after_leave(self):
        cluster = started_cluster(FastRaftServer, n_sites=5, seed=2)
        leaver = next(n for n in cluster.servers if n != cluster.leader())
        FaultInjector(cluster).announced_leave(leaver)
        leader = cluster.servers[cluster.leader()]
        cluster.run_until(
            lambda: leaver not in leader.engine.configuration.members,
            timeout=15.0)
        client = cluster.add_client(site=cluster.leader())
        records = commit_n(cluster, client, 3)
        assert all(r.done for r in records)
        assert_safe(cluster)


class TestSilentLeave:
    def test_member_timeout_detects_silent_leave(self):
        cluster = started_cluster(FastRaftServer, n_sites=5, seed=3)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        FaultInjector(cluster).silent_leave(victim)
        leader = cluster.servers[cluster.leader()]
        assert cluster.run_until(
            lambda: victim not in leader.engine.configuration.members,
            timeout=15.0)
        timeouts = [e for e in cluster.trace.events
                    if e.category == "fastraft.member_timeout"]
        assert any(e.payload["site"] == victim for e in timeouts)
        assert_safe(cluster)

    def test_detection_takes_roughly_member_timeout_beats(self):
        cluster = started_cluster(FastRaftServer, n_sites=5, seed=3)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        left_at = cluster.loop.now()
        FaultInjector(cluster).silent_leave(victim)
        cluster.run_until(
            lambda: any(e.category == "fastraft.member_timeout"
                        for e in cluster.trace.events), timeout=15.0)
        detected_at = cluster.loop.now()
        beats = cluster.timing.member_timeout_beats
        interval = cluster.timing.heartbeat_interval
        assert detected_at - left_at >= beats * interval * 0.8
        assert detected_at - left_at <= (beats + 4) * interval

    def test_two_silent_leaves_fig4_scenario(self):
        """Fig. 4: 5 sites, 5% loss, two leave silently; the cluster
        reconfigures to 3 members and the fast track returns."""
        cluster = started_cluster(FastRaftServer, n_sites=5, seed=5,
                                  loss=BernoulliLoss(0.05))
        leader_name = cluster.leader()
        client = cluster.add_client(site=leader_name)
        workload = ClosedLoopWorkload(client, max_requests=150)
        workload.start()
        cluster.run_until(lambda: workload.completed_count >= 20,
                          timeout=60.0)
        victims = [n for n in cluster.servers if n != leader_name][:2]
        faults = FaultInjector(cluster)
        faults.silent_leave(victims[0])
        faults.silent_leave(victims[1])
        leader = cluster.servers[leader_name]
        assert cluster.run_until(
            lambda: leader.engine.configuration.size == 3, timeout=30.0)
        assert cluster.run_until(lambda: workload.done, timeout=240.0)
        # fast quorum of the shrunk config is 3 => fast track usable again
        assert leader.engine.configuration.fast_quorum == 3
        assert_safe(cluster)

    def test_evicted_site_rejoins_on_return(self):
        cluster = started_cluster(FastRaftServer, n_sites=5, seed=7)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        faults = FaultInjector(cluster)
        faults.silent_leave(victim)
        leader = cluster.servers[cluster.leader()]
        cluster.run_until(
            lambda: victim not in leader.engine.configuration.members,
            timeout=15.0)
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 3)
        faults.silent_return(victim)
        assert cluster.run_until(
            lambda: victim in leader.engine.configuration.members,
            timeout=30.0)
        cluster.run_for(2.0)
        returned = cluster.servers[victim]
        assert returned.engine.commit_index >= 3
        assert_safe(cluster)

    def test_degraded_reconfig_split_brain_hazard_documented(self):
        """The paper's Section IV-F liveness escape conflicts with its
        Section IV-E safety argument: if the sites a leader declares
        silently-departed are actually alive behind a partition, the
        degraded reconfiguration lets both sides commit independently.
        This test documents that hazard mechanically (found by the
        randomized property tests); disable ``allow_degraded_reconfig``
        for unconditional safety."""
        import pytest as _pytest
        from repro.errors import InvariantViolation
        from repro.harness.checkers import check_committed_prefix_agreement
        cluster = started_cluster(FastRaftServer, n_sites=5, seed=8)
        leader_name = cluster.leader()
        keeper = next(n for n in cluster.servers if n != leader_name)
        others = [n for n in cluster.servers
                  if n not in (leader_name, keeper)]
        faults = FaultInjector(cluster)
        # Partition: {old leader + one follower} vs {majority}.
        faults.partition([[leader_name, keeper], others])
        client_minority = cluster.add_client(site=leader_name,
                                             proposal_timeout=0.5)
        cluster.run_until(lambda: any(
            cluster.servers[n].engine.role is Role.LEADER for n in others),
            timeout=15.0)
        client_majority = cluster.add_client(site=others[0],
                                             proposal_timeout=0.5)
        for i in range(30):
            client_minority.submit({"op": "put", "key": f"m{i}", "value": 1})
            client_majority.submit({"op": "put", "key": f"M{i}", "value": 2})
        cluster.run_for(20.0)
        engines = [cluster.servers[n].engine for n in cluster.servers]
        with _pytest.raises(InvariantViolation):
            check_committed_prefix_agreement(engines)

    def test_leader_survives_majority_silent_leave_with_reconfig(self):
        """Liveness condition from Section IV-F: the leader detects the
        leaves and shrinks quorums via configuration entries."""
        cluster = started_cluster(FastRaftServer, n_sites=5, seed=8)
        leader_name = cluster.leader()
        victims = [n for n in cluster.servers if n != leader_name][:3]
        faults = FaultInjector(cluster)
        for victim in victims:
            faults.silent_leave(victim)
        leader = cluster.servers[leader_name]
        assert cluster.run_until(
            lambda: leader.engine.configuration.size == 2, timeout=60.0)
        client = cluster.add_client(site=leader_name)
        records = commit_n(cluster, client, 2, timeout=30.0)
        assert all(r.done for r in records)
        assert_safe(cluster)
