"""Tests for Actor lifecycle and the trace recorder."""

from repro.sim.actor import Actor
from repro.sim.loop import SimLoop
from repro.sim.trace import TraceRecorder


class Echo(Actor):
    def __init__(self, loop, name):
        super().__init__(loop, name)
        self.received = []

    def on_message(self, message, sender):
        self.received.append((message, sender))


class TestActor:
    def test_deliver_reaches_handler(self):
        actor = Echo(SimLoop(), "a")
        actor.deliver("hello", "b")
        assert actor.received == [("hello", "b")]

    def test_dead_actor_drops_messages(self):
        actor = Echo(SimLoop(), "a")
        actor.kill()
        actor.deliver("hello", "b")
        assert actor.received == []
        assert not actor.alive

    def test_revive_resumes_delivery(self):
        actor = Echo(SimLoop(), "a")
        actor.kill()
        actor.revive()
        actor.deliver("hi", "b")
        assert actor.received == [("hi", "b")]

    def test_now_tracks_loop(self):
        loop = SimLoop()
        actor = Echo(loop, "a")
        loop.run_until(2.5)
        assert actor.now() == 2.5


class TestTraceRecorder:
    def test_record_and_select(self):
        trace = TraceRecorder()
        trace.record(1.0, "n1", "commit", index=1)
        trace.record(2.0, "n2", "commit", index=2)
        trace.record(3.0, "n1", "role.leader", term=1)
        assert len(trace) == 3
        commits = trace.select(category="commit")
        assert [e.node for e in commits] == ["n1", "n2"]
        n1 = trace.select(node="n1")
        assert len(n1) == 2

    def test_select_with_predicate(self):
        trace = TraceRecorder()
        trace.record(1.0, "n1", "commit", index=1)
        trace.record(2.0, "n1", "commit", index=5)
        big = trace.select(category="commit",
                           predicate=lambda e: e.payload["index"] > 2)
        assert len(big) == 1

    def test_select_prefix(self):
        trace = TraceRecorder()
        trace.record(1.0, "n1", "raft.role.leader")
        trace.record(2.0, "n1", "raft.commit")
        trace.record(3.0, "n1", "net.drop")
        assert len(trace.select_prefix("raft.")) == 2

    def test_last(self):
        trace = TraceRecorder()
        trace.record(1.0, "n1", "commit", index=1)
        trace.record(2.0, "n2", "commit", index=2)
        assert trace.last("commit").node == "n2"
        assert trace.last("missing") is None

    def test_disabled_recording(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "n1", "commit")
        assert len(trace) == 0

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(1.0, "n1", "commit")
        trace.clear()
        assert len(trace) == 0

    def test_iteration_order(self):
        trace = TraceRecorder()
        for i in range(5):
            trace.record(float(i), "n", "tick", i=i)
        assert [e.payload["i"] for e in trace] == list(range(5))
