"""Tests for the replicated log (holes, overwrite, provenance)."""

import pytest

from repro.consensus.entry import EntryKind, InsertedBy, LogEntry, ConfigPayload
from repro.consensus.log import RaftLog
from repro.errors import LogError


def entry(entry_id, term=1, inserted_by=InsertedBy.SELF,
          kind=EntryKind.DATA, payload=None):
    return LogEntry(entry_id=entry_id, kind=kind, payload=payload,
                    origin="n0", term=term, inserted_by=inserted_by)


class TestBasics:
    def test_empty_log(self):
        log = RaftLog()
        assert log.last_index == 0
        assert len(log) == 0
        assert log.get(1) is None
        assert not log.has(1)

    def test_append_assigns_sequential_indices(self):
        log = RaftLog()
        assert log.append(entry("a")) == 1
        assert log.append(entry("b")) == 2
        assert log.last_index == 2

    def test_insert_at_arbitrary_index_leaves_hole(self):
        log = RaftLog()
        log.insert(5, entry("e5"))
        assert log.last_index == 5
        assert log.get(5).entry_id == "e5"
        assert log.get(3) is None
        assert len(log) == 1

    def test_insert_below_one_rejected(self):
        with pytest.raises(LogError):
            RaftLog().insert(0, entry("x"))

    def test_overwrite_replaces(self):
        log = RaftLog()
        log.insert(1, entry("old"))
        log.insert(1, entry("new"))
        assert log.get(1).entry_id == "new"
        assert log.indices_of("old") == set()

    def test_term_at_sentinel(self):
        assert RaftLog().term_at(0) == 0

    def test_term_at_hole_raises(self):
        log = RaftLog()
        log.insert(3, entry("x"))
        with pytest.raises(LogError):
            log.term_at(2)

    def test_iteration_in_index_order(self):
        log = RaftLog()
        log.insert(3, entry("c"))
        log.insert(1, entry("a"))
        assert [i for i, _ in log] == [1, 3]


class TestTruncate:
    def test_truncate_removes_suffix(self):
        log = RaftLog()
        for name in ("a", "b", "c"):
            log.append(entry(name))
        log.truncate_from(2)
        assert log.last_index == 1
        assert log.get(2) is None
        assert log.indices_of("b") == set()

    def test_truncate_with_holes(self):
        log = RaftLog()
        log.insert(1, entry("a"))
        log.insert(5, entry("e"))
        log.truncate_from(3)
        assert log.last_index == 1

    def test_truncate_everything(self):
        log = RaftLog()
        log.append(entry("a"))
        log.truncate_from(1)
        assert log.last_index == 0
        assert len(log) == 0

    def test_truncate_invalid_index(self):
        with pytest.raises(LogError):
            RaftLog().truncate_from(0)


class TestRangesAndProvenance:
    def test_entries_between_skips_holes(self):
        log = RaftLog()
        log.insert(1, entry("a"))
        log.insert(3, entry("c"))
        got = log.entries_between(1, 3)
        assert [i for i, _ in got] == [1, 3]

    def test_contiguous_from(self):
        log = RaftLog()
        log.insert(1, entry("a"))
        log.insert(2, entry("b"))
        log.insert(4, entry("d"))
        assert log.contiguous_from(1, 2)
        assert not log.contiguous_from(1, 4)

    def test_last_with_provenance(self):
        log = RaftLog()
        log.insert(1, entry("a", inserted_by=InsertedBy.LEADER))
        log.insert(2, entry("b", inserted_by=InsertedBy.SELF))
        log.insert(3, entry("c", inserted_by=InsertedBy.LEADER))
        log.insert(4, entry("d", inserted_by=InsertedBy.SELF))
        assert log.last_with_provenance(InsertedBy.LEADER) == 3
        assert log.last_with_provenance(InsertedBy.SELF) == 4

    def test_last_with_provenance_empty(self):
        assert RaftLog().last_with_provenance(InsertedBy.LEADER) == 0

    def test_entries_with_provenance(self):
        log = RaftLog()
        log.insert(1, entry("a", inserted_by=InsertedBy.LEADER))
        log.insert(2, entry("b", inserted_by=InsertedBy.SELF))
        self_entries = log.entries_with_provenance(InsertedBy.SELF)
        assert [(i, e.entry_id) for i, e in self_entries] == [(2, "b")]

    def test_latest_config_entry(self):
        log = RaftLog()
        log.insert(1, entry("c1", kind=EntryKind.CONFIG,
                            payload=ConfigPayload(("a",))))
        log.insert(2, entry("d1"))
        log.insert(3, entry("c2", kind=EntryKind.CONFIG,
                            payload=ConfigPayload(("a", "b"))))
        index, config_entry = log.latest_config_entry()
        assert index == 3
        assert config_entry.payload.members == ("a", "b")

    def test_latest_config_entry_none(self):
        assert RaftLog().latest_config_entry() is None


class TestDuplicateDetection:
    def test_indices_of_tracks_multiple(self):
        log = RaftLog()
        log.insert(1, entry("dup"))
        log.insert(4, entry("dup"))
        assert log.indices_of("dup") == {1, 4}

    def test_committed_index_of(self):
        log = RaftLog()
        log.insert(1, entry("a"))
        log.insert(3, entry("a"))
        assert log.committed_index_of("a", commit_index=0) is None
        assert log.committed_index_of("a", commit_index=1) == 1
        assert log.committed_index_of("a", commit_index=5) == 1
        assert log.committed_index_of("missing", commit_index=5) is None

    def test_overwrite_updates_id_index(self):
        log = RaftLog()
        log.insert(2, entry("a"))
        log.insert(2, entry("b"))
        assert log.indices_of("a") == set()
        assert log.indices_of("b") == {2}
