"""Probe-before-trust recovery (README "Crash recovery & rejoin").

A recovering site must not trust a restored configuration older than the
member timeout: on ``recover()`` it probes the members of its restored
configuration (plus the persisted leader hint) and acts on the answers --
a strictly newer configuration that excludes it routes straight onto the
``NotInConfiguration`` -> ``JoinRequest`` rejoin path, a confirmation
resumes normal operation, and a timeout falls back to the pre-probe
behaviour so a fully partitioned recovery still comes up.

Four batteries:

1. the handshake itself (probe -> rejected/confirmed/timeout traces);
2. the recovery x eviction-timing schedule battery (recover before / at /
   just after / long after the member timeout, crossed with a leader
   crash mid-rejoin and lossy links on the probe path);
3. ``ConsensusServer.recover()`` bookkeeping (snapshot-carried
   ``_applied_ids``, ``applied_floor``, double-recover rejection);
4. the ``replaces`` seat hint threading through the declarative
   ``request_join`` action.
"""

import pytest

from repro.consensus.messages import JoinRequest
from repro.consensus.timing import TimingConfig
from repro.errors import ExperimentError
from repro.fastraft.server import FastRaftServer
from repro.harness.faults import FaultInjector
from repro.scenarios.spec import Event
from repro.snapshot import CompactionPolicy
from tests.conftest import assert_safe, commit_n, started_cluster


def _trace_events(cluster, category):
    return [e for e in cluster.trace.events if e.category == category]


def _leader_members(cluster):
    """The leader's member set, or ``()`` mid-election."""
    leader = cluster.leader()
    if leader is None:
        return ()
    return cluster.servers[leader].engine.configuration.members


def _evict(cluster, faults, victim):
    """Crash ``victim`` and run until *every* live server has applied
    the exclusion (not just the leader -- a lagging follower that still
    carries the old configuration would answer a later recovery probe
    with a stale confirmation)."""
    faults.crash(victim)
    assert cluster.run_until(
        lambda: all(victim not in s.engine.configuration.members
                    for s in cluster.live_servers()),
        timeout=10.0), "member timeout never evicted the crashed site"


class TestProbeHandshake:
    def test_evicted_site_rejoins_via_probe_before_election_timeout(self):
        """The headline fix: a site evicted while down learns its
        eviction from the probe replies and rejoins immediately, instead
        of idling until an unwinnable election timeout (>= 0.3 s)."""
        cluster = started_cluster(FastRaftServer, seed=3)
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 3)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        faults = FaultInjector(cluster)
        _evict(cluster, faults, victim)
        faults.recover(victim)
        recovered_at = cluster.loop.now()
        assert cluster.run_until(
            lambda: victim in _leader_members(cluster),
            timeout=10.0)
        rejoin_latency = cluster.loop.now() - recovered_at
        # Probe round trip + join + catch-up: well inside the 0.3 s the
        # old silent-follower path had to wait before even *detecting*.
        assert rejoin_latency < 0.3, rejoin_latency
        outcomes = [e.payload["outcome"] for e in
                    _trace_events(cluster, "fastraft.recovery.probe_done")]
        assert "rejected" in outcomes
        cluster.run_for(1.0)
        assert not cluster.servers[victim].engine._evicted
        assert_safe(cluster)

    def test_still_member_recovery_is_confirmed(self):
        """A site that recovers before the member timeout gets a
        confirmation and resumes as a follower -- no join traffic."""
        cluster = started_cluster(FastRaftServer, seed=4)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        faults = FaultInjector(cluster)
        faults.crash(victim)
        cluster.run_for(0.15)  # well inside the 0.5 s member timeout
        faults.recover(victim)
        cluster.run_for(0.5)
        outcomes = [e.payload["outcome"] for e in
                    _trace_events(cluster, "fastraft.recovery.probe_done")]
        assert outcomes == ["confirmed"]
        assert not _trace_events(cluster, "fastraft.join.requested")
        assert victim in _leader_members(cluster)
        assert_safe(cluster)

    def test_partitioned_recovery_falls_back_on_timeout(self):
        """Probes that cannot reach anyone must not wedge the recovery:
        the probe timer fires and the site falls back to trusting its
        restored configuration (the pre-probe behaviour), then rejoins
        through the old election-timeout path once healed."""
        cluster = started_cluster(FastRaftServer, seed=5)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        faults = FaultInjector(cluster)
        _evict(cluster, faults, victim)
        for peer in cluster.servers:
            if peer != victim:
                faults.set_link_loss(victim, peer, 1.0)
        faults.recover(victim)
        cluster.run_for(0.25)  # past recovery_probe_timeout=0.15
        outcomes = [e.payload["outcome"] for e in
                    _trace_events(cluster, "fastraft.recovery.probe_done")]
        assert outcomes == ["timeout"]
        assert not cluster.servers[victim].engine._evicted  # still trusting
        for peer in cluster.servers:
            if peer != victim:
                faults.set_link_loss(victim, peer, 0.0)
        assert cluster.run_until(
            lambda: victim in _leader_members(cluster),
            timeout=20.0)
        assert_safe(cluster)

    def test_probe_disabled_restores_old_behaviour(self):
        """``recovery_probe_timeout=0`` opts out entirely: no probe
        traffic, and the silent window lasts until an election timeout
        trips the NotInConfiguration path (the pre-fix timeline the
        catch-up goldens pin)."""
        cluster = started_cluster(
            FastRaftServer, seed=6,
            timing=TimingConfig(recovery_probe_timeout=0.0))
        victim = next(n for n in cluster.servers if n != cluster.leader())
        faults = FaultInjector(cluster)
        _evict(cluster, faults, victim)
        faults.recover(victim)
        recovered_at = cluster.loop.now()
        cluster.run_for(0.2)
        assert not _trace_events(cluster, "fastraft.recovery.probe")
        assert not cluster.servers[victim].engine._evicted  # still silent
        assert cluster.run_until(
            lambda: victim in _leader_members(cluster),
            timeout=20.0)
        # Detection alone needed an election timeout: >= 0.3 s.
        assert cluster.loop.now() - recovered_at >= 0.3
        assert_safe(cluster)

    def test_probe_replies_carry_the_leader_hint(self):
        """A confirmed recovery adopts the replied leader hint instead
        of waiting for the next heartbeat to learn it."""
        cluster = started_cluster(FastRaftServer, seed=7)
        leader = cluster.leader()
        victim = next(n for n in cluster.servers if n != leader)
        faults = FaultInjector(cluster)
        faults.crash(victim)
        cluster.run_for(0.12)
        faults.recover(victim)
        cluster.run_for(0.05)  # replies land; next heartbeat has not
        assert cluster.servers[victim].engine.leader_id == leader


class TestEvictionTimingBattery:
    """Recovery placed before / racing / just after / long after the
    member timeout (5 beats x 0.1 s): every downtime must end with the
    victim back in the governing configuration and a safe cluster."""

    @pytest.mark.parametrize("downtime", [0.2, 0.5, 0.8, 3.0])
    def test_recovery_across_the_member_timeout(self, downtime):
        cluster = started_cluster(FastRaftServer, seed=8)
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 3)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        faults = FaultInjector(cluster)
        faults.crash(victim)
        cluster.run_for(downtime)
        faults.recover(victim)
        assert cluster.run_until(
            lambda: victim in _leader_members(cluster)
            and not cluster.servers[victim].engine._evicted,
            timeout=20.0)
        cluster.run_for(1.0)
        assert_safe(cluster)

    @pytest.mark.parametrize("downtime", [0.8, 3.0])
    def test_leader_crash_mid_rejoin(self, downtime):
        """The leader that evicted the victim dies right as the victim's
        probe-triggered rejoin starts; the join must survive the
        election and land with the successor."""
        cluster = started_cluster(FastRaftServer, seed=9)
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 3)
        old_leader = cluster.leader()
        victim = next(n for n in cluster.servers if n != old_leader)
        faults = FaultInjector(cluster)
        faults.crash(victim)
        cluster.run_for(downtime)
        faults.recover(victim)
        cluster.run_for(0.02)  # probes in flight / rejoin starting
        faults.crash(old_leader)
        assert cluster.run_until(
            lambda: cluster.leader() != old_leader
            and victim in _leader_members(cluster)
            and not cluster.servers[victim].engine._evicted,
            timeout=30.0)
        cluster.run_for(1.0)
        assert_safe(cluster)

    @pytest.mark.parametrize("loss", [0.3, 0.6])
    def test_lossy_probe_path_still_rejoins(self, loss):
        """Partial loss on the victim's links: whichever of the probe
        fast path or the timeout fallback wins, the victim rejoins."""
        cluster = started_cluster(FastRaftServer, seed=10)
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 3)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        faults = FaultInjector(cluster)
        _evict(cluster, faults, victim)
        for peer in cluster.servers:
            if peer != victim:
                faults.set_link_loss(victim, peer, loss)
        faults.recover(victim)
        assert cluster.run_until(
            lambda: victim in _leader_members(cluster),
            timeout=30.0)
        cluster.run_for(1.0)
        assert_safe(cluster)


class TestRecoverBookkeeping:
    def test_snapshot_carries_applied_ids_and_floor(self):
        """Recovery from a compacted log resumes the exactly-once
        bookkeeping from the snapshot image: ``_applied_ids`` come back
        and ``applied_floor`` restarts at the snapshot point."""
        cluster = started_cluster(
            FastRaftServer, seed=11,
            compaction=CompactionPolicy(threshold=6, retain=2))
        client = cluster.add_client(site=cluster.leader())
        commit_n(cluster, client, 10)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        cluster.run_until(
            lambda: cluster.servers[victim].engine.snapshot_store.latest
            is not None, timeout=10.0)
        faults = FaultInjector(cluster)
        faults.crash(victim)
        faults.recover(victim)
        server = cluster.servers[victim]
        snapshot = server.engine.snapshot_store.latest
        assert snapshot is not None
        assert server.applied_floor == snapshot.last_included_index
        assert server._applied_ids == set(snapshot.applied_ids)
        assert snapshot.applied_ids  # the image actually carried ids
        cluster.run_for(2.0)
        leader_sm = cluster.servers[cluster.leader()].state_machine
        assert server.state_machine.snapshot() == leader_sm.snapshot()
        assert_safe(cluster)

    def test_recovering_a_live_site_is_rejected(self):
        cluster = started_cluster(FastRaftServer, seed=12)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        faults = FaultInjector(cluster)
        with pytest.raises(ExperimentError, match="alive"):
            faults.recover(victim)
        faults.crash(victim)
        faults.recover(victim)  # the legal order still works
        with pytest.raises(ExperimentError, match="alive"):
            faults.recover(victim)  # but not twice
        cluster.run_for(1.0)
        assert_safe(cluster)


class TestDeclarativeJoinReplaces:
    def _pending_join_requests(self, cluster):
        requests = []
        for handle in cluster.loop.pending_handles():
            args = handle._args
            if len(args) == 3 and isinstance(args[2], JoinRequest):
                requests.append(args[2])
        return requests

    def test_replaces_hint_threads_through_the_event(self):
        cluster = started_cluster(FastRaftServer, seed=13)
        faults = FaultInjector(cluster)
        event = Event(action="request_join", target="n4", at=0.0,
                      args=("n0", "n2"))
        faults.apply_event(event, initial_leader=cluster.leader())
        (request,) = self._pending_join_requests(cluster)
        assert request.site == "n4"
        assert request.replaces == "n2"

    def test_bare_contact_keeps_no_hint(self):
        cluster = started_cluster(FastRaftServer, seed=13)
        faults = FaultInjector(cluster)
        event = Event(action="request_join", target="n4", at=0.0,
                      args=("n0",))
        faults.apply_event(event, initial_leader=cluster.leader())
        (request,) = self._pending_join_requests(cluster)
        assert request.replaces is None


class TestProbeCounters:
    """The engine-level outcome counters behind
    ``metrics.tally_probe_outcomes`` (trace-free runs still get
    recovery-probe accounting)."""

    def test_confirmed_recovery_increments_counter(self):
        from repro.metrics import tally_probe_outcomes
        cluster = started_cluster(FastRaftServer, seed=4)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        faults = FaultInjector(cluster)
        faults.crash(victim)
        cluster.run_for(0.15)
        faults.recover(victim)
        cluster.run_for(0.5)
        counters = tally_probe_outcomes(
            s.engine for s in cluster.servers.values())
        assert counters.confirmed == 1
        assert counters.rejected == 0
        assert counters.timed_out == 0

    def test_timeout_recovery_increments_counter(self):
        from repro.metrics import tally_probe_outcomes
        cluster = started_cluster(FastRaftServer, seed=5)
        victim = next(n for n in cluster.servers if n != cluster.leader())
        faults = FaultInjector(cluster)
        faults.crash(victim)
        for peer in cluster.servers:
            if peer != victim:
                faults.set_link_loss(victim, peer, 1.0)
        faults.recover(victim)
        cluster.run_for(0.25)  # past recovery_probe_timeout=0.15
        counters = tally_probe_outcomes(
            s.engine for s in cluster.servers.values())
        assert counters.timed_out == 1
