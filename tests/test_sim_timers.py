"""Tests for the timer building blocks."""

import random

import pytest

from repro.sim.loop import SimLoop
from repro.sim.timers import (
    PeriodicTimer,
    RestartableTimer,
    randomized_timeout,
)


class TestPeriodicTimer:
    def test_fires_every_interval(self):
        loop = SimLoop()
        times = []
        timer = PeriodicTimer(loop, 0.1, lambda: times.append(loop.now()))
        timer.start()
        loop.run_until(0.35)
        assert times == pytest.approx([0.1, 0.2, 0.3])

    def test_not_started_does_not_fire(self):
        loop = SimLoop()
        times = []
        PeriodicTimer(loop, 0.1, lambda: times.append(loop.now()))
        loop.run_until(1.0)
        assert times == []

    def test_stop_halts_firing(self):
        loop = SimLoop()
        times = []
        timer = PeriodicTimer(loop, 0.1, lambda: times.append(loop.now()))
        timer.start()
        loop.run_until(0.25)
        timer.stop()
        loop.run_until(1.0)
        assert len(times) == 2

    def test_start_is_idempotent(self):
        loop = SimLoop()
        times = []
        timer = PeriodicTimer(loop, 0.1, lambda: times.append(loop.now()))
        timer.start()
        timer.start()
        loop.run_until(0.15)
        assert len(times) == 1

    def test_callback_can_stop_timer(self):
        loop = SimLoop()
        timer = PeriodicTimer(loop, 0.1, lambda: timer.stop())
        timer.start()
        loop.run_until(1.0)
        assert not timer.running

    def test_restart_after_stop(self):
        loop = SimLoop()
        times = []
        timer = PeriodicTimer(loop, 0.1, lambda: times.append(loop.now()))
        timer.start()
        loop.run_until(0.15)
        timer.stop()
        loop.run_until(0.5)
        timer.start()
        loop.run_until(0.65)
        assert times == pytest.approx([0.1, 0.6])

    def test_jitter_shifts_first_firing_only(self):
        loop = SimLoop()
        times = []
        timer = PeriodicTimer(loop, 0.1, lambda: times.append(loop.now()),
                              jitter_rng=random.Random(1), jitter=0.05)
        timer.start()
        loop.run_until(0.5)
        first = times[0]
        assert 0.1 <= first <= 0.15
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap == pytest.approx(0.1) for gap in gaps)

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            PeriodicTimer(SimLoop(), 0.0, lambda: None)


class TestRestartableTimer:
    def test_fires_after_delay(self):
        loop = SimLoop()
        fired = []
        timer = RestartableTimer(loop, lambda: fired.append(loop.now()))
        timer.reset(0.3)
        loop.run_until(1.0)
        assert fired == [0.3]

    def test_fires_once(self):
        loop = SimLoop()
        fired = []
        timer = RestartableTimer(loop, lambda: fired.append(1))
        timer.reset(0.1)
        loop.run_until(1.0)
        assert fired == [1]
        assert not timer.running

    def test_reset_postpones(self):
        loop = SimLoop()
        fired = []
        timer = RestartableTimer(loop, lambda: fired.append(loop.now()))
        timer.reset(0.3)
        loop.run_until(0.2)
        timer.reset(0.3)
        loop.run_until(1.0)
        assert fired == [pytest.approx(0.5)]

    def test_cancel(self):
        loop = SimLoop()
        fired = []
        timer = RestartableTimer(loop, lambda: fired.append(1))
        timer.reset(0.1)
        timer.cancel()
        loop.run_until(1.0)
        assert fired == []

    def test_rearm_inside_callback(self):
        loop = SimLoop()
        fired = []

        def on_fire():
            fired.append(loop.now())
            if len(fired) < 3:
                timer.reset(0.1)

        timer = RestartableTimer(loop, on_fire)
        timer.reset(0.1)
        loop.run_until(1.0)
        assert fired == pytest.approx([0.1, 0.2, 0.3])


class TestRandomizedTimeout:
    def test_within_range(self):
        rng = random.Random(0)
        for _ in range(100):
            value = randomized_timeout(rng, 0.3, 0.6)
            assert 0.3 <= value < 0.6

    def test_spread(self):
        rng = random.Random(0)
        values = {round(randomized_timeout(rng, 0.3, 0.6), 3)
                  for _ in range(50)}
        assert len(values) > 40  # genuinely randomized

    def test_invalid_range_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            randomized_timeout(rng, 0.6, 0.3)
        with pytest.raises(ValueError):
            randomized_timeout(rng, 0.0, 0.3)
