"""Timer-wheel / legacy-heap scheduler equivalence.

The timer wheel replaced the binary heap on the claim that both honour
the exact same contract: events fire in ``(when, seq)`` order, the clock
reads the same at every firing, and cancellation/compaction never
changes either. This battery replays randomly generated
schedule/cancel/run traces through both schedulers and asserts the
observable histories are identical -- including traces where callbacks
schedule and cancel further events mid-run, events land exactly on
bucket boundaries, and far-future events sit in the overflow heap
across many wheel rotations.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.loop import _WHEEL_HORIZON, SimLoop


class Recorder:
    """Drives one SimLoop through a scripted trace, logging every fire."""

    def __init__(self, loop: SimLoop) -> None:
        self.loop = loop
        self.history: list[tuple] = []
        self.handles: list = []

    def fire(self, token: int, rearm_delay: float | None) -> None:
        self.history.append(("fire", token, round(self.loop.now(), 9)))
        if rearm_delay is not None:
            # Mid-run scheduling: the rearmed event must order
            # identically in both schedulers too.
            self.handles.append(self.loop.call_later(
                rearm_delay, self.fire, token + 1000, None))

    def apply(self, op: tuple) -> None:
        kind = op[0]
        loop = self.loop
        if kind == "schedule":
            _, delay, token, rearm = op
            self.handles.append(loop.call_later(delay, self.fire,
                                                token, rearm))
        elif kind == "cancel":
            _, index = op
            if self.handles:
                self.handles[index % len(self.handles)].cancel()
        elif kind == "run":
            _, duration = op
            loop.run_for(duration)
            self.history.append(("clock", round(loop.now(), 9),
                                 loop.events_processed))
        elif kind == "idle":
            executed = loop.run_until_idle(max_events=100_000)
            self.history.append(("idle", executed, round(loop.now(), 9),
                                 loop.pending_count()))


def random_trace(rng: random.Random, length: int) -> list[tuple]:
    """A random op sequence biased toward the consensus-load shape:
    lots of short timers, frequent cancels, occasional far-future
    events, and the odd full drain."""
    ops: list[tuple] = []
    token = 0
    for _ in range(length):
        roll = rng.random()
        if roll < 0.55:
            if rng.random() < 0.8:
                delay = rng.uniform(0.0, 0.7)       # heartbeat/election band
            elif rng.random() < 0.5:
                delay = rng.uniform(0.9 * _WHEEL_HORIZON,
                                    1.1 * _WHEEL_HORIZON)  # boundary band
            else:
                delay = rng.uniform(2.0, 40.0)       # deep overflow
            if rng.random() < 0.1:
                delay = round(delay, 2)              # exact bucket edges
            rearm = rng.uniform(0.0, 0.5) if rng.random() < 0.2 else None
            ops.append(("schedule", delay, token, rearm))
            token += 1
        elif roll < 0.80:
            ops.append(("cancel", rng.randrange(0, 10_000)))
        elif roll < 0.97:
            ops.append(("run", rng.uniform(0.0, 2.5)))
        else:
            ops.append(("idle",))
    ops.append(("idle",))
    return ops


@pytest.mark.parametrize("seed", range(25))
def test_random_traces_fire_identically(seed):
    rng = random.Random(seed)
    trace = random_trace(rng, length=120)
    wheel = Recorder(SimLoop(scheduler="wheel"))
    heap = Recorder(SimLoop(scheduler="heap"))
    for op in trace:
        wheel.apply(op)
        heap.apply(op)
    assert wheel.history == heap.history
    assert wheel.loop.pending_count() == heap.loop.pending_count()
    assert wheel.loop.events_processed == heap.loop.events_processed


@pytest.mark.parametrize("seed", range(8))
def test_same_instant_bursts_keep_scheduling_order(seed):
    """Many events at identical instants (the call_soon pattern) must
    fire in exact scheduling order in both implementations."""
    rng = random.Random(1000 + seed)
    instants = sorted(rng.uniform(0.0, 3.0) for _ in range(10))
    histories = []
    for scheduler in ("wheel", "heap"):
        loop = SimLoop(scheduler=scheduler)
        seen: list[tuple] = []
        burst_rng = random.Random(2000 + seed)
        for i, at in enumerate(instants):
            for j in range(burst_rng.randrange(1, 5)):
                loop.call_at(at, lambda i=i, j=j:
                             seen.append((i, j, loop.now())))
        loop.run_until(5.0)
        histories.append(seen)
    assert histories[0] == histories[1]


def test_bucket_boundary_geometry_equivalence():
    """Event times and run deadlines straddling the same 10ms bucket, in
    every combination, with the wheel empty (overflow-only) and not --
    the geometry class the random traces are too coarse to pin."""
    offsets = [1.280, 1.281, 1.285, 1.2899999, 1.29, 1.295]
    for event_at in offsets:
        for deadline in offsets:
            results = []
            for scheduler in ("wheel", "heap"):
                loop = SimLoop(scheduler=scheduler)
                seen: list[float] = []
                loop.call_later(event_at, lambda: seen.append(loop.now()))
                loop.run_until(deadline)
                mid = list(seen)
                loop.run_until(5.0)
                results.append((mid, seen, loop.pending_count(),
                                loop.events_processed))
            assert results[0] == results[1], (event_at, deadline)
    """A callback that re-schedules at the current instant lands behind
    already-queued same-instant events, on both schedulers."""
    histories = []
    for scheduler in ("wheel", "heap"):
        loop = SimLoop(scheduler=scheduler)
        seen: list[str] = []

        def chain(tag: str, depth: int) -> None:
            seen.append(f"{tag}{depth}@{loop.now()}")
            if depth < 3:
                loop.call_soon(chain, tag, depth + 1)

        loop.call_at(0.25, chain, "a", 0)
        loop.call_at(0.25, chain, "b", 0)
        loop.run_until(1.0)
        histories.append(seen)
    assert histories[0] == histories[1]


def test_cancel_inside_callback_equivalent():
    """Cancelling a not-yet-fired same-instant event from a callback is
    honoured identically (lazy cancellation in both structures)."""
    histories = []
    for scheduler in ("wheel", "heap"):
        loop = SimLoop(scheduler=scheduler)
        seen: list[str] = []
        victim = {}

        def killer() -> None:
            seen.append("killer")
            victim["h"].cancel()

        loop.call_at(0.5, killer)
        victim["h"] = loop.call_at(0.5, lambda: seen.append("victim"))
        loop.call_at(0.5, lambda: seen.append("after"))
        loop.run_until(1.0)
        histories.append(seen)
    assert histories[0] == histories[1] == ["killer", "after"]
