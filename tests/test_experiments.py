"""Integration tests: every paper experiment runs at quick scale and
reproduces the expected shape."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.base import ResultTable, cell_seed
from repro.experiments.catchup import CatchupConfig, run_catchup
from repro.experiments.fig3_latency import Fig3Config, run_fig3
from repro.experiments.fig4_churn import Fig4Config, run_fig4
from repro.experiments.fig5_throughput import Fig5Config, run_fig5
from repro.experiments.regions import (
    REGIONS,
    RTT_MATRIX,
    latency_model_for,
    regions_for,
)
from repro.experiments.rounds import RoundsConfig, run_rounds
from repro.net.topology import Topology


class TestBase:
    def test_cell_seed_stable_and_distinct(self):
        assert cell_seed(1, "a", 2) == cell_seed(1, "a", 2)
        assert cell_seed(1, "a", 2) != cell_seed(1, "a", 3)
        assert cell_seed(1, "a") != cell_seed(2, "a")

    def test_table_formatting(self):
        table = ResultTable("T", ["col a", "b"])
        table.add_row(1.234567, "x")
        table.add_note("hello")
        text = table.format()
        assert "1.23" in text
        assert "note: hello" in text

    def test_table_rejects_wrong_arity(self):
        table = ResultTable("T", ["a", "b"])
        with pytest.raises(ExperimentError):
            table.add_row(1)


class TestRegions:
    def test_full_matrix_coverage(self):
        """Every region pair in the pool has an RTT (either ordering --
        RegionLatencyModel normalizes keys)."""
        for i, a in enumerate(REGIONS):
            for b in REGIONS[i + 1:]:
                assert ((a, b) in RTT_MATRIX or (b, a) in RTT_MATRIX), \
                    f"missing ({a}, {b})"

    def test_rtts_in_paper_envelope(self):
        """Paper: 10 to 300 ms between regions."""
        for rtt in RTT_MATRIX.values():
            assert 0.010 <= rtt <= 0.300

    def test_regions_for_bounds(self):
        assert len(regions_for(10)) == 10
        with pytest.raises(ExperimentError):
            regions_for(0)
        with pytest.raises(ExperimentError):
            regions_for(99)

    def test_latency_model_covers_topology(self):
        topo = Topology.even_clusters(20, regions_for(10))
        model = latency_model_for(topo)
        import random
        rng = random.Random(0)
        for node in topo.nodes:
            assert model.sample(rng, node, topo.nodes[0]) >= 0


class TestRounds:
    def test_reproduces_figs_1_2(self):
        result = run_rounds(RoundsConfig.quick())
        result.check_shape()
        assert result.classic_commit_hops == 3
        assert result.fast_commit_hops == 2


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(Fig3Config.quick())

    def test_shape(self, result):
        result.check_shape()

    def test_headline_speedup(self, result):
        assert result.points[0].speedup == pytest.approx(2.0, abs=0.5)

    def test_table_has_all_points(self, result):
        table = result.table()
        assert len(table.rows) == len(result.config.loss_rates)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(Fig4Config.quick())

    def test_shape(self, result):
        result.check_shape()

    def test_configuration_shrinks(self, result):
        assert len(result.final_members) == 3
        assert result.final_fast_quorum == 3

    def test_pre_leave_band_matches_paper(self, result):
        """Paper: 50-100 ms proposals before the leave."""
        pre, _, _ = result.phase_latencies()
        mean = sum(pre) / len(pre)
        assert 0.030 <= mean <= 0.110


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(Fig5Config(cluster_counts=(1, 10),
                                   trial_duration=30.0, trials=1,
                                   warmup=10.0))

    def test_craft_wins_at_ten_clusters(self, result):
        assert result.points[-1].speedup >= 3.0

    def test_comparable_at_one_cluster(self, result):
        assert 0.4 <= result.points[0].speedup <= 2.5

    def test_table(self, result):
        table = result.table()
        assert len(table.rows) == 2


class TestCatchup:
    """Snapshot catch-up beats full replay in every engine (the snapshot
    subsystem's acceptance criterion, at quick scale)."""

    @pytest.mark.parametrize("engine", ["raft", "fastraft", "craft"])
    def test_snapshots_beat_full_replay(self, engine):
        result = run_catchup(CatchupConfig.quick(engine))
        # Enforces strictly fewer replayed entries and strictly faster
        # catch-up with snapshots, plus >= 1 install.
        result.check_shape()

    def test_table_and_dict(self):
        result = run_catchup(CatchupConfig.quick("fastraft"))
        table = result.table()
        assert len(table.rows) == 2
        data = result.as_dict()
        assert data["engine"] == "fastraft"
        assert data["with_snapshots"]["installs"] >= 1


class TestProfileFlag:
    def test_profile_writes_stats_next_to_json(self, tmp_path):
        """--profile runs the cell under cProfile and dumps sorted stats
        next to the JSON results (the profile-first workflow)."""
        from repro.experiments.__main__ import main
        assert main(["--scenario", "rounds", "--profile",
                     "--json-dir", str(tmp_path)]) == 0
        stats = (tmp_path / "scenario_rounds.prof.txt").read_text()
        assert "cumulative" in stats and "tottime" in stats
        assert "run_cell" in stats  # the simulation, not just the CLI
        assert (tmp_path / "scenario_rounds.json").exists()


class TestPerfBench:
    def test_perf_report_cores_agree_and_trajectory_written(self, tmp_path):
        """Both cores execute the identical simulation; the trajectory
        file accumulates runs."""
        from repro.bench import run_bench_perf, write_trajectory
        from repro.bench.perf import _run_raft_lan_steady  # noqa: F401
        import json as _json
        from repro import perf as _perf

        # One tiny cell on each core: identical events is the invariant
        # the full benchmark enforces per cell.
        import repro.bench.perf as bench_perf
        saved = bench_perf._CELLS
        bench_perf._CELLS = [(bench_perf.STEADY_CELL,
                              bench_perf._run_raft_lan_steady)]
        try:
            report = run_bench_perf(smoke=True, repeats=1)
        finally:
            bench_perf._CELLS = saved
        cell = report.cell(bench_perf.STEADY_CELL)
        assert cell.legacy.events == cell.current.events
        assert cell.legacy.sim_seconds == cell.current.sim_seconds
        assert not _perf.LEGACY_CORE  # the context manager restored it

        path = tmp_path / "BENCH_perf.json"
        write_trajectory(report, path)
        write_trajectory(report, path)
        payload = _json.loads(path.read_text())
        assert payload["schema"] == 1
        assert len(payload["runs"]) == 2
        assert payload["runs"][0]["cells"][bench_perf.STEADY_CELL][
            "legacy"]["events"] == cell.legacy.events
