"""Timer building blocks used by the consensus protocols.

Two patterns cover everything Raft-family protocols need:

- :class:`PeriodicTimer` -- fires at a fixed interval (heartbeats, the
  leader's periodic decision procedure, batching checks).
- :class:`RestartableTimer` -- one-shot timer that is re-armed explicitly
  (election timeouts, proposal timeouts, join timeouts).
"""

from __future__ import annotations

import random
from typing import Callable

from repro.sim.loop import Handle, SimLoop


class PeriodicTimer:
    """Calls ``callback()`` every ``interval`` seconds once started.

    The first firing happens one full interval after :meth:`start` (plus
    optional phase jitter, which desynchronizes identical nodes the same
    way real clock skew would).
    """

    def __init__(self, loop: SimLoop, interval: float,
                 callback: Callable[[], None],
                 jitter_rng: random.Random | None = None,
                 jitter: float = 0.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval!r}")
        self._loop = loop
        self._interval = interval
        self._callback = callback
        self._jitter_rng = jitter_rng
        self._jitter = jitter
        self._handle: Handle | None = None

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def running(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def start(self) -> None:
        """Arm the timer. No-op if already running."""
        if self.running:
            return
        self._schedule_next(first=True)

    def stop(self) -> None:
        """Disarm the timer. Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _schedule_next(self, first: bool = False) -> None:
        delay = self._interval
        if first and self._jitter > 0 and self._jitter_rng is not None:
            delay += self._jitter_rng.uniform(0.0, self._jitter)
        self._handle = self._loop.call_later(delay, self._fire)

    def _fire(self) -> None:
        # Re-arm before invoking so the callback can stop() the timer.
        self._schedule_next()
        self._callback()


class RestartableTimer:
    """One-shot timer with explicit re-arming.

    Used for election timeouts: ``reset(delay)`` postpones the firing,
    e.g. whenever a heartbeat arrives.
    """

    def __init__(self, loop: SimLoop, callback: Callable[[], None]) -> None:
        self._loop = loop
        self._callback = callback
        self._handle: Handle | None = None

    @property
    def running(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def reset(self, delay: float) -> None:
        """(Re-)arm the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._handle = self._loop.call_later(delay, self._fire)

    def cancel(self) -> None:
        """Disarm without firing. Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()


def randomized_timeout(rng: random.Random, low: float, high: float) -> float:
    """Sample an election timeout uniformly from ``[low, high)``.

    Raft relies on randomized timeouts to break election ties with high
    probability; this helper is the single place that sampling happens so
    tests can pin its distribution.
    """
    if not 0 < low <= high:
        raise ValueError(f"invalid timeout range [{low!r}, {high!r})")
    return rng.uniform(low, high)
