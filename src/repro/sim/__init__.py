"""Deterministic discrete-event simulation kernel.

This package replaces the paper's AWS testbed. Simulated components observe
only message delays, losses, and timer firings, all of which are produced
here deterministically from a root seed, so every experiment is exactly
reproducible.

Public surface:

- :class:`~repro.sim.loop.SimLoop` -- the event loop (virtual clock +
  scheduler).
- :class:`~repro.sim.loop.Handle` -- cancellation handle for scheduled
  callbacks.
- :class:`~repro.sim.rng.RngRegistry` -- named, independent random streams
  derived from one root seed.
- :class:`~repro.sim.timers.PeriodicTimer`,
  :class:`~repro.sim.timers.RestartableTimer` -- timer building blocks used
  by the consensus nodes (heartbeats, election timeouts).
- :class:`~repro.sim.actor.Actor` -- base class for simulated processes.
- :class:`~repro.sim.trace.TraceRecorder` -- structured event trace used by
  invariant checkers and tests.
"""

from repro.sim.actor import Actor
from repro.sim.loop import Handle, SimLoop
from repro.sim.rng import RngRegistry
from repro.sim.timers import PeriodicTimer, RestartableTimer
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "Actor",
    "Handle",
    "PeriodicTimer",
    "RestartableTimer",
    "RngRegistry",
    "SimLoop",
    "TraceEvent",
    "TraceRecorder",
]
