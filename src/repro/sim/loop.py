"""The discrete-event simulation loop: a virtual clock plus a scheduler.

Time is a float in **seconds**. Events scheduled for the same instant run
in scheduling order (a monotonically increasing sequence number breaks
ties), which keeps runs deterministic regardless of scheduler internals.

Two schedulers implement that contract:

- ``"wheel"`` (the default) -- a bucketed timer wheel sized for the
  heartbeat- and election-timeout-dominated load of the consensus
  engines: events within the wheel horizon live in per-bucket mini
  heaps of ``(when, seq, handle)`` tuples (comparisons stay in C, no
  per-compare tuple allocation), far-future events wait in an overflow
  heap and migrate in as the wheel turns. Cancellation is O(1)
  cancel-and-forget, and fired or cancelled handles are recycled
  through a small free-list when nothing else references them.
- ``"heap"`` -- the pre-refactor single binary heap of ``Handle``
  objects ordered by ``Handle.__lt__``. Kept as the reference
  implementation: the equivalence property test replays random
  schedule/cancel traces through both, and ``repro.perf``'s legacy-core
  switch selects it so ``bench_perf`` can measure the speedup on the
  same machine in the same run.

Both produce the exact same firing order and clock reads for the same
calls; tests pin that equivalence.
"""

from __future__ import annotations

import gc
import heapq
import itertools
import sys
from typing import Any, Callable

from repro import perf
from repro.errors import SimulationError

#: Convenience unit: ``loop.call_later(100 * MS, fn)`` reads like the paper.
MS = 1e-3

#: Timer-wheel geometry. Buckets are ``1 / _WHEEL_INV`` seconds wide
#: (10 ms: a few heartbeats per bucket) and the wheel spans
#: ``_WHEEL_SLOTS`` buckets (1.28 s: heartbeats, election timeouts, WAN
#: latencies, and the default proposal timeout all land inside the
#: horizon; only long-range experiment timers overflow).
_WHEEL_INV = 100.0
_WHEEL_SLOTS = 128
_WHEEL_HORIZON = _WHEEL_SLOTS / _WHEEL_INV

#: Recycled handles kept for reuse, at most.
_FREELIST_MAX = 512


class Handle:
    """Cancellation handle returned by :meth:`SimLoop.call_later`.

    Cancellation is lazy: the entry stays in its bucket (or heap) and is
    skipped when popped. This makes ``cancel()`` O(1). The owning loop
    keeps a count of cancelled entries still stored so
    ``pending_count()`` stays O(1) and the structure can be compacted
    when cancellations dominate it.
    """

    __slots__ = ("when", "_callback", "_args", "_cancelled", "seq",
                 "_loop", "_in_heap")

    def __init__(self, when: float, seq: int,
                 callback: Callable[..., None], args: tuple,
                 loop: "SimLoop | None" = None) -> None:
        self.when = when
        self.seq = seq
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._loop = loop
        self._in_heap = False

    def cancel(self) -> None:
        """Prevent the callback from running. Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        # Drop references so cancelled closures can be collected early.
        self._callback = None
        self._args = ()
        if self._in_heap and self._loop is not None:
            self._loop._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _run(self) -> None:
        if not self._cancelled:
            self._callback(*self._args)

    def __lt__(self, other: "Handle") -> bool:
        # Only the legacy heap compares handles directly; the wheel
        # stores (when, seq, handle) tuples so comparisons never
        # allocate. Kept for the legacy scheduler and external sorts.
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<Handle when={self.when:.6f} seq={self.seq} {state}>"


class SimLoop:
    """Virtual-time event loop.

    The loop only advances time when asked to run; scheduling callbacks is
    side-effect free until then. A typical experiment::

        loop = SimLoop()
        loop.call_later(0.5, do_something)
        loop.run_until(60.0)

    ``scheduler`` picks the implementation (``"wheel"`` / ``"heap"``);
    None follows :data:`repro.perf.LEGACY_CORE` (wheel unless the
    legacy core is selected).
    """

    #: Compaction never bothers with structures smaller than this.
    _COMPACT_MIN = 64

    def __init__(self, scheduler: str | None = None) -> None:
        if scheduler is None:
            scheduler = "heap" if perf.LEGACY_CORE else "wheel"
        if scheduler not in ("wheel", "heap"):
            raise SimulationError(f"unknown scheduler: {scheduler!r}")
        self.scheduler = scheduler
        self._is_wheel = scheduler == "wheel"
        self._now = 0.0
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._cancelled_in_heap = 0
        self._free: list[Handle] = []
        if self._is_wheel:
            self._wheel: list[list] = [[] for _ in range(_WHEEL_SLOTS)]
            self._overflow: list = []
            self._cursor = 0          # absolute bucket id of the clock
            self._active = 0          # scheduled, non-cancelled entries
            self._in_wheel = 0        # entries in wheel slots (incl. cancelled)
            # Scheduling runs once per simulated event (often twice);
            # the fused wheel variants skip the call_later -> call_at
            # dispatch frame and its redundant past-check. The heap
            # scheduler keeps the generic methods (pre-change cost).
            self.call_later = self._call_later_wheel  # type: ignore[method-assign]
            self.call_soon = self._call_soon_wheel  # type: ignore[method-assign]
        else:
            self._heap: list[Handle] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for tests and stats)."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_later(self, delay: float, callback: Callable[..., None],
                   *args: Any) -> Handle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    def call_at(self, when: float, callback: Callable[..., None],
                *args: Any) -> Handle:
        """Schedule ``callback(*args)`` to run at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when!r}, now is {self._now!r}")
        seq = next(self._seq)
        free = self._free
        if free:
            handle = free.pop()
            handle.when = when
            handle.seq = seq
            handle._callback = callback
            handle._args = args
            handle._cancelled = False
        else:
            handle = Handle(when, seq, callback, args, loop=self)
        handle._in_heap = True
        if self._is_wheel:
            self._active += 1
            if when - self._now >= _WHEEL_HORIZON:
                heapq.heappush(self._overflow, (when, seq, handle))
            else:
                self._in_wheel += 1
                heapq.heappush(
                    self._wheel[int(when * _WHEEL_INV) % _WHEEL_SLOTS],
                    (when, seq, handle))
        else:
            heapq.heappush(self._heap, handle)
        return handle

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Handle:
        """Schedule ``callback(*args)`` at the current instant."""
        return self.call_at(self._now, callback, *args)

    def _call_later_wheel(self, delay: float, callback: Callable[..., None],
                          *args: Any) -> Handle:
        """``call_later`` with the wheel branch of ``call_at`` fused in
        (identical placement predicate, one call frame instead of two)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        when = self._now + delay
        seq = next(self._seq)
        free = self._free
        if free:
            handle = free.pop()
            handle.when = when
            handle.seq = seq
            handle._callback = callback
            handle._args = args
            handle._cancelled = False
        else:
            handle = Handle(when, seq, callback, args, loop=self)
        handle._in_heap = True
        self._active += 1
        if when - self._now >= _WHEEL_HORIZON:
            heapq.heappush(self._overflow, (when, seq, handle))
        else:
            self._in_wheel += 1
            heapq.heappush(
                self._wheel[int(when * _WHEEL_INV) % _WHEEL_SLOTS],
                (when, seq, handle))
        return handle

    def _call_soon_wheel(self, callback: Callable[..., None],
                         *args: Any) -> Handle:
        """``call_soon`` fused for the wheel: the current instant is
        always inside the horizon, so placement needs no overflow test."""
        when = self._now
        seq = next(self._seq)
        free = self._free
        if free:
            handle = free.pop()
            handle.when = when
            handle.seq = seq
            handle._callback = callback
            handle._args = args
            handle._cancelled = False
        else:
            handle = Handle(when, seq, callback, args, loop=self)
        handle._in_heap = True
        self._active += 1
        self._in_wheel += 1
        heapq.heappush(
            self._wheel[int(when * _WHEEL_INV) % _WHEEL_SLOTS],
            (when, seq, handle))
        return handle

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_until(self, deadline: float) -> None:
        """Run events until the clock reaches ``deadline``.

        Time is advanced to ``deadline`` even if the schedule drains
        earlier, so subsequent ``now()`` calls reflect the elapsed
        interval.
        """
        if deadline < self._now:
            raise SimulationError(
                f"deadline {deadline!r} is before now {self._now!r}")
        if self._running:
            raise SimulationError("loop is already running (re-entrant run)")
        self._running = True
        try:
            if self._is_wheel:
                # The event loop allocates hundreds of short-lived
                # objects per event (messages, tuples, closures), all
                # reclaimed promptly by reference counting; the cycle
                # collector's young-generation scans during the run are
                # pure overhead. Pause it for the duration -- cycles
                # created inside are picked up once the caller allocates
                # again with the collector back on. The legacy heap
                # runner leaves the collector untouched (pre-change
                # behaviour), so bench_perf prices the pause.
                paused = gc.isenabled()
                if paused:
                    gc.disable()
                try:
                    self._run_wheel(deadline)
                finally:
                    if paused:
                        gc.enable()
            else:
                self._run_heap(deadline)
            self._now = deadline
        finally:
            self._running = False

    def _run_heap(self, deadline: float,
                  max_events: int | None = None) -> int:
        """Legacy scheduler run; returns the number of events fired."""
        heap = self._heap
        fired = 0
        while heap and heap[0].when <= deadline:
            handle = heapq.heappop(heap)
            handle._in_heap = False
            if handle._cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = handle.when
            self._events_processed += 1
            fired += 1
            if max_events is not None and fired > max_events:
                raise SimulationError(
                    f"run_until_idle exceeded {max_events} events")
            handle._run()
        return fired

    def _run_wheel(self, deadline: float,
                   max_events: int | None = None) -> int:
        """Timer-wheel run; returns the number of events fired.

        Invariants: every stored entry has ``when >= now``; every wheel
        entry's bucket id lies in ``[cursor, cursor + slots)`` (overflow
        holds everything farther out), so within one bucket the mini
        heap yields exact ``(when, seq)`` order and across buckets the
        cursor sweep yields time order.
        """
        target_bid = int(deadline * _WHEEL_INV)
        wheel = self._wheel
        overflow = self._overflow
        free = self._free
        cursor = self._cursor
        fired = 0
        while self._active:
            # Pull overflow entries whose bucket enters the horizon.
            # (Float multiply keeps this exact w.r.t. placement and
            # safe for infinite ``when``.)
            horizon_bid = cursor + _WHEEL_SLOTS
            while overflow and overflow[0][0] * _WHEEL_INV < horizon_bid:
                item = heapq.heappop(overflow)
                self._in_wheel += 1
                heapq.heappush(
                    wheel[int(item[0] * _WHEEL_INV) % _WHEEL_SLOTS], item)
            slot = wheel[cursor % _WHEEL_SLOTS]
            while slot:
                when = slot[0][0]
                bid = int(when * _WHEEL_INV)
                if bid > cursor:
                    break  # resident of a later rotation; not due yet
                if bid == cursor and when > deadline:
                    # Due bucket, but past the deadline (the deadline
                    # falls inside this bucket): leave it queued.
                    self._cursor = cursor
                    return fired
                # bid < cursor only happens for cancelled leftovers the
                # deep-overflow clock jump skipped past; pop and discard
                # them like any other cancelled entry.
                when, _seq, handle = heapq.heappop(slot)
                self._in_wheel -= 1
                handle._in_heap = False
                if handle._cancelled:
                    self._cancelled_in_heap -= 1
                    if (len(free) < _FREELIST_MAX
                            and sys.getrefcount(handle) == 2):
                        free.append(handle)
                    continue
                self._active -= 1
                self._now = when
                self._events_processed += 1
                fired += 1
                if max_events is not None and fired > max_events:
                    raise SimulationError(
                        f"run_until_idle exceeded {max_events} events")
                # Handle._run inlined: the cancelled re-check is
                # redundant here (nothing ran since the check above).
                handle._callback(*handle._args)
                # Recycle if this frame holds the only reference (2 ==
                # the local + getrefcount's own argument); a caller that
                # kept the handle -- and so could still cancel() it --
                # shows up in the count and blocks reuse.
                if (len(free) < _FREELIST_MAX
                        and sys.getrefcount(handle) == 2):
                    handle._callback = None
                    handle._args = ()
                    free.append(handle)
                # A callback may have compacted the wheel in place or
                # scheduled into this bucket; the slot alias stays valid
                # (compaction uses slice assignment).
            if cursor >= target_bid:
                break
            if not self._in_wheel:
                # The wheel itself is empty: jump the cursor to where
                # the next overflow entry (or the deadline) lives
                # instead of sweeping empty buckets. The due check must
                # compare times, not buckets -- an entry can share the
                # deadline's bucket yet still be due (when <= deadline).
                if not overflow:
                    break
                ow_when = overflow[0][0]
                if ow_when > deadline:
                    break
                cursor = max(cursor + 1,
                             int(ow_when * _WHEEL_INV) - _WHEEL_SLOTS + 1)
                continue
            cursor += 1
        self._cursor = max(self._cursor, target_bid)
        return fired

    def run_for(self, duration: float) -> None:
        """Run events for ``duration`` seconds of virtual time."""
        self.run_until(self._now + duration)

    def run_until_idle(self, max_events: int | None = None) -> int:
        """Run until no events remain; returns the number executed.

        ``max_events`` bounds runaway simulations (e.g. a timer that
        re-arms forever); exceeding it raises :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("loop is already running (re-entrant run)")
        self._running = True
        executed = 0
        paused = self._is_wheel and gc.isenabled()
        if paused:
            gc.disable()  # same collector pause as run_until
        try:
            if self._is_wheel:
                while self._active:
                    budget = (None if max_events is None
                              else max_events - executed)
                    before = self._events_processed
                    executed += self._run_wheel(self._now + _WHEEL_HORIZON,
                                                max_events=budget)
                    if self._events_processed == before and self._active:
                        # Everything left lies beyond the scanned
                        # window (deep overflow): jump the clock to the
                        # earliest pending event and go again.
                        self._now = self._next_event_time()
                        self._cursor = int(self._now * _WHEEL_INV)
                # Unlike run_until, the clock stays at the last fired
                # event here -- pull the cursor back next to it so later
                # schedules land ahead of it, never behind.
                self._cursor = int(self._now * _WHEEL_INV)
            else:
                executed = self._run_heap(float("inf"),
                                          max_events=max_events)
        finally:
            self._running = False
            if paused:
                gc.enable()
        return executed

    def _next_event_time(self) -> float:
        """Earliest non-cancelled pending time (wheel mode; O(stored),
        only reached on the deep-overflow path of run_until_idle)."""
        best = None
        for slot in self._wheel:
            for when, _seq, handle in slot:
                if not handle._cancelled and (best is None or when < best):
                    best = when
        for when, _seq, handle in self._overflow:
            if not handle._cancelled and (best is None or when < best):
                best = when
        if best is None:  # pragma: no cover - guarded by _active
            return self._now
        return best

    def pending_count(self) -> int:
        """Number of scheduled, non-cancelled callbacks. O(1)."""
        if self._is_wheel:
            return self._active
        return len(self._heap) - self._cancelled_in_heap

    # ------------------------------------------------------------------
    # Model-checking hooks: enumerate and fire events out of order
    # ------------------------------------------------------------------
    def pending_handles(self) -> list[Handle]:
        """Every scheduled, non-cancelled handle in ``(when, seq)`` order.

        O(pending log pending). This is the model checker's *branch set*:
        the explorer enumerates it, forks the world, and fires one handle
        per child via :meth:`fire_handle`.
        """
        if self._is_wheel:
            handles = [item[2] for slot in self._wheel for item in slot
                       if not item[2]._cancelled]
            handles.extend(item[2] for item in self._overflow
                           if not item[2]._cancelled)
        else:
            handles = [h for h in self._heap if not h._cancelled]
        handles.sort(key=lambda h: (h.when, h.seq))
        return handles

    def fire_handle(self, handle: Handle) -> None:
        """Run one pending handle now, possibly out of time order.

        The clock advances to ``max(now, handle.when)`` (never backward:
        an exploration may fire a later-scheduled event first, and a
        monotonic clock keeps subsequent ``call_later`` legal). The stored
        wheel/heap entry is retired through the normal lazy-cancellation
        path, so bookkeeping stays exact.

        This deliberately breaks the scheduler's time-order contract --
        callers (the model-checking explorer, trace replay) must drive
        *every* subsequent event through this hook rather than mixing in
        ``run_until``.
        """
        if self._running:
            raise SimulationError("cannot fire_handle while the loop runs")
        if handle._cancelled or not handle._in_heap:
            raise SimulationError(f"handle is not pending: {handle!r}")
        callback, args = handle._callback, handle._args
        handle.cancel()  # retires the stored entry; drops its refs
        if handle.when > self._now:
            self._now = handle.when
            if self._is_wheel:
                self._cursor = max(self._cursor,
                                   int(self._now * _WHEEL_INV))
        self._events_processed += 1
        callback(*args)

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """A handle still stored was cancelled; maybe compact.

        Compaction rewrites the structure *in place* (slice assignment)
        so any local alias held by a running ``run_until`` stays valid.
        """
        self._cancelled_in_heap += 1
        if self._is_wheel:
            self._active -= 1
            stored = self._in_wheel + len(self._overflow)
            if (stored >= self._COMPACT_MIN
                    and self._cancelled_in_heap * 2 > stored):
                in_wheel = 0
                for slot in self._wheel:
                    if slot:
                        kept = [item for item in slot
                                if not item[2]._cancelled]
                        slot[:] = kept
                        heapq.heapify(slot)
                        in_wheel += len(kept)
                overflow = self._overflow
                overflow[:] = [item for item in overflow
                               if not item[2]._cancelled]
                heapq.heapify(overflow)
                self._in_wheel = in_wheel
                self._cancelled_in_heap = 0
            return
        heap = self._heap
        if (len(heap) >= self._COMPACT_MIN
                and self._cancelled_in_heap * 2 > len(heap)):
            heap[:] = [h for h in heap if not h._cancelled]
            heapq.heapify(heap)
            self._cancelled_in_heap = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SimLoop now={self._now:.6f} "
                f"pending={self.pending_count()} "
                f"scheduler={self.scheduler}>")
