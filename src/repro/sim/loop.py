"""The discrete-event simulation loop: a virtual clock plus a scheduler.

Time is a float in **seconds**. Events scheduled for the same instant run
in scheduling order (a monotonically increasing sequence number breaks
ties), which keeps runs deterministic regardless of heap internals.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.errors import SimulationError

#: Convenience unit: ``loop.call_later(100 * MS, fn)`` reads like the paper.
MS = 1e-3


class Handle:
    """Cancellation handle returned by :meth:`SimLoop.call_later`.

    Cancellation is lazy: the entry stays in the heap and is skipped when
    popped. This makes ``cancel()`` O(1). The owning loop keeps a count of
    cancelled entries still in its heap so ``pending_count()`` stays O(1)
    and the heap can be compacted when cancellations dominate it.
    """

    __slots__ = ("when", "_callback", "_args", "_cancelled", "seq",
                 "_loop", "_in_heap")

    def __init__(self, when: float, seq: int,
                 callback: Callable[..., None], args: tuple,
                 loop: "SimLoop | None" = None) -> None:
        self.when = when
        self.seq = seq
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._loop = loop
        self._in_heap = False

    def cancel(self) -> None:
        """Prevent the callback from running. Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        # Drop references so cancelled closures can be collected early.
        self._callback = None
        self._args = ()
        if self._in_heap and self._loop is not None:
            self._loop._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _run(self) -> None:
        if not self._cancelled:
            self._callback(*self._args)

    def __lt__(self, other: "Handle") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<Handle when={self.when:.6f} seq={self.seq} {state}>"


class SimLoop:
    """Virtual-time event loop.

    The loop only advances time when asked to run; scheduling callbacks is
    side-effect free until then. A typical experiment::

        loop = SimLoop()
        loop.call_later(0.5, do_something)
        loop.run_until(60.0)
    """

    #: Compaction never bothers with heaps smaller than this.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Handle] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for tests and stats)."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_later(self, delay: float, callback: Callable[..., None],
                   *args: Any) -> Handle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    def call_at(self, when: float, callback: Callable[..., None],
                *args: Any) -> Handle:
        """Schedule ``callback(*args)`` to run at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when!r}, now is {self._now!r}")
        handle = Handle(when, next(self._seq), callback, args, loop=self)
        handle._in_heap = True
        heapq.heappush(self._heap, handle)
        return handle

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Handle:
        """Schedule ``callback(*args)`` at the current instant."""
        return self.call_at(self._now, callback, *args)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_until(self, deadline: float) -> None:
        """Run events until the clock reaches ``deadline``.

        Time is advanced to ``deadline`` even if the heap drains earlier, so
        subsequent ``now()`` calls reflect the elapsed interval.
        """
        if deadline < self._now:
            raise SimulationError(
                f"deadline {deadline!r} is before now {self._now!r}")
        if self._running:
            raise SimulationError("loop is already running (re-entrant run)")
        self._running = True
        try:
            heap = self._heap
            while heap and heap[0].when <= deadline:
                handle = heapq.heappop(heap)
                handle._in_heap = False
                if handle.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                self._now = handle.when
                self._events_processed += 1
                handle._run()
            self._now = deadline
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Run events for ``duration`` seconds of virtual time."""
        self.run_until(self._now + duration)

    def run_until_idle(self, max_events: int | None = None) -> int:
        """Run until no events remain; returns the number executed.

        ``max_events`` bounds runaway simulations (e.g. a timer that
        re-arms forever); exceeding it raises :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("loop is already running (re-entrant run)")
        self._running = True
        executed = 0
        try:
            heap = self._heap
            while heap:
                handle = heapq.heappop(heap)
                handle._in_heap = False
                if handle.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                self._now = handle.when
                self._events_processed += 1
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"run_until_idle exceeded {max_events} events")
                handle._run()
        finally:
            self._running = False
        return executed

    def pending_count(self) -> int:
        """Number of scheduled, non-cancelled callbacks. O(1)."""
        return len(self._heap) - self._cancelled_in_heap

    def _note_cancelled(self) -> None:
        """A handle still in the heap was cancelled; maybe compact.

        Compaction rewrites the heap *in place* (slice assignment) so any
        local alias held by a running ``run_until`` stays valid.
        """
        self._cancelled_in_heap += 1
        heap = self._heap
        if (len(heap) >= self._COMPACT_MIN
                and self._cancelled_in_heap * 2 > len(heap)):
            heap[:] = [h for h in heap if not h.cancelled]
            heapq.heapify(heap)
            self._cancelled_in_heap = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SimLoop now={self._now:.6f} "
                f"pending={self.pending_count()}>")
