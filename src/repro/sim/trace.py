"""Structured event trace.

Consensus nodes emit trace events (role changes, commits, config changes,
recoveries). Invariant checkers and tests consume the trace to verify,
e.g., election safety ("at most one leader per term") without poking at
node internals mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    ``category`` is a short dotted string such as ``"role.leader"``,
    ``"commit"``, ``"config.change"``; ``payload`` holds event-specific
    details.
    """

    time: float
    node: str
    category: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TraceEvent(t={self.time:.4f}, node={self.node!r}, "
                f"{self.category!r}, {self.payload!r})")


class TraceRecorder:
    """Append-only trace with simple query helpers.

    Recording can be disabled wholesale (``enabled=False``) for large
    benchmark runs where the trace would dominate memory.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: list[TraceEvent] = []

    def record(self, time: float, node: str, category: str,
               **payload: Any) -> None:
        if not self.enabled:
            return
        self._events.append(TraceEvent(time, node, category, payload))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> list[TraceEvent]:
        """The raw event list (do not mutate)."""
        return self._events

    def select(self, category: str | None = None, node: str | None = None,
               predicate: Callable[[TraceEvent], bool] | None = None
               ) -> list[TraceEvent]:
        """Filter events by exact category, node, and/or predicate."""
        out = []
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if node is not None and event.node != node:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def select_prefix(self, prefix: str) -> list[TraceEvent]:
        """Events whose category starts with ``prefix``."""
        return [e for e in self._events if e.category.startswith(prefix)]

    def last(self, category: str) -> TraceEvent | None:
        """Most recent event of ``category``, or None."""
        for event in reversed(self._events):
            if event.category == category:
                return event
        return None

    def clear(self) -> None:
        self._events.clear()
