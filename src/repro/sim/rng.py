"""Named, independent random streams derived from a single root seed.

Every stochastic component (network latency, message loss, election
timeouts per node, workload inter-arrivals) draws from its own named
stream, so adding randomness to one component never perturbs another and
whole experiments replay bit-for-bit from one integer seed.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(root_seed, name)``.

    Uses SHA-256 so the derivation is stable across Python versions and
    processes (unlike ``hash()``, which is salted).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the same (stateful)
        generator object.
        """
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self._root_seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry rooted at a derived seed.

        Useful when one experiment spawns sub-experiments that must not
        share streams with the parent.
        """
        return RngRegistry(derive_seed(self._root_seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<RngRegistry root_seed={self._root_seed} "
                f"streams={sorted(self._streams)}>")
