"""Actor: base class for simulated processes.

An actor is anything that lives on the simulation loop and receives
messages from the network: consensus nodes, clients, fault injectors.
Subclasses implement :meth:`on_message`; the network delivers into
:meth:`deliver` (which alive-gates the call so crashed actors drop
traffic, the same observable behaviour as a dead process).
"""

from __future__ import annotations

from typing import Any

from repro.sim.loop import SimLoop


class Actor:
    """A named simulated process bound to a :class:`SimLoop`."""

    def __init__(self, loop: SimLoop, name: str) -> None:
        self._loop = loop
        self._name = name
        self._alive = True

    @property
    def loop(self) -> SimLoop:
        return self._loop

    @property
    def name(self) -> str:
        return self._name

    @property
    def alive(self) -> bool:
        return self._alive

    def now(self) -> float:
        """Current virtual time (convenience passthrough)."""
        return self._loop.now()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Stop the actor: it no longer receives messages.

        Subclasses override to also cancel their timers, then call
        ``super().kill()``.
        """
        self._alive = False

    def revive(self) -> None:
        """Mark the actor alive again (crash recovery).

        Subclasses override to restore volatile state and restart timers,
        then call ``super().revive()``.
        """
        self._alive = True

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def deliver(self, message: Any, sender: str) -> None:
        """Entry point used by the network. Drops traffic when dead."""
        if not self._alive:
            return
        self.on_message(message, sender)

    def on_message(self, message: Any, sender: str) -> None:
        """Handle a delivered message. Subclasses must implement."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self._alive else "dead"
        return f"<{type(self).__name__} {self._name} {state}>"
