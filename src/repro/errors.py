"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised for misuse of the simulation kernel (e.g. time travel)."""


class NetworkError(ReproError):
    """Raised for network-substrate misuse (unknown address, bad model)."""


class StorageError(ReproError):
    """Raised when stable storage is used incorrectly."""


class ConsensusError(ReproError):
    """Base class for consensus-layer errors."""


class LogError(ConsensusError):
    """Raised for invalid replicated-log operations."""


class ConfigurationError(ConsensusError):
    """Raised for invalid membership configurations."""


class NotLeaderError(ConsensusError):
    """Raised when a leader-only operation is invoked on a non-leader."""

    def __init__(self, message: str = "node is not the leader",
                 leader_hint: str | None = None) -> None:
        super().__init__(message)
        #: Best-known current leader, if any, so callers can redirect.
        self.leader_hint = leader_hint


class InvariantViolation(ReproError):
    """Raised by safety checkers when a protocol invariant is broken."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for bad experiment parameters."""


class ModelCheckError(ReproError):
    """Raised by the model checker for invalid exploration requests
    (unknown target or strategy, unreplayable schedule)."""
