"""Replay an exported violation schedule through the normal SimLoop.

A schedule (``mc/trace.py``) is the ``(when, seq)`` sequence of events
the explorer fired from the exploration root to a violating state. The
simulation is deterministic per ``(spec, seed)``: preparing the target
again yields a world whose pending events carry the *same* sequence
numbers, so replay is exact -- find the handle with the recorded seq,
fire it, repeat. The final fingerprint must match the exploration's; a
mismatch means the code under test changed since the trace was written.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from repro.errors import ModelCheckError
from repro.mc.state import World, capture_state, fingerprint
from repro.scenarios.mc import get_mc_target, prepare_world


@dataclass
class ReplayResult:
    schedule: dict
    world: World                # the reproduced violating state, live
    fingerprint: str
    matched: bool               # fingerprint equals the schedule's

    @property
    def state(self) -> dict:
        return capture_state(self.world)

    def summary(self) -> str:
        verdict = ("reproduced" if self.matched
                   else "DIVERGED from the recorded fingerprint")
        return (f"replay {self.schedule['target']}: "
                f"{len(self.schedule['path'])} steps, {verdict} "
                f"({self.fingerprint})")


def replay_schedule(schedule: dict) -> ReplayResult:
    """Re-drive one schedule; returns the final (violating) world."""
    target = get_mc_target(schedule["target"])
    if schedule.get("seed", target.seed) != target.seed:
        raise ModelCheckError(
            f"schedule was recorded at seed {schedule['seed']} but target "
            f"{target.name!r} is registered at seed {target.seed}")
    world = prepare_world(target)
    loop = world.loop
    for index, step in enumerate(schedule["path"]):
        handle = next((h for h in loop.pending_handles()
                       if h.seq == step["seq"]), None)
        if handle is None:
            raise ModelCheckError(
                f"replay step {index}: no pending handle with seq "
                f"{step['seq']} ({step.get('label', '?')!r}) -- the world "
                f"has diverged from the recorded schedule")
        loop.fire_handle(handle)
    final = fingerprint(world)
    return ReplayResult(schedule=schedule, world=world, fingerprint=final,
                        matched=final == schedule["final_fingerprint"])


def replay_file(path) -> ReplayResult:
    """Replay a ``schedule_<n>.json`` written by the trace exporter."""
    schedule = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    return replay_schedule(schedule)
