"""Liveness probes: per-state predicates judged along explored paths.

Safety invariants (``harness/checkers.py``) are judged one state at a
time; liveness needs path context. A probe computes *flags* for every
explored state and then judges each node against the flags of its
ancestors. The explorer threads both calls.

:class:`RecoveredRejoinProbe` targets the ROADMAP's evicted-while-down
edge: a member that crashed, was evicted by the member timeout, and
recovered with a stale configuration that still lists it as a member. The
per-state predicate marks a site "stuck" when it is alive, excluded from
the live leader's governing configuration, still believes it is a member,
has not learned of its eviction, and has no join request in flight --
i.e. nothing it has done or scheduled moves it toward rejoining. The
judgement flags a node when some site has been continuously stuck from
the exploration root past the step bound, or when the path closes a
cycle (identical fingerprint upstream) while stuck -- a genuine lasso:
the system can repeat that loop forever without the site ever rejoining.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.engine import Role


@dataclass(frozen=True)
class LivenessViolation:
    probe: str
    site: str
    reason: str                 # "step_bound" | "lasso"
    message: str


class RecoveredRejoinProbe:
    """A recovered member must rejoin within ``bound`` explored steps."""

    name = "recovered_rejoin"

    def __init__(self, bound: int = 10) -> None:
        if bound < 1:
            raise ValueError(f"bound must be >= 1: {bound!r}")
        self.bound = bound

    # ------------------------------------------------------------------
    # Per-state predicate
    # ------------------------------------------------------------------
    def state_flags(self, world) -> frozenset:
        """The set of sites stuck outside the configuration at this state."""
        servers = world.servers
        leader = None
        best_term = -1
        for server in servers.values():
            if not server.alive:
                continue
            engine = server.engine
            if engine.role is Role.LEADER and engine.current_term > best_term:
                leader, best_term = server, engine.current_term
        if leader is None:
            return frozenset()
        governing = set(leader.engine.configuration.members)

        joining = set()
        for handle in world.loop.pending_handles():
            args = handle._args
            if len(args) == 3 and type(args[2]).__name__ == "JoinRequest":
                joining.add(args[0])

        stuck = set()
        for name, server in servers.items():
            if not server.alive or name in governing or name in joining:
                continue
            engine = server.engine
            config = getattr(engine, "configuration", None)
            if config is None or name not in set(config.members):
                continue                      # knows it is out
            if getattr(engine, "_evicted", False):
                continue                      # eviction learned: will rejoin
            observers = set(getattr(config, "observers", ()) or ())
            observers |= set(
                getattr(leader.engine.configuration, "observers", ()) or ())
            if (name in observers
                    and not getattr(engine, "wants_membership", False)):
                continue                      # standing observer by design
            stuck.add(name)
        return frozenset(stuck)

    # ------------------------------------------------------------------
    # Path judgement
    # ------------------------------------------------------------------
    def judge(self, node, path) -> list[LivenessViolation]:
        """``path`` is root..node inclusive (explorer nodes with
        ``.flags[self.name]``, ``.fingerprint``, ``.depth``)."""
        stuck_here = node.flags.get(self.name, frozenset())
        if not stuck_here:
            return []
        violations = []
        for site in sorted(stuck_here):
            always = all(site in n.flags.get(self.name, frozenset())
                         for n in path)
            if not always:
                continue
            if node.depth >= self.bound:
                violations.append(LivenessViolation(
                    probe=self.name, site=site, reason="step_bound",
                    message=(f"{site} recovered outside the governing "
                             f"configuration and made no move to rejoin "
                             f"for {node.depth} explored steps "
                             f"(bound {self.bound})")))
                continue
            for ancestor in path[:-1]:
                if ancestor.fingerprint == node.fingerprint:
                    violations.append(LivenessViolation(
                        probe=self.name, site=site, reason="lasso",
                        message=(f"{site} is stuck outside the governing "
                                 f"configuration around a state cycle "
                                 f"(depth {ancestor.depth} -> {node.depth})"
                                 f": the run can repeat it forever "
                                 f"without {site} rejoining")))
                    break
        return violations
