"""Liveness probes: per-state predicates judged along explored paths.

Safety invariants (``harness/checkers.py``) are judged one state at a
time; liveness needs path context. A probe computes *flags* for every
explored state and then judges each node against the flags of its
ancestors. The explorer threads both calls.

All probes share one judgement (:class:`PathProbe`): a flag value that
has persisted continuously from the exploration root is a violation when
the path outruns the step bound, or when the path closes a cycle
(identical fingerprint upstream) -- a genuine lasso: the system can
repeat that loop forever without the flagged condition ever clearing.
The step bound is opt-out per probe: it is a fair expectation only where
*any* explored ordering should clear the flag within a bounded number of
steps (rejoin activity), not where an adversarial ordering can
legitimately stall progress for arbitrarily long finite prefixes
(commit progress -- only the lasso proves a forever-stall there).

:class:`RecoveredRejoinProbe` targets the ROADMAP's evicted-while-down
edge; :class:`LeaderStabilityProbe` and :class:`CommitProgressProbe` are
the "natural growth" probes from ROADMAP item 3, registered on targets
via :attr:`~repro.scenarios.mc.McTarget.probes`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.engine import Role
from repro.errors import ModelCheckError
from repro.mc.state import describe_handle


@dataclass(frozen=True)
class LivenessViolation:
    probe: str
    site: str
    reason: str                 # "step_bound" | "lasso"
    message: str


class PathProbe:
    """Shared path judgement over per-state flags (see module doc)."""

    name = "path_probe"
    #: Whether outrunning the step bound (vs only a lasso) is a violation.
    uses_step_bound = True

    def __init__(self, bound: int = 10) -> None:
        if bound < 1:
            raise ValueError(f"bound must be >= 1: {bound!r}")
        self.bound = bound

    def state_flags(self, world) -> frozenset:
        """The flag values active at this state (empty = healthy)."""
        raise NotImplementedError

    def _message(self, flag: str, reason: str, node, ancestor) -> str:
        raise NotImplementedError

    def judge(self, node, path) -> list[LivenessViolation]:
        """``path`` is root..node inclusive (explorer nodes with
        ``.flags[self.name]``, ``.fingerprint``, ``.depth``)."""
        flagged = node.flags.get(self.name, frozenset())
        if not flagged:
            return []
        violations = []
        for flag in sorted(flagged):
            always = all(flag in n.flags.get(self.name, frozenset())
                         for n in path)
            if not always:
                continue
            if self.uses_step_bound and node.depth >= self.bound:
                violations.append(LivenessViolation(
                    probe=self.name, site=flag, reason="step_bound",
                    message=self._message(flag, "step_bound", node, None)))
                continue
            for ancestor in path[:-1]:
                if ancestor.fingerprint == node.fingerprint:
                    violations.append(LivenessViolation(
                        probe=self.name, site=flag, reason="lasso",
                        message=self._message(flag, "lasso", node, ancestor)))
                    break
        return violations


class RecoveredRejoinProbe(PathProbe):
    """A recovered member must rejoin within ``bound`` explored steps.

    The per-state predicate marks a site "stuck" when it is alive,
    excluded from the live leader's governing configuration, still
    believes it is a member, has not learned of its eviction, and has no
    join request *or recovery probe traffic* in flight -- i.e. nothing it
    has done or scheduled moves it toward rejoining.
    """

    name = "recovered_rejoin"

    def state_flags(self, world) -> frozenset:
        """The set of sites stuck outside the configuration at this state."""
        servers = world.servers
        leader = None
        best_term = -1
        for server in servers.values():
            if not server.alive:
                continue
            engine = server.engine
            if engine.role is Role.LEADER and engine.current_term > best_term:
                leader, best_term = server, engine.current_term
        if leader is None:
            return frozenset()
        governing = set(leader.engine.configuration.members)

        joining = set()
        for handle in world.loop.pending_handles():
            args = handle._args
            if len(args) != 3:
                continue
            kind = type(args[2]).__name__
            if kind in ("JoinRequest", "RecoveryProbe"):
                # Both carry the moving site's name (a forwarded join's
                # sender is the forwarder, not the joiner).
                joining.add(args[2].site)
            elif kind == "RecoveryProbeReply":
                joining.add(args[1])          # the probing destination

        stuck = set()
        for name, server in servers.items():
            if not server.alive or name in governing or name in joining:
                continue
            engine = server.engine
            config = getattr(engine, "configuration", None)
            if config is None or name not in set(config.members):
                continue                      # knows it is out
            if getattr(engine, "_evicted", False):
                continue                      # eviction learned: will rejoin
            observers = set(getattr(config, "observers", ()) or ())
            observers |= set(
                getattr(leader.engine.configuration, "observers", ()) or ())
            if (name in observers
                    and not getattr(engine, "wants_membership", False)):
                continue                      # standing observer by design
            stuck.add(name)
        return frozenset(stuck)

    def _message(self, flag: str, reason: str, node, ancestor) -> str:
        if reason == "step_bound":
            return (f"{flag} recovered outside the governing "
                    f"configuration and made no move to rejoin "
                    f"for {node.depth} explored steps "
                    f"(bound {self.bound})")
        return (f"{flag} is stuck outside the governing "
                f"configuration around a state cycle "
                f"(depth {ancestor.depth} -> {node.depth})"
                f": the run can repeat it forever "
                f"without {flag} rejoining")


class LeaderStabilityProbe(PathProbe):
    """The cluster must never be *terminally* leaderless: no alive
    leader, no candidate campaigning, no election message in flight, and
    no election timer armed on any alive site. A transient leaderless
    window (normal election) never flags -- some timer or vote is always
    pending there; a flagged state has nothing scheduled that could ever
    produce a leader again."""

    name = "leader_stability"

    def state_flags(self, world) -> frozenset:
        alive = False
        for server in world.servers.values():
            if not server.alive:
                continue
            alive = True
            role = server.engine.role
            if role is Role.LEADER or role is Role.CANDIDATE:
                return frozenset()
        if not alive:
            return frozenset()
        for handle in world.loop.pending_handles():
            info = describe_handle(handle)
            if info.message_type in ("RequestVote", "RequestVoteResponse"):
                return frozenset()
            if info.kind == "timer" and "_on_election_timeout" in info.label:
                return frozenset()
        return frozenset({"cluster"})

    def _message(self, flag: str, reason: str, node, ancestor) -> str:
        if reason == "step_bound":
            return (f"the cluster stayed leaderless with no candidate, "
                    f"no election message in flight, and no election "
                    f"timer armed for {node.depth} explored steps "
                    f"(bound {self.bound})")
        return (f"the cluster is leaderless around a state cycle "
                f"(depth {ancestor.depth} -> {node.depth}) with no "
                f"pending event that could elect one")


class CommitProgressProbe(PathProbe):
    """An alive leader holding uncommitted entries must eventually
    advance its commit index. The flag carries the frozen commit point
    (``leader:index``), so any commit advance clears it; only a closed
    cycle proves a forever-stall (an adversarial but finite ordering can
    legitimately delay quorum acknowledgements, so the step bound does
    not apply -- see the module doc)."""

    name = "commit_progress"
    uses_step_bound = False

    def state_flags(self, world) -> frozenset:
        flags = set()
        for server in world.servers.values():
            if not server.alive:
                continue
            engine = server.engine
            if (engine.role is Role.LEADER
                    and engine.log.last_index > engine.commit_index):
                flags.add(f"{server.name}:{engine.commit_index}")
        return frozenset(flags)

    def _message(self, flag: str, reason: str, node, ancestor) -> str:
        leader, _, commit = flag.rpartition(":")
        return (f"leader {leader} holds uncommitted entries with its "
                f"commit index frozen at {commit} around a state cycle "
                f"(depth {ancestor.depth} -> {node.depth}): the run can "
                f"repeat it forever without committing")


#: Probe factories addressable from :attr:`McTarget.probes` by name.
PROBE_FACTORIES: dict[str, type[PathProbe]] = {
    RecoveredRejoinProbe.name: RecoveredRejoinProbe,
    LeaderStabilityProbe.name: LeaderStabilityProbe,
    CommitProgressProbe.name: CommitProgressProbe,
}


def make_probe(name: str, bound: int) -> PathProbe:
    """Instantiate a registered probe by name (for McTarget.probes)."""
    try:
        factory = PROBE_FACTORIES[name]
    except KeyError:
        raise ModelCheckError(
            f"unknown liveness probe {name!r} "
            f"(registered: {sorted(PROBE_FACTORIES)})") from None
    return factory(bound)
