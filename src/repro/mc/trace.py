"""Trace export: the explored graph and replayable violation schedules.

An exploration writes one directory:

- ``nodes.jsonl`` -- one explored state per line: id, parent, depth,
  fingerprint, the event that produced it, and the canonical state
  projection (the same structure the fingerprint hashes).
- ``edges.jsonl`` -- one transition per line: ``from``, ``to``, label.
- ``messages.jsonl`` -- the message-delivery transitions only (src, dst,
  message type), the quickest file to read when reconstructing a
  protocol exchange.
- ``violations.json`` -- every violation with its node id, depth, and
  the schedule file that replays it.
- ``schedule_<n>.json`` -- a minimal replay schedule per violation: the
  target name/seed plus the ``(when, seq)`` sequence of fired events
  from the exploration root to the violating state. ``mc/replay.py``
  re-drives it through a freshly prepared world on the normal
  :class:`~repro.sim.loop.SimLoop`.
- ``report.json`` -- run parameters and totals.

Files are deterministic for a deterministic report: line order follows
node/edge ids, and JSON keys are sorted.
"""

from __future__ import annotations

import json
import pathlib

from repro.mc.explorer import ExplorationReport

#: Replay schedules written per export; violations past the cap keep
#: their manifest entries (node id + depth are enough to re-derive a
#: schedule from nodes.jsonl) but no schedule file.
MAX_SCHEDULES = 25


def _dump(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)


def schedule_for(report: ExplorationReport, node_id: int) -> dict:
    """The minimal replay schedule reaching ``node_id``."""
    path = report.path_to(node_id)
    return {
        "target": report.target,
        "seed": report.seed,
        "strategy": report.strategy,
        "depth_limit": report.depth_limit,
        "node_id": node_id,
        "final_fingerprint": path[-1].fingerprint,
        "path": [node.event.as_dict() for node in path
                 if node.event is not None],
    }


def export_report(report: ExplorationReport, directory) -> pathlib.Path:
    """Write the full trace set; returns the directory written."""
    out = pathlib.Path(directory)
    out.mkdir(parents=True, exist_ok=True)

    # Full state projections are large; keep them only where they are
    # read back -- the root and the violating states. Other nodes keep
    # their fingerprint (enough to diff paths and spot merges).
    keep_state = {0} | {v.node_id for v in report.violations}
    with (out / "nodes.jsonl").open("w", encoding="utf-8") as stream:
        for node in report.nodes:
            stream.write(_dump({
                "id": node.node_id, "parent": node.parent_id,
                "depth": node.depth, "fingerprint": node.fingerprint,
                "revisit_of": node.revisit_of,
                "event": node.event.as_dict() if node.event else None,
                "state": node.state if node.node_id in keep_state
                else None}) + "\n")

    with (out / "edges.jsonl").open("w", encoding="utf-8") as stream:
        for src, dst, label in report.edges:
            stream.write(_dump({"from": src, "to": dst,
                                "label": label}) + "\n")

    with (out / "messages.jsonl").open("w", encoding="utf-8") as stream:
        for node in report.nodes:
            event = node.event
            if event is None or event.kind not in ("message", "local"):
                continue
            stream.write(_dump({
                "from": node.parent_id, "to": node.node_id,
                "src": event.src, "dst": event.actor,
                "type": event.message_type, "when": event.when}) + "\n")

    manifest = []
    for index, violation in enumerate(report.violations):
        entry = violation.as_dict()
        if (index < MAX_SCHEDULES
                and report.nodes[violation.node_id].fingerprint):
            name = f"schedule_{index}.json"
            schedule = schedule_for(report, violation.node_id)
            (out / name).write_text(
                json.dumps(schedule, sort_keys=True, indent=2) + "\n",
                encoding="utf-8")
            entry["schedule"] = name
        manifest.append(entry)
    (out / "violations.json").write_text(
        json.dumps(manifest, sort_keys=True, indent=2) + "\n",
        encoding="utf-8")

    (out / "report.json").write_text(json.dumps({
        "target": report.target, "seed": report.seed,
        "strategy": report.strategy, "depth_limit": report.depth_limit,
        "states_explored": report.states_explored,
        "transitions": report.transitions,
        "distinct_states": len(report.visited),
        "violations": len(report.violations),
        "truncated": report.truncated,
    }, sort_keys=True, indent=2) + "\n", encoding="utf-8")
    return out
