"""CLI driver: ``python -m repro.experiments mc ...``.

Explore::

    python -m repro.experiments mc --scenario mc_small_healthy \\
        --depth 6 --strategy dfs
    python -m repro.experiments mc --scenario mc_evicted_while_down \\
        --depth 10 --expect-violation --trace-dir mc-traces

Replay an exported schedule::

    python -m repro.experiments mc --replay mc-traces/.../schedule_0.json

Exit status is 0 when the exploration matches expectations (no
violations, or -- with ``--expect-violation`` -- at least one) and 1
otherwise, so CI can gate on it directly. Traces are exported whenever
violations are found, or always with ``--always-export``.
"""

from __future__ import annotations

import argparse
import pathlib

from repro.mc.explorer import Explorer
from repro.mc.frontier import STRATEGIES
from repro.mc.replay import replay_file
from repro.mc.trace import export_report
from repro.scenarios.mc import get_mc_target, mc_target_names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments mc",
        description="Bounded model checking over the deterministic "
                    "simulation core.")
    parser.add_argument("--scenario", metavar="NAME",
                        help="registered mc target (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list registered mc targets and exit")
    parser.add_argument("--depth", type=int, default=8,
                        help="exploration depth limit (default 8)")
    parser.add_argument("--strategy", choices=STRATEGIES, default="dfs",
                        help="frontier strategy (default dfs)")
    parser.add_argument("--max-states", type=int, default=4000,
                        help="hard cap on explored states (default 4000)")
    parser.add_argument("--max-branch", type=int, default=None,
                        help="cap the branch set per state (default: all)")
    parser.add_argument("--walks", type=int, default=8,
                        help="random-walk restarts (strategy=random)")
    parser.add_argument("--walk-seed", type=int, default=0,
                        help="random-walk seed (strategy=random)")
    parser.add_argument("--trace-dir", metavar="DIR", default="mc-traces",
                        help="where violation traces go (default "
                             "mc-traces/<scenario>)")
    parser.add_argument("--always-export", action="store_true",
                        help="export the trace even with no violations")
    parser.add_argument("--expect-violation", action="store_true",
                        help="invert the exit status: succeed only if the "
                             "exploration finds a violation (pinned-bug "
                             "targets)")
    parser.add_argument("--replay", metavar="SCHEDULE",
                        help="replay an exported schedule_<n>.json and "
                             "verify it reproduces the recorded state")
    args = parser.parse_args(argv)

    if args.list:
        for name in mc_target_names():
            target = get_mc_target(name)
            print(f"{name:24} {target.description}")
        return 0

    if args.replay:
        result = replay_file(args.replay)
        print(result.summary())
        return 0 if result.matched else 1

    if not args.scenario:
        parser.error("give --scenario, --replay, or --list")

    target = get_mc_target(args.scenario)
    explorer = Explorer(target, strategy=args.strategy, depth=args.depth,
                        max_states=args.max_states,
                        max_branch=args.max_branch,
                        walk_seed=args.walk_seed, walks=args.walks)
    report = explorer.run()
    print(report.summary())
    shown = 10
    for violation in report.violations[:shown]:
        print(f"  [{violation.kind}] node {violation.node_id} "
              f"depth {violation.depth}: {violation.message}")
    if len(report.violations) > shown:
        print(f"  ... and {len(report.violations) - shown} more "
              f"(see violations.json)")
    if report.violations or args.always_export:
        out = export_report(
            report, pathlib.Path(args.trace_dir) / args.scenario)
        print(f"[trace exported to {out}]")
    found = bool(report.violations)
    if args.expect_violation:
        return 0 if found else 1
    return 1 if found else 0
