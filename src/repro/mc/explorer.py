"""Bounded exploration of the simulation's state graph.

The explorer prepares a target world (normal deterministic schedule up
to the warmup point), then repeatedly: takes a node from the frontier,
enumerates its branch set (every deliverable message and firable timer),
forks the world once per branch, fires that one event in the fork, and
evaluates invariants on the resulting state.

Safety invariants reuse the post-run bundle from ``harness/checkers.py``
at *every* explored state; liveness probes (``mc/probes.py``) judge each
node against its ancestor path. A violated state's subtree is pruned --
its successors could only repeat the finding -- and every violation
carries its node id so the trace writer can export the exact violating
interleaving and a replayable schedule.

States are deduplicated by fingerprint (a consensus-relevant projection;
see ``mc/state.py``): an explored state whose fingerprint matched an
earlier node is recorded as a ``revisit`` edge and not expanded again
(for the systematic strategies; random walks keep going -- a walk is a
path sample, not a coverage sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvariantViolation, ReproError
from repro.harness.checkers import run_safety_checks
from repro.mc.frontier import make_strategy
from repro.mc.probes import RecoveredRejoinProbe, make_probe
from repro.mc.state import (
    EventInfo,
    World,
    branch_set,
    capture_state,
    fingerprint,
    fire_event,
    fork_world,
)
from repro.scenarios.mc import McTarget, prepare_world


@dataclass(frozen=True)
class Violation:
    kind: str                   # "safety" | "liveness" | "error"
    probe: str
    message: str
    node_id: int
    depth: int

    def as_dict(self) -> dict:
        return {"kind": self.kind, "probe": self.probe,
                "message": self.message, "node_id": self.node_id,
                "depth": self.depth}


@dataclass
class McNode:
    """One explored state. ``world`` is dropped after expansion (the
    root keeps its world so random walks can restart)."""

    node_id: int
    parent_id: int | None
    depth: int
    fingerprint: str
    event: EventInfo | None     # the event that produced this state
    state: dict
    flags: dict = field(default_factory=dict)
    revisit_of: int | None = None
    world: World | None = None


@dataclass
class ExplorationReport:
    target: str
    strategy: str
    depth_limit: int
    seed: int
    nodes: list[McNode]
    edges: list[tuple[int, int, str]]
    violations: list[Violation]
    visited: dict[str, int]     # fingerprint -> first node id
    truncated: bool

    @property
    def states_explored(self) -> int:
        return len(self.nodes)

    @property
    def transitions(self) -> int:
        return len(self.edges)

    @property
    def safety_violations(self) -> list[Violation]:
        return [v for v in self.violations if v.kind == "safety"]

    @property
    def liveness_violations(self) -> list[Violation]:
        return [v for v in self.violations if v.kind == "liveness"]

    def path_to(self, node_id: int) -> list[McNode]:
        """Nodes root..``node_id`` inclusive."""
        path = []
        current: int | None = node_id
        while current is not None:
            node = self.nodes[current]
            path.append(node)
            current = node.parent_id
        path.reverse()
        return path

    def visited_fingerprints(self) -> list[str]:
        """Every distinct explored fingerprint, sorted (the determinism
        battery compares these across runs)."""
        return sorted(self.visited)

    def summary(self) -> str:
        flavour = (f"{len(self.safety_violations)} safety / "
                   f"{len(self.liveness_violations)} liveness violations")
        extra = " [truncated]" if self.truncated else ""
        return (f"mc {self.target}: {self.states_explored} states, "
                f"{self.transitions} transitions, "
                f"{len(self.visited)} distinct, {flavour} "
                f"({self.strategy}, depth {self.depth_limit}){extra}")


class Explorer:
    """Drives one bounded exploration of an :class:`McTarget`."""

    def __init__(self, target: McTarget, strategy: str = "dfs",
                 depth: int = 8, max_states: int = 4000,
                 max_branch: int | None = None, safety: bool = True,
                 probes: list | None = None, walk_seed: int = 0,
                 walks: int = 8) -> None:
        self.target = target
        self.strategy_name = strategy
        self.depth_limit = depth
        self.max_states = max_states
        self.max_branch = max_branch
        self.safety = safety
        self.walk_seed = walk_seed
        self.walks = walks
        if probes is None:
            bound = target.liveness_bound if target.liveness_bound > 0 else 10
            probes = []
            if target.liveness_bound > 0:
                probes.append(RecoveredRejoinProbe(target.liveness_bound))
            have = {probe.name for probe in probes}
            for probe_name in getattr(target, "probes", ()):
                if probe_name not in have:
                    probes.append(make_probe(probe_name, bound))
                    have.add(probe_name)
        self.probes = probes

    # ------------------------------------------------------------------
    def run(self) -> ExplorationReport:
        strategy = make_strategy(self.strategy_name, seed=self.walk_seed,
                                 walks=self.walks)
        world = prepare_world(self.target)
        root_state = capture_state(world)
        root = McNode(node_id=0, parent_id=None, depth=0,
                      fingerprint=fingerprint(world, root_state),
                      event=None, state=root_state, world=world)
        nodes = [root]
        edges: list[tuple[int, int, str]] = []
        violations: list[Violation] = []
        visited = {root.fingerprint: 0}
        truncated = False

        self._evaluate(root, [root], violations, world)
        strategy.seed_root(root)

        while True:
            node = strategy.take()
            if node is None:
                break
            if len(nodes) >= self.max_states:
                truncated = True
                break
            if node.depth >= self.depth_limit or node.world is None:
                strategy.add([])
                continue
            children = self._expand(node, nodes, edges, violations,
                                    visited, strategy.dedup)
            if node.node_id != 0:
                node.world = None   # root stays restartable
            strategy.add(children)

        return ExplorationReport(
            target=self.target.name, strategy=self.strategy_name,
            depth_limit=self.depth_limit, seed=self.target.seed,
            nodes=nodes, edges=edges, violations=violations,
            visited=visited, truncated=truncated)

    # ------------------------------------------------------------------
    def _expand(self, node: McNode, nodes: list[McNode], edges: list,
                violations: list[Violation], visited: dict,
                dedup: bool) -> list[McNode]:
        branch = branch_set(node.world)
        if self.max_branch is not None:
            branch = branch[:self.max_branch]
        children = []
        for event in branch:
            child_world = fork_world(node.world)
            child = McNode(node_id=len(nodes), parent_id=node.node_id,
                           depth=node.depth + 1, fingerprint="",
                           event=event, state={}, world=child_world)
            nodes.append(child)
            edges.append((node.node_id, child.node_id, event.label))
            try:
                fire_event(child_world, event)
            except ReproError as exc:
                # The model itself broke under this ordering -- a finding.
                violations.append(Violation(
                    kind="error", probe="fire_event",
                    message=f"{type(exc).__name__}: {exc}",
                    node_id=child.node_id, depth=child.depth))
                child.state = {"error": str(exc)}
                child.world = None
                continue
            child.state = capture_state(child_world)
            child.fingerprint = fingerprint(child_world, child.state)

            path = self._path(nodes, child)
            flagged = self._evaluate(child, path, violations, child_world)
            if flagged:
                child.world = None  # prune: successors only repeat it
                continue

            prior = visited.get(child.fingerprint)
            if prior is None:
                visited[child.fingerprint] = child.node_id
            elif dedup:
                child.revisit_of = prior
                child.world = None
                continue
            children.append(child)
        return children

    def _evaluate(self, node: McNode, path: list[McNode],
                  violations: list[Violation], world: World) -> bool:
        """Run invariants on one state; returns True if it violated."""
        flagged = False
        if self.safety:
            try:
                run_safety_checks(world.servers.values(), world.trace)
            except InvariantViolation as exc:
                violations.append(Violation(
                    kind="safety", probe="safety_checks",
                    message=str(exc), node_id=node.node_id,
                    depth=node.depth))
                flagged = True
        for probe in self.probes:
            node.flags[probe.name] = probe.state_flags(world)
            for found in probe.judge(node, path):
                violations.append(Violation(
                    kind="liveness", probe=found.probe,
                    message=found.message, node_id=node.node_id,
                    depth=node.depth))
                flagged = True
        return flagged

    @staticmethod
    def _path(nodes: list[McNode], node: McNode) -> list[McNode]:
        path = []
        current: McNode | None = node
        while current is not None:
            path.append(current)
            current = (nodes[current.parent_id]
                       if current.parent_id is not None else None)
        path.reverse()
        return path


def explore(target: McTarget, **kwargs) -> ExplorationReport:
    """Convenience one-call exploration."""
    return Explorer(target, **kwargs).run()
