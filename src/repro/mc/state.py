"""World snapshots for the model checker: fork, capture, fingerprint.

The explorer treats one prepared simulation (loop + network + servers +
clients) as a *world* and backtracks by forking it: a deep copy whose
every internal reference -- timer callbacks, closures scheduled on the
loop, the stores inside the fabric -- lands on the copied objects, so
firing an event in the fork never perturbs the parent.

``copy.deepcopy`` treats plain functions as atomic, which would be wrong
here: the engines schedule closures (``lambda e=entry: ...`` reproposal
callbacks, fault-injector thunks) whose cells and default arguments point
straight at live servers and entries. :func:`fork_world` temporarily
installs a function copier that rebuilds closures cell by cell through
the same memo, so a forked closure mutates the forked server.

A *fingerprint* is a short digest of the consensus-relevant projection of
a world: per-server engine state (term, role, log, configuration), the
in-flight message multiset, the pending timer multiset, and the fault
state -- with wall-clock times abstracted away, so two states that differ
only in when their identical futures fire collapse into one graph node.
The projection is what makes exploration tractable; anything it omits
(latency-model internals, metrics counters) is invisible to
deduplication, a deliberate abstraction documented in the README.
"""

from __future__ import annotations

import copy
import dataclasses
import enum
import hashlib
import json
import types
from dataclasses import dataclass, field
from typing import Any

from repro.net.network import Network
from repro.sim.loop import Handle
from repro.sim.timers import PeriodicTimer, RestartableTimer

#: Memo-cache slots excluded from canonical projections (see net.sizes).
_CACHE_FIELDS = ("_est_size", "_wire_size")


# ----------------------------------------------------------------------
# The world wrapper
# ----------------------------------------------------------------------
@dataclass
class World:
    """One prepared simulation plus the spec/seed that built it."""

    system: Any                 # Cluster or CRaftDeployment
    spec: Any                   # the ScenarioSpec it was built from
    seed: int
    ctx: Any = None             # RunContext kept from preparation

    @property
    def loop(self):
        return self.system.loop

    @property
    def network(self):
        return self.system.network

    @property
    def trace(self):
        return self.system.trace

    @property
    def servers(self) -> dict:
        return self.system.servers


# ----------------------------------------------------------------------
# Forking
# ----------------------------------------------------------------------
def _copy_function(fn: types.FunctionType, memo: dict):
    """Deep-copy a function's closure cells and default arguments.

    Closure-free, default-free functions are shared (they carry no world
    state); anything else is rebuilt so its cells and defaults follow the
    memo into the forked world.
    """
    if (fn.__closure__ is None and fn.__defaults__ is None
            and fn.__kwdefaults__ is None):
        return fn
    cells = None
    if fn.__closure__ is not None:
        cells = []
        for cell in fn.__closure__:
            try:
                contents = cell.cell_contents
            except ValueError:            # empty cell
                cells.append(types.CellType())
                continue
            cells.append(types.CellType(copy.deepcopy(contents, memo)))
        cells = tuple(cells)
    clone = types.FunctionType(
        fn.__code__, fn.__globals__, fn.__name__,
        copy.deepcopy(fn.__defaults__, memo), cells)
    clone.__kwdefaults__ = copy.deepcopy(fn.__kwdefaults__, memo)
    clone.__qualname__ = fn.__qualname__
    clone.__dict__.update(fn.__dict__)
    return clone


def fork_world(world: World) -> World:
    """Deep-copy a world so events can fire in it without side effects
    on the original. The simulation is single-threaded, so temporarily
    swapping the global function copier is safe."""
    dispatch = copy._deepcopy_dispatch
    previous = dispatch.get(types.FunctionType)
    dispatch[types.FunctionType] = _copy_function
    try:
        return copy.deepcopy(world)
    finally:
        if previous is None:
            del dispatch[types.FunctionType]
        else:
            dispatch[types.FunctionType] = previous


# ----------------------------------------------------------------------
# Event classification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EventInfo:
    """One pending event, described stably enough to match across forks
    (``seq`` is the loop's scheduling sequence number, identical in every
    fork of the same world) and readably enough for trace files."""

    when: float
    seq: int
    kind: str                   # "message" | "local" | "timer" | "task"
    actor: str                  # destination site / timer owner
    label: str
    src: str = ""               # message sender (message/local events)
    message_type: str = ""      # message class name (message/local events)

    def as_dict(self) -> dict:
        return {"when": self.when, "seq": self.seq, "kind": self.kind,
                "actor": self.actor, "label": self.label, "src": self.src,
                "message_type": self.message_type}


def describe_handle(handle: Handle) -> EventInfo:
    """Classify a pending loop handle by inspecting its callback."""
    callback = handle._callback
    owner = getattr(callback, "__self__", None)
    method = getattr(callback, "__name__", "")
    if isinstance(owner, Network) and method in ("_deliver",
                                                 "_deliver_colocated"):
        src, dst, message = handle._args
        kind = "message" if method == "_deliver" else "local"
        return EventInfo(handle.when, handle.seq, kind, dst,
                         f"{type(message).__name__} {src}->{dst}",
                         src=src, message_type=type(message).__name__)
    if isinstance(owner, Network) and method in (
            "_deliver_enveloped", "_deliver_enveloped_colocated"):
        # The enveloped fast path carries the wrapper fields loose; it
        # classifies exactly as the equivalent Envelope delivery would.
        src, dst = handle._args[0], handle._args[1]
        kind = "message" if method == "_deliver_enveloped" else "local"
        return EventInfo(handle.when, handle.seq, kind, dst,
                         f"Envelope {src}->{dst}",
                         src=src, message_type="Envelope")
    if isinstance(owner, (PeriodicTimer, RestartableTimer)):
        target = owner._callback
        target_self = getattr(target, "__self__", None)
        site = getattr(target_self, "name", "") or ""
        what = getattr(target, "__name__", type(owner).__name__)
        return EventInfo(handle.when, handle.seq, "timer", str(site),
                         f"{type(owner).__name__}.{what}@{site or '?'}")
    site = getattr(owner, "name", "") or ""
    label = getattr(callback, "__qualname__", None) or repr(callback)
    return EventInfo(handle.when, handle.seq, "task", str(site),
                     f"{label}@{site or '?'}")


def branch_set(world: World) -> list[EventInfo]:
    """The explorable events at this state, in ``(when, seq)`` order."""
    return [describe_handle(h) for h in world.loop.pending_handles()]


def fire_event(world: World, event: EventInfo) -> None:
    """Fire the pending handle matching ``event`` (by sequence number)."""
    from repro.errors import ModelCheckError
    for handle in world.loop.pending_handles():
        if handle.seq == event.seq:
            world.loop.fire_handle(handle)
            return
    raise ModelCheckError(
        f"no pending handle with seq {event.seq} ({event.label!r}); "
        f"the world has diverged from the schedule")


# ----------------------------------------------------------------------
# Canonical projection + fingerprint
# ----------------------------------------------------------------------
def _canon(obj: Any) -> Any:
    """JSON-able canonical form with deterministic ordering."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return round(obj, 9)
    if isinstance(obj, enum.Enum):
        return obj.name
    if isinstance(obj, (bytes, bytearray)):
        return obj.hex()
    if isinstance(obj, dict):
        return {str(key): _canon(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canon(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((_canon(item) for item in obj), key=repr)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [type(obj).__name__,
                {f.name: _canon(getattr(obj, f.name))
                 for f in dataclasses.fields(obj)
                 if f.name not in _CACHE_FIELDS}]
    return repr(obj)


def _capture_engine(engine: Any) -> dict:
    log = engine.log
    entries = []
    for index in range(log.first_retained_index, log.last_index + 1):
        entry = log.get(index)
        if entry is None:
            entries.append([index, None])
            continue
        entries.append([index, entry.term, entry.kind.name, entry.entry_id,
                       getattr(entry, "inserted_by", None).name
                       if getattr(entry, "inserted_by", None) else None])
    config = engine.configuration
    state = {
        "term": engine.current_term,
        "role": engine.role.name,
        "leader": engine.leader_id,
        "voted_for": getattr(engine, "voted_for", None),
        "commit": engine.commit_index,
        "members": list(config.members),
        "observers": list(getattr(config, "observers", ()) or ()),
        "log": entries,
    }
    evicted = getattr(engine, "_evicted", None)
    if evicted is not None:
        state["evicted"] = evicted
    recovering = getattr(engine, "_recovering", None)
    if recovering is not None:
        state["recovering"] = recovering
    last_leader = getattr(engine, "last_leader_index", None)
    if last_leader is not None:
        state["last_leader_index"] = last_leader
    # Volatile replication-tracking state drives commit decisions and
    # retransmissions, so it distinguishes states; beat counters drive
    # member timeouts. (Wall-clock *times* stay abstracted away.)
    for attr in ("match_index", "next_index", "_beats_missed"):
        value = getattr(engine, attr, None)
        if isinstance(value, dict):
            state[attr] = {key: value[key] for key in sorted(value)}
    return state


def capture_state(world: World) -> dict:
    """The consensus-relevant projection of a world (see module doc)."""
    servers = {}
    for name, server in sorted(world.servers.items()):
        if not server.alive:
            # A dead node's volatile state is gone; its future behaviour
            # is determined by stable storage, which the surviving log
            # projection plus the recovery event already pin down.
            servers[name] = {"alive": False}
            continue
        record = {"alive": True}
        record.update(_capture_engine(server.engine))
        global_engine = getattr(server, "global_engine", None)
        if global_engine is not None:
            record["global"] = _capture_engine(global_engine)
        servers[name] = record

    messages, timers, tasks = [], [], []
    for handle in world.loop.pending_handles():
        info = describe_handle(handle)
        if info.kind in ("message", "local"):
            src, dst, message = handle._args
            messages.append([info.kind, src, dst, _canon(message)])
        elif info.kind == "timer":
            timers.append(info.label)
        else:
            tasks.append(info.label)

    network = world.network
    projection = {
        "servers": servers,
        "inflight": sorted(messages, key=repr),
        "timers": sorted(timers),
        "tasks": sorted(tasks),
        "disconnected": sorted(network._disconnected),
        "partition": _canon(network._partition_groups),
    }
    return projection


def fingerprint(world: World, state: dict | None = None) -> str:
    """Short stable digest of :func:`capture_state`'s projection."""
    if state is None:
        state = capture_state(world)
    blob = json.dumps(state, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
