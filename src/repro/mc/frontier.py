"""Frontier strategies: the order in which the explorer visits states.

A strategy holds explorer nodes and decides which to expand next. The
explorer calls ``add(children)`` after every expansion (possibly with an
empty list) and ``take()`` to get the next node; a strategy returning
``None`` ends the exploration.

- :class:`DepthFirst` -- depth-limited DFS. Children are pushed so the
  earliest-due event is explored first: the leftmost path is the one the
  normal scheduler would have taken, and adversarial reorderings branch
  off it.
- :class:`BreadthFirst` -- level order; finds minimal-length violating
  paths at the cost of holding a level of forked worlds.
- :class:`RandomWalk` -- seeded random walks root-to-depth-limit,
  restarted ``walks`` times; probes deep interleavings cheaply without
  the frontier memory of BFS. Deterministic for a fixed seed.
"""

from __future__ import annotations

import random
from collections import deque

from repro.errors import ModelCheckError

STRATEGIES = ("dfs", "bfs", "random")


class DepthFirst:
    name = "dfs"
    #: Whether the explorer should stop expanding already-visited states.
    dedup = True

    def __init__(self) -> None:
        self._stack: list = []

    def seed_root(self, root) -> None:
        self._stack.append(root)

    def add(self, nodes: list) -> None:
        self._stack.extend(reversed(nodes))

    def take(self):
        return self._stack.pop() if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)


class BreadthFirst:
    name = "bfs"
    dedup = True

    def __init__(self) -> None:
        self._queue: deque = deque()

    def seed_root(self, root) -> None:
        self._queue.append(root)

    def add(self, nodes: list) -> None:
        self._queue.extend(nodes)

    def take(self):
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class RandomWalk:
    """One random branch per step; restart from the root between walks.

    Revisited states are *not* pruned (a walk is a path sample, not a
    coverage sweep), so ``dedup`` is off and the explorer re-expands the
    root for every restart -- forks are cheap relative to exploration.
    """

    name = "random"
    dedup = False

    def __init__(self, seed: int = 0, walks: int = 8) -> None:
        self._rng = random.Random(seed)
        self._walks_left = walks
        self._root = None
        self._pending: list = []

    def seed_root(self, root) -> None:
        self._root = root
        self._walks_left -= 1  # seeding starts the first walk

    def add(self, nodes: list) -> None:
        self._pending = list(nodes)

    def take(self):
        if self._pending:
            choice = self._rng.choice(self._pending)
            self._pending = []
            return choice
        if self._walks_left > 0:
            self._walks_left -= 1
            return self._root
        return None

    def __len__(self) -> int:
        return len(self._pending) + self._walks_left


def make_strategy(name: str, seed: int = 0, walks: int = 8):
    if name == "dfs":
        return DepthFirst()
    if name == "bfs":
        return BreadthFirst()
    if name == "random":
        return RandomWalk(seed=seed, walks=walks)
    raise ModelCheckError(
        f"unknown frontier strategy {name!r} (choose from {STRATEGIES})")
