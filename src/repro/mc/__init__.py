"""Bounded model checking over the deterministic simulation core.

The sim is deterministic per seed, which makes every reachable state a
function of the event *order* alone -- so the checker treats one prepared
simulation as an explorable state graph: at each state the branch set is
every deliverable message and firable timer; firing one in a forked world
yields a successor. ``Explorer`` walks that graph under a depth bound
with interchangeable frontier strategies, re-running the safety-invariant
bundle at every state and judging liveness probes along each path;
failed paths export node/edge/message traces plus a replayable schedule.

See the README's "Model checking" section for CLI usage.
"""

from repro.mc.explorer import (
    ExplorationReport,
    Explorer,
    McNode,
    Violation,
    explore,
)
from repro.mc.frontier import STRATEGIES, make_strategy
from repro.mc.probes import RecoveredRejoinProbe
from repro.mc.replay import ReplayResult, replay_file, replay_schedule
from repro.mc.state import (
    World,
    branch_set,
    capture_state,
    describe_handle,
    fingerprint,
    fire_event,
    fork_world,
)
from repro.mc.trace import export_report, schedule_for

__all__ = [
    "ExplorationReport", "Explorer", "McNode", "Violation", "explore",
    "STRATEGIES", "make_strategy", "RecoveredRejoinProbe",
    "ReplayResult", "replay_file", "replay_schedule",
    "World", "branch_set", "capture_state", "describe_handle",
    "fingerprint", "fire_event", "fork_world",
    "export_report", "schedule_for",
]
