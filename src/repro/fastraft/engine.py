"""FastRaftEngine: assembly of the Fast Raft behaviour mixins.

State layout follows the paper's Section IV-A: persistent ``currentTerm``,
``votedFor``, ``log`` (via :class:`BaseEngine` and the stable store) plus
``lastLeaderIndex`` (derived from provenance marks on recovery); volatile
leader state ``nextIndex``, ``matchIndex``, ``fastMatchIndex``, and
``possibleEntries``.

The ``_gate_insert`` hook is the C-Raft extension point: every log insert
funnels through it, and the inter-cluster engine overrides it to first run
intra-cluster consensus on a global-state entry (Section V-B).
"""

from __future__ import annotations

from typing import Any, Callable

from repro import perf
from repro.consensus.config import Configuration
from repro.consensus.engine import BaseEngine, EngineContext, Role
from repro.consensus.entry import EntryKind, InsertedBy, LogEntry
from repro.consensus.messages import ProposeEntry, VoteEntry
from repro.net.sizes import estimate_size
from repro.fastraft.decision import DecisionMixin
from repro.fastraft.election import ElectionMixin
from repro.fastraft.membership import MembershipMixin
from repro.fastraft.proposals import ProposalMixin
from repro.fastraft.replication import ReplicationMixin
from repro.fastraft.votes import PossibleEntries
from repro.sim.timers import PeriodicTimer


class FastRaftEngine(ProposalMixin, DecisionMixin, ReplicationMixin,
                     ElectionMixin, MembershipMixin, BaseEngine):
    """Fast Raft over an injected transport."""

    protocol_name = "fastraft"

    #: True when ``_gate_insert`` completes synchronously (plain Fast
    #: Raft and the C-Raft local engine). The fused proposal handler
    #: relies on it to insert inline; the C-Raft global engine defers
    #: inserts behind a round of local consensus and sets it False.
    _SYNC_GATE = True

    def __init__(self, ctx: EngineContext,
                 bootstrap_config: Configuration) -> None:
        super().__init__(ctx, bootstrap_config)
        # Volatile leader state (Section IV-A).
        self.possible_entries = PossibleEntries()
        self.next_index: dict[str, int] = {}
        self.match_index: dict[str, int] = {}
        self.fast_match_index: dict[str, int] = {}
        # lastLeaderIndex is persistent in the paper; here it is derived
        # from the (persistent) provenance marks on every recovery. A
        # compacted prefix holds only committed -- hence decided -- entries,
        # so the compaction point floors it.
        self.last_leader_index = max(
            self.log.last_with_provenance(InsertedBy.LEADER),
            self.log.snapshot_index)
        # Timers: AppendEntries dispatch and the decision procedure run on
        # separate cadences (see TimingConfig / DESIGN.md calibration).
        self._heartbeat = PeriodicTimer(ctx.loop,
                                        self.timing.heartbeat_interval,
                                        self._broadcast_append_entries)
        self._decision_timer = PeriodicTimer(
            ctx.loop, self.timing.effective_decision_interval,
            self._decision_tick)
        # Failure detection / liveness bookkeeping.
        self._beats_missed: dict[str, int] = {}
        self._gap_since: dict[int, float] = {}
        self._gating_indices: set[int] = set()
        self._last_decision_outcome = "blocked"
        # Membership bookkeeping.
        self._catchup_targets: set[str] = set()
        self._pending_config: dict[str, Any] | None = None
        self._config_queue: list[dict[str, Any]] = []
        self._awaiting_commit: dict[str, dict[str, Any]] = {}
        self._recovery_votes: dict[str, tuple] = {}
        self._internal_seq = 0
        self._evicted = False
        # A standing observer keeps replicating without asking to join;
        # the host flips this on when the site actually wants a voting
        # seat (C-Raft: its local leadership demands global membership).
        self.wants_membership = False
        # Liveness hint carried on this site's JoinRequests: the member
        # whose seat it takes over (C-Raft: the crashed previous cluster
        # leader). While that member's exclusion is pending, this
        # caught-up joiner counts toward the exclusion quorum.
        self.join_replaces: str | None = None
        self._last_join_request = float("-inf")
        # Lingering step-down after committing our own exclusion or
        # demotion (see MembershipMixin._begin_leader_stepdown).
        self._stepdown_index: int | None = None
        self._stepdown_deadline = 0.0
        self._config_version_floor = self._max_known_config_version()
        # Proposals this site originated that have not committed yet.
        # When a commit reveals that one lost its slot to a concurrent
        # proposal, it is re-proposed immediately instead of waiting for
        # the proposer's timeout -- essential for throughput when many
        # sites propose at once (C-Raft's global level, Fig. 5).
        self._outstanding_proposals: dict[str, LogEntry] = {}
        self._reclaims_scheduled: set[str] = set()

    # ------------------------------------------------------------------
    # Timers and role transitions
    # ------------------------------------------------------------------
    def _decision_tick(self) -> None:
        self._run_decision()
        self._retry_pending_config()
        self._maybe_complete_stepdown()

    def _stop_role_timers(self) -> None:
        self._heartbeat.stop()
        self._decision_timer.stop()
        self.possible_entries.clear()
        self.next_index.clear()
        self.match_index.clear()
        self.fast_match_index.clear()
        self._beats_missed.clear()
        self._gap_since.clear()
        self._gating_indices.clear()
        self._catchup_targets.clear()
        self._extra_allowed.clear()
        self._pending_config = None
        self._config_queue.clear()
        self._awaiting_commit.clear()
        self._stepdown_index = None

    # ------------------------------------------------------------------
    # Log insertion (single funnel, C-Raft's extension point)
    # ------------------------------------------------------------------
    def _insert_into_log(self, index: int, entry: LogEntry) -> int:
        """Insert with finality guards; returns the landed entry's
        structural size (0 when the guards dropped it).

        Callers charge the durable-write counter per *batch* (one fsync
        per message, matching classic Raft's accounting), so this method
        only reports the bytes a touch owes -- the size comes straight
        from the entry's ``_est_size`` memo when it is already measured,
        so the absorb loop never re-walks an entry payload.

        Finality guards: with the synchronous insert path these are
        unreachable (handlers validate slots as they insert), but
        C-Raft's insert gate defers the write behind a round of local
        consensus, and the slot can change in the meantime:
        (1) committed slots are immutable;
        (2) a self-approved insert never displaces a leader-approved
            entry (only the leader makes safe decisions, Section IV-B).
        """
        previous = self.log.get(index)
        if index <= self.commit_index:
            self._trace("insert.stale_dropped", index=index,
                        entry_id=entry.entry_id)
            return 0
        if (previous is not None
                and previous.inserted_by is InsertedBy.LEADER
                and entry.inserted_by is InsertedBy.SELF):
            self._trace("insert.superseded_dropped", index=index,
                        entry_id=entry.entry_id)
            return 0
        self.log.insert(index, entry)
        if entry.inserted_by is InsertedBy.LEADER:
            self.last_leader_index = max(self.last_leader_index, index)
        if (entry.kind is EntryKind.CONFIG
                or (previous is not None
                    and previous.kind is EntryKind.CONFIG)):
            self._refresh_configuration()
        size = entry._est_size
        return size if size is not None else estimate_size(entry)

    def _insert_batch(self, pairs: list[tuple[int, LogEntry]]) -> None:
        """Insert ``pairs`` and charge one durable log write if any
        landed (one fsync per message batch, weighted by what landed;
        the sizes accumulate during the absorb pass itself)."""
        inserted_bytes = 0
        for index, entry in pairs:
            inserted_bytes += self._insert_into_log(index, entry)
        if inserted_bytes:
            self.ctx.store.touch("log", size=inserted_bytes)

    def _gate_insert(self, pairs: list[tuple[int, LogEntry]],
                     then: Callable[[], None]) -> None:
        """Insert ``pairs`` then run ``then``. Plain Fast Raft inserts
        immediately; the C-Raft global engine overrides this to interpose
        intra-cluster consensus (Section V-B)."""
        self._insert_batch(pairs)
        then()

    # ------------------------------------------------------------------
    # Commit side effects
    # ------------------------------------------------------------------
    def _on_entry_committed(self, index: int, entry: LogEntry) -> None:
        if self.role is Role.LEADER:
            if entry.origin != self.name:
                self._notify_origin(entry, index)
            if entry.kind is EntryKind.CONFIG:
                self._finish_config_change(entry)
        self._outstanding_proposals.pop(entry.entry_id, None)
        self._reclaim_lost_proposals()

    def _reclaim_lost_proposals(self) -> None:
        """Re-propose any of our outstanding entries whose every slot is
        now below the commit index (a different entry won the race).

        With ``repropose_jitter`` set, losers back off by a random delay:
        simultaneous reclaim waves would otherwise all target the same
        next index and collide again.
        """
        if not self._outstanding_proposals and not perf.LEGACY_CORE:
            return  # the common case: nothing of ours is in flight
        jitter = self.timing.repropose_jitter
        for entry_id, entry in list(self._outstanding_proposals.items()):
            slots = self.log.indices_of(entry_id)
            if any(i > self.commit_index for i in slots):
                continue  # still in play at a live index
            if jitter <= 0:
                self.propose(entry)
            elif entry_id not in self._reclaims_scheduled:
                self._reclaims_scheduled.add(entry_id)
                delay = self.ctx.rng.uniform(0.0, jitter)
                self.ctx.loop.call_later(
                    delay, lambda e=entry: self._delayed_repropose(e))

    def _delayed_repropose(self, entry: LogEntry) -> None:
        self._reclaims_scheduled.discard(entry.entry_id)
        if self._stopped or entry.entry_id not in self._outstanding_proposals:
            return
        self.propose(entry)

    def _after_snapshot_install(self, snapshot) -> None:
        """The snapshot covers a committed -- hence decided -- prefix:
        floor lastLeaderIndex there and drop votes it made stale."""
        self.last_leader_index = max(self.last_leader_index,
                                     snapshot.last_included_index)
        self.possible_entries.drop_through(self.commit_index)
        if self.name in self.configuration:
            # Current-term replication from the leader supersedes any
            # earlier eviction notice (same rule as AppendEntries).
            self._evicted = False

    def _on_configuration_changed(self) -> None:
        if self.role is not Role.LEADER:
            return
        start = self.commit_index + 1
        for site in self.configuration.replicas:
            self.next_index.setdefault(site, start)
            self.match_index.setdefault(site, 0)
            self.fast_match_index.setdefault(site, 0)

    # ------------------------------------------------------------------
    # Dispatch additions
    # ------------------------------------------------------------------
    def _build_dispatch(self):
        dispatch = super()._build_dispatch()
        dispatch[ProposeEntry] = self._handle_propose_entry
        dispatch[VoteEntry] = self._handle_vote_entry
        return dispatch
