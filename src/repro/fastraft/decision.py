"""The leader's periodic decision procedure (paper Section IV-B,
"Periodically run by the leader").

While the index just above ``commitIndex`` has votes from a classic
quorum, the leader decides it: insert the plurality entry leader-approved,
update ``fastMatchIndex`` for the matching voters, and fast-commit when a
fast quorum matches and the entry carries the current term. If the fast
quorum is missing, the decided entry rides the classic track (ordinary
AppendEntries replication) and the loop stops -- the paper gates the fast
track on "the last index was committed".

Two liveness additions the paper leaves implicit (documented in
DESIGN.md):

- **duplicate suppression** -- if the plurality winner is already
  committed or already decided at another index (a retried client request
  landed twice), the leader inserts a no-op instead; if the winner is the
  null bucket, likewise a no-op;
- **gap fill** -- when the pending index stays undecidable for
  ``leader_fill_timeout`` (votes lost, or a proposal that no quorum ever
  saw), the leader re-proposes the best-known candidate (or a no-op) at
  that index through the normal proposal path. Acting as a proposer keeps
  the safety argument intact: the decision still requires a classic
  quorum of votes, so a fast-quorum-chosen entry still wins any plurality.
"""

from __future__ import annotations

from repro import perf
from repro.consensus.engine import Role
from repro.consensus.entry import EntryKind, InsertedBy, LogEntry, make_noop
from repro.consensus.messages import ProposeEntry
from repro.fastraft.votes import VoteRecord


class DecisionMixin:
    """Decision-procedure behaviour of :class:`FastRaftEngine`."""

    def _run_decision(self) -> None:
        """Decide every index (in order) that has a classic quorum of
        votes. Deciding runs ahead of committing: contested indices that
        miss their fast quorum are still inserted leader-approved, so one
        AppendEntries round replicates -- and its acks commit -- the whole
        decided range (this is what makes ``lastLeaderIndex`` a range).
        Only the fast-track *commit* requires "the last index was
        committed"."""
        if self.role is not Role.LEADER:
            return
        k = self.commit_index + 1
        while True:
            if k in self._gating_indices:
                break  # a C-Raft insert gate is in flight for k
            outcome = self._decide_index(k)
            if outcome in ("blocked", "pending"):
                break
            k = max(k + 1, self.commit_index + 1)

    def _decide_index(self, k: int) -> str:
        """Try to decide index ``k``.

        Returns ``"committed"`` (fast track succeeded), ``"classic"``
        (decided but waiting on classic-track replication), ``"pending"``
        (insert gate in flight), or ``"blocked"`` (no quorum of votes).
        """
        existing = self.log.get(k)
        if existing is not None and existing.inserted_by is InsertedBy.LEADER:
            # Already decided (this pass or an inherited entry); only the
            # fast-quorum check can change anything now.
            return self._after_decision(k)
        voters = self.possible_entries.voters_at(k)
        if not self._decision_quorum_met(k, voters):
            self._maybe_gap_fill(k)
            return "blocked"
        self._gap_since.pop(k, None)
        chosen = self._choose_entry(k)
        stamped = chosen.with_mark(self.current_term, InsertedBy.LEADER)
        self.possible_entries.null_out(chosen.entry_id, except_index=k)
        if self._tracing:
            self._trace("decision", index=k, entry_id=chosen.entry_id,
                        votes=len(voters))
        self._gating_indices.add(k)
        self._gate_insert([(k, stamped)],
                          lambda: self._decision_insert_done(k))
        if k in self._gating_indices:
            return "pending"
        return self._last_decision_outcome

    def _decision_quorum_met(self, k: int, voters: set[str]) -> bool:
        """Vote quorum for deciding index ``k``.

        Ordinary entries need the classic quorum of members, full stop.
        When that fails and the plurality winner at ``k`` is a CONFIG
        entry, the per-entry override applies: tiebreaker observers
        (voting set <= 2) and a caught-up joiner replacing the member
        being excluded expand the electorate, and a strict majority of
        the expanded electorate -- which must include this leader's own
        vote -- decides. This is what un-wedges a 2-voter configuration
        after one voter dies (see ROADMAP "Global-membership deadlock").
        """
        if self.configuration.is_classic_quorum(voters):
            return True
        for record in self.possible_entries.candidates(k):
            # Only the plurality winner matters: it is what _choose_entry
            # will pick if the quorum passes.
            if record.is_null or record.entry.kind is not EntryKind.CONFIG:
                break
            if self.name not in voters:
                break  # an expanded electorate never decides leaderless
            extra = self._replacement_joiners_for(record.entry)
            if self.configuration.config_entry_quorum(voters, extra):
                self._trace("decision.tiebreak", index=k,
                            entry_id=record.entry.entry_id,
                            votes=sorted(voters), extra=sorted(extra))
                return True
            break
        return False

    def _decision_insert_done(self, k: int) -> None:
        """Continuation once the decided entry reached the log (immediately
        for plain Fast Raft; after local consensus for C-Raft)."""
        self._gating_indices.discard(k)
        self._last_decision_outcome = self._after_decision(k)
        # Re-enter the loop on a fresh stack: for synchronous gates the
        # caller is still inside _run_decision and continues by itself;
        # for asynchronous (C-Raft) gates this wakes the loop back up.
        self.ctx.loop.call_soon(self._run_decision)

    def _after_decision(self, k: int) -> str:
        """Steps (c)-(e): update fastMatchIndex, try the fast commit.

        The current core defers the fast-quorum member count until the
        fast track is actually reachable (``k`` right above the commit
        index, current-term entry): for a decided-ahead range riding the
        classic track, the count's outcome is discarded, so skipping it
        drops an O(members) sweep per decided index with no observable
        difference. The legacy core keeps the unconditional count.
        """
        if perf.LEGACY_CORE:
            return self._legacy_after_decision(k)
        entry = self.log.get(k)
        if entry is None:
            return "blocked"
        fast_match = self.fast_match_index
        record = self.possible_entries.record_for(k, entry.entry_id)
        if record is not None:
            for voter in record.voters:
                current = fast_match.get(voter)
                if current is not None and current < k:
                    fast_match[voter] = k
        name = self.name
        if fast_match.get(name, 0) < k:
            fast_match[name] = k
        if k != self.commit_index + 1 or entry.term != self.current_term:
            return "classic"
        config = self.configuration
        fast_match_get = fast_match.get
        matches = 0
        for member in config.members:
            if fast_match_get(member, 0) >= k:
                matches += 1
        if config.is_fast_quorum(matches):
            # "The fast track can only be taken here if the last index was
            # committed" -- otherwise commitIndex would cover earlier,
            # undecided indices.
            if self._tracing:
                self._trace("fast_commit", index=k, entry_id=entry.entry_id,
                            matches=matches)
            self._advance_commit_index(k)
            self.possible_entries.drop_through(k)
            return "committed"
        return "classic"

    def _legacy_after_decision(self, k: int) -> str:
        """Pre-restructure steps (c)-(e), kept selectable for bench_perf."""
        entry = self.log.get(k)
        if entry is None:
            return "blocked"
        record = self.possible_entries.record_for(k, entry.entry_id)
        if record is not None:
            for voter in record.voters:
                if voter in self.fast_match_index:
                    self.fast_match_index[voter] = max(
                        self.fast_match_index[voter], k)
        self.fast_match_index[self.name] = max(
            self.fast_match_index.get(self.name, 0), k)
        matches = sum(1 for m in self.configuration.members
                      if self.fast_match_index.get(m, 0) >= k)
        if (k == self.commit_index + 1
                and self.configuration.is_fast_quorum(matches)
                and entry.term == self.current_term):
            if self._tracing:
                self._trace("fast_commit", index=k, entry_id=entry.entry_id,
                            matches=matches)
            self._advance_commit_index(k)
            self.possible_entries.drop_through(k)
            return "committed"
        return "classic"

    # ------------------------------------------------------------------
    # Choice and duplicates
    # ------------------------------------------------------------------
    def _choose_entry(self, k: int) -> LogEntry:
        """Plurality winner at ``k``, or a no-op when null votes win.

        The plurality winner is inserted even if the same entry id already
        committed at another index (a client retry landed twice): skipping
        it could overwrite an entry a fast quorum chose at ``k``, which is
        exactly what Lemma 2 forbids. Double commits of one entry id are
        neutralized at apply time (exactly-once in the SMR layer).
        """
        for record in self.possible_entries.candidates(k):
            if record.is_null:
                break
            return record.entry
        return make_noop(self.name, self.current_term,
                         inserted_by=InsertedBy.SELF)

    def _is_duplicate_elsewhere(self, record: VoteRecord, k: int) -> bool:
        """Is this candidate's id already settled at some other index?
        (Used only to pick *gap-fill re-proposals*, never decisions.)"""
        entry_id = record.entry.entry_id
        if self.log.committed_index_of(entry_id, self.commit_index) is not None:
            return True
        return any(
            self.log.get(i) is not None
            and self.log.get(i).inserted_by is InsertedBy.LEADER
            for i in self.log.indices_of(entry_id) if i != k)

    # ------------------------------------------------------------------
    # Gap fill
    # ------------------------------------------------------------------
    def _maybe_gap_fill(self, k: int) -> None:
        """Re-propose at a stuck pending index (liveness only)."""
        work_beyond = (self.log.last_index > k
                       or any(i > k for i in self.possible_entries.indices()))
        has_some_votes = self.possible_entries.has_votes(k)
        if not (work_beyond or has_some_votes):
            self._gap_since.pop(k, None)
            return
        first_seen = self._gap_since.setdefault(k, self.now())
        if self.now() - first_seen < self.timing.leader_fill_timeout:
            return
        self._gap_since[k] = self.now()  # back off before the next fill
        candidates = self.possible_entries.candidates(k)
        refill: LogEntry | None = None
        for record in candidates:
            if not record.is_null and not self._is_duplicate_elsewhere(record, k):
                refill = record.entry
                break
        if refill is None:
            refill = make_noop(self.name, self.current_term,
                               inserted_by=InsertedBy.SELF)
        if self._tracing:
            self._trace("gap_fill", index=k, entry_id=refill.entry_id)
        message = ProposeEntry(index=k, entry=refill)
        for site in self._proposal_targets():
            self._send(site, message)
