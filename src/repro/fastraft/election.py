"""Leader election with Fast Raft's recovery algorithm (Section IV-C).

Two changes from classic Raft:

- The up-to-date comparison considers only *leader-approved* entries
  ("self-approved entries cannot be considered in this check, as proposers
  can send an arbitrarily large number of proposals to a follower that
  ultimately may not have been agreed upon").
- Granting voters attach all their self-approved entries; the winner
  copies them into ``possibleEntries`` so the normal decision procedure
  re-derives any value a previous leader may have fast-committed (a fast
  quorum's entry holds the plurality in every classic quorum of votes, so
  the new leader makes the same choice -- Lemma 2).

One further implementation choice, documented in DESIGN.md: the new leader
*restamps* its uncommitted leader-approved suffix with its own term and
re-replicates it. Identical data, new term -- the same mechanism
Viewstamped Replication uses on view change -- which lets inherited
entries commit under the current-term commit guard without a filler no-op.
"""

from __future__ import annotations

from repro.consensus.entry import InsertedBy
from repro.consensus.messages import (
    IndexedEntries,
    RequestVote,
    RequestVoteResponse,
)


class ElectionMixin:
    """Election behaviour of :class:`FastRaftEngine`."""

    def _make_vote_request(self) -> RequestVote:
        self._recovery_votes = {}
        last_leader = self.last_leader_index
        last_term = self.log.term_at(last_leader) if last_leader else 0
        return RequestVote(term=self.current_term, candidate_id=self.name,
                           last_log_index=last_leader,
                           last_log_term=last_term)

    def _candidate_up_to_date(self, msg: RequestVote) -> bool:
        """Compare leader-approved positions only."""
        my_last = self.last_leader_index
        my_term = self.log.term_at(my_last) if my_last else 0
        if msg.last_log_term != my_term:
            return msg.last_log_term > my_term
        return msg.last_log_index >= my_last

    def _make_vote_response(self, granted: bool) -> RequestVoteResponse:
        self_approved: IndexedEntries = ()
        if granted:
            self_approved = tuple(
                (index, entry)
                for index, entry in self.log.entries_with_provenance(
                    InsertedBy.SELF)
                if index > self.commit_index)
        return RequestVoteResponse(term=self.current_term,
                                   vote_granted=granted, voter=self.name,
                                   self_approved=self_approved)

    def _absorb_vote_response(self, msg: RequestVoteResponse) -> None:
        self._recovery_votes[msg.voter] = msg.self_approved

    def _init_leader_state(self) -> None:
        self._evicted = False  # a winner is a member by definition
        start = self.commit_index + 1  # paper: last committed entry + 1
        replicas = self.configuration.replicas
        self.next_index = {m: start for m in replicas}
        self.match_index = {m: 0 for m in replicas}
        self.fast_match_index = {m: 0 for m in replicas}
        self.possible_entries.clear()
        self._beats_missed = {}
        self._gap_since = {}
        self._restamp_inherited_suffix()
        self._copy_recovery_votes()
        self._run_decision()
        self._broadcast_append_entries()
        self._heartbeat.start()
        self._decision_timer.start()

    def _restamp_inherited_suffix(self) -> None:
        """Restamp uncommitted leader-approved entries with the new term so
        they can commit under the current-term guard (data unchanged)."""
        restamped = []
        for k in range(self.commit_index + 1, self.last_leader_index + 1):
            entry = self.log.get(k)
            if entry is not None and entry.inserted_by is InsertedBy.LEADER:
                restamped.append(
                    (k, entry.with_mark(self.current_term, InsertedBy.LEADER)))
        self._insert_batch(restamped)

    def _copy_recovery_votes(self) -> None:
        """"Copy all self-approved entries received to possibleEntries"."""
        recovered = dict(self._recovery_votes)
        recovered[self.name] = tuple(
            (index, entry)
            for index, entry in self.log.entries_with_provenance(
                InsertedBy.SELF)
            if index > self.commit_index)
        count = 0
        for voter, entries in recovered.items():
            for index, entry in entries:
                if index <= self.commit_index:
                    continue
                self.possible_entries.add_vote(index, entry, voter)
                count += 1
        if count:
            self._trace("recovery", entries=count,
                        voters=sorted(recovered))
        self._recovery_votes = {}
