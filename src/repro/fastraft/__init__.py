"""Fast Raft: the paper's first contribution (Section IV).

Fast Raft reduces the commit path from three leader-coordinated message
rounds to two by letting proposers broadcast entries directly to all
sites, which insert them *self-approved* and vote to the leader. A fast
quorum of ``ceil(3M/4)`` matching votes commits immediately (fast track);
otherwise the leader picks the plurality entry and falls back to ordinary
Raft replication (classic track). Elections compare only leader-approved
entries and run a recovery pass over resent self-approved entries.
Membership is self-announced (join/leave requests) and the leader detects
silent leaves through a member timeout.

The engine is assembled from focused mixins:

- :mod:`repro.fastraft.proposals` -- proposal broadcast and vote intake,
- :mod:`repro.fastraft.decision` -- the leader's periodic decision
  procedure (fast-track commits, classic-track handoff, gap fill),
- :mod:`repro.fastraft.replication` -- AppendEntries with overwrite
  semantics and silent-leave detection,
- :mod:`repro.fastraft.election` -- modified up-to-date rule and the
  post-election recovery algorithm,
- :mod:`repro.fastraft.membership` -- join/leave protocol.
"""

from repro.fastraft.engine import FastRaftEngine
from repro.fastraft.server import FastRaftServer
from repro.fastraft.votes import PossibleEntries, VoteRecord

__all__ = ["FastRaftEngine", "FastRaftServer", "PossibleEntries",
           "VoteRecord"]
