"""Classic-track replication and silent-leave detection.

The leader periodically sends AppendEntries covering its leader-approved
region (``nextIndex[i] .. lastLeaderIndex``). Followers *overwrite*
conflicting slots instead of truncating: self-approved entries are
tentative, and only the leader has made safe decisions about them
(Section IV-B, "When a follower receives AppendEntries message", step 4).

The heartbeat doubles as the paper's silent-leave failure detector: a
member that misses ``member_timeout_beats`` consecutive response windows
is proposed out of the configuration.
"""

from __future__ import annotations

from repro import perf
from repro.consensus.engine import Role
from repro.consensus.entry import InsertedBy
from repro.consensus.messages import AppendEntries, AppendEntriesResponse


class ReplicationMixin:
    """Replication behaviour of :class:`FastRaftEngine`."""

    # ------------------------------------------------------------------
    # Leader side
    # ------------------------------------------------------------------
    def _append_targets(self) -> list[str]:
        targets = list(self.configuration.replicas_without(self.name))
        targets.extend(sorted(self._catchup_targets))
        # An observer under pre-join catch-up would appear twice.
        return list(dict.fromkeys(targets))

    def _broadcast_append_entries(self) -> None:
        """One leader beat covering every replication target.

        As in classic Raft's beat, followers sharing a nextIndex get the
        *same* immutable AppendEntries object (one entries slice and one
        size memo per distinct nextIndex per round, instead of one per
        follower); the legacy-core switch restores the per-follower
        construction for benchmarking. Send order is unchanged, so the
        fabric's RNG stream is untouched.
        """
        if self.role is not Role.LEADER:
            return
        self._tick_member_timeouts()
        round_cache = None if perf.LEGACY_CORE else {}
        for target in self._append_targets():
            self._send_append_entries(target, round_cache)

    def _send_append_entries(self, target: str,
                             round_cache: dict | None = None) -> None:
        next_index = self.next_index.get(target, self.last_leader_index + 1)
        if next_index <= self.log.snapshot_index:
            # The needed prefix is compacted away: ship the snapshot
            # instead of replaying the log.
            self._send_install_snapshot(target)
            return
        message = (round_cache.get(next_index)
                   if round_cache is not None else None)
        if message is None:
            prev_index = next_index - 1
            prev_term = self.log.term_at(prev_index) if prev_index > 0 else 0
            hi = min(self.last_leader_index,
                     prev_index + self.timing.max_append_batch)
            entries = tuple(self.log.entries_between(next_index, hi))
            if self._lease_enabled:
                sent_at = self.now()
                lease_until = self._lease_expiry(sent_at)
            else:
                sent_at = lease_until = 0.0
            message = AppendEntries(
                term=self.current_term, leader_id=self.name,
                prev_log_index=prev_index, prev_log_term=prev_term,
                entries=entries, leader_commit=self.commit_index,
                global_commit=self._global_commit_piggyback(),
                sent_at=sent_at, lease_until=lease_until)
            if round_cache is not None:
                round_cache[next_index] = message
        self._send(target, message)

    def _global_commit_piggyback(self) -> int:
        """C-Raft's local level overrides this; plain Fast Raft sends 0."""
        return 0

    def _note_follower_alive(self, follower: str) -> None:
        self._beats_missed[follower] = 0

    def _handle_append_entries_response(self, msg: AppendEntriesResponse,
                                        sender: str) -> None:
        self._observe_term(msg.term)
        if self.role is not Role.LEADER or msg.term < self.current_term:
            return
        follower = msg.follower
        self._note_follower_alive(follower)
        # A responding follower's needs are freshly known: a suppressed
        # snapshot re-ship (if any) may go out immediately. (A stale
        # reply racing an in-flight ship can cause one redundant bulk
        # transfer; installs are idempotent, so this is accepted cost.)
        self._snapshot_inflight.pop(follower, None)
        if msg.success:
            if msg.beat_sent_at:
                self._record_lease_ack(follower, msg.beat_sent_at)
            self.match_index[follower] = max(
                self.match_index.get(follower, 0), msg.match_index)
            self.next_index[follower] = max(
                self.next_index.get(follower, 1),
                self.match_index[follower] + 1)
            self._classic_track_commit()
            self._check_catchup_complete(follower)
            self._maybe_complete_stepdown()
        else:
            current = self.next_index.get(follower,
                                          self.last_leader_index + 1)
            self.next_index[follower] = max(
                1, min(current - 1, msg.last_log_index + 1))
            self._nudge_chunk_transfer(follower)

    def _classic_track_commit(self) -> None:
        """Commit rule over matchIndex (identical to classic Raft but
        bounded by the leader-approved region). A leader that is no
        longer a configuration member (lingering step-down after its own
        exclusion committed) holds no vote of its own -- counting itself
        would let it commit entries its successors never saw."""
        if perf.LEGACY_CORE:
            self._legacy_classic_track_commit()
            return
        # Current core: quorum coverage is monotone in the index (match
        # counts only shrink as k grows), so the per-index member
        # recount collapses to one order statistic -- the quorum-th
        # largest match -- giving the replication frontier directly.
        # Unlike classic Raft, Fast Raft's overwrite semantics leave
        # terms non-monotonic along the log, so the highest
        # current-term entry at or below the frontier is found by a
        # short downward scan rather than a single term check.
        commit = self.commit_index
        frontier = self.last_leader_index
        if frontier <= commit:
            return
        config = self.configuration
        name = self.name
        match_get = self.match_index.get
        counts = [match_get(member, 0) for member in config.members
                  if member != name]
        quorum_needed = (config.classic_quorum - 1
                         if name in config else config.classic_quorum)
        if quorum_needed > 0:
            if quorum_needed > len(counts):
                return
            counts.sort(reverse=True)
            frontier = min(frontier, counts[quorum_needed - 1])
        best = commit
        log_get = self.log.get
        term = self.current_term
        for k in range(frontier, commit, -1):
            entry = log_get(k)
            if entry is not None and entry.term == term:
                best = k
                break
        if best > commit:
            self._trace("classic_commit", index=best)
            self._advance_commit_index(best)
            self.possible_entries.drop_through(self.commit_index)
            self.ctx.loop.call_soon(self._run_decision)

    def _legacy_classic_track_commit(self) -> None:
        """Pre-restructure commit rule: per-index member recount, kept
        selectable so bench_perf prices the frontier rewrite."""
        best = self.commit_index
        for k in range(self.commit_index + 1, self.last_leader_index + 1):
            votes = 1 if self.name in self.configuration else 0
            for member in self.configuration.members:
                if (member != self.name
                        and self.match_index.get(member, 0) >= k):
                    votes += 1
            if not self.configuration.is_classic_quorum(votes):
                break
            entry = self.log.get(k)
            if entry is not None and entry.term == self.current_term:
                best = k
        if best > self.commit_index:
            self._trace("classic_commit", index=best)
            self._advance_commit_index(best)
            self.possible_entries.drop_through(self.commit_index)
            self.ctx.loop.call_soon(self._run_decision)

    # ------------------------------------------------------------------
    # Member timeout (silent leaves, Section IV-D)
    # ------------------------------------------------------------------
    def _tick_member_timeouts(self) -> None:
        for member in self.configuration.others(self.name):
            missed = self._beats_missed.get(member, 0) + 1
            self._beats_missed[member] = missed
            if missed > self.timing.member_timeout_beats:
                self._on_member_timeout(member)

    def _on_member_timeout(self, member: str) -> None:
        if any(change["site"] == member for change in self._config_queue):
            return
        pending = self._pending_config
        if pending is not None and pending["site"] == member:
            return
        if any(change["site"] == member
               for change in self._awaiting_commit.values()):
            return
        self._trace("member_timeout", site=member)
        self._enqueue_config_change({"action": "remove", "site": member,
                                     "reason": "member_timeout"})

    # ------------------------------------------------------------------
    # Follower side
    # ------------------------------------------------------------------
    def _handle_append_entries(self, msg: AppendEntries, sender: str) -> None:
        self._observe_term(msg.term, leader_hint=msg.leader_id)
        if msg.term < self.current_term:
            self._send(sender, AppendEntriesResponse(
                term=self.current_term, success=False, follower=self.name,
                match_index=0, last_log_index=self.log.last_index))
            return
        if self.role is not Role.FOLLOWER:
            self._become_follower(msg.leader_id)
        else:
            self.leader_id = msg.leader_id
            self._arm_election_timer()
        if self.name in self.configuration:
            # Current-term replication from the leader is authoritative:
            # any earlier eviction notice is superseded.
            self._evicted = False
        self._maybe_retry_join()
        if not self._log_matches(msg.prev_log_index, msg.prev_log_term):
            self._send(sender, AppendEntriesResponse(
                term=self.current_term, success=False, follower=self.name,
                match_index=0, last_log_index=self.log.last_index))
            return
        self._absorb_global_commit(msg.global_commit)
        to_insert = []
        for index, entry in msg.entries:
            existing = self.log.get(index)
            if (existing is not None and existing.entry_id == entry.entry_id
                    and existing.term == entry.term
                    and existing.inserted_by is InsertedBy.LEADER):
                continue  # already absorbed
            to_insert.append((index, entry))
        last_new = msg.prev_log_index + len(msg.entries)
        if self._SYNC_GATE and not perf.LEGACY_CORE:
            # The gate completes inline for these engines: skip the
            # completion closure (and its allocation) entirely.
            self._insert_batch(to_insert)
            self._append_entries_absorbed(sender, msg, last_new)
            return
        self._gate_insert(to_insert, lambda: self._append_entries_absorbed(
            sender, msg, last_new))

    def _append_entries_absorbed(self, sender: str, msg: AppendEntries,
                                 last_new: int) -> None:
        if msg.leader_commit > self.commit_index:
            self._advance_commit_index(min(msg.leader_commit,
                                           max(last_new, self.commit_index)))
        if msg.lease_until:
            self._note_lease_beat(msg)
        self._send(sender, AppendEntriesResponse(
            term=self.current_term, success=True, follower=self.name,
            match_index=last_new, last_log_index=self.log.last_index,
            beat_sent_at=msg.sent_at))

    def _absorb_global_commit(self, global_commit: int) -> None:
        """C-Raft local level overrides; plain Fast Raft ignores."""

    def _log_matches(self, prev_index: int, prev_term: int) -> bool:
        """Consistency check adapted to overwrite semantics: the previous
        entry must be leader-approved with the matching term, already
        committed, or the sentinel."""
        if prev_index == 0:
            return True
        if prev_index <= self.commit_index:
            return True
        entry = self.log.get(prev_index)
        if entry is None or entry.inserted_by is not InsertedBy.LEADER:
            return False
        return entry.term == prev_term
