"""The leader's ``possibleEntries`` structure.

Tracks, per log index, which entry each site voted for. The paper keeps
"a set of pairs, each consisting of a proposed entry and number of votes";
we keep the voter identities too because fast-track commits must update
``fastMatchIndex`` for exactly the sites whose vote matched the decision,
and because revotes (client retries) must not double-count a site.

A *null vote* (paper step (d): "If e is elsewhere in possibleEntries, set
to a null vote to avoid inserting a duplicate entry") still counts toward
the classic-quorum threshold for its index; if null wins the plurality the
leader inserts a fresh no-op.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.entry import LogEntry

#: Bucket key for null votes.
NULL_ID = "__null__"


@dataclass
class VoteRecord:
    """Votes for one candidate entry at one index."""

    entry: LogEntry | None  # None for the null bucket
    voters: set[str] = field(default_factory=set)

    @property
    def count(self) -> int:
        return len(self.voters)

    @property
    def is_null(self) -> bool:
        return self.entry is None


class PossibleEntries:
    """Per-index vote books."""

    def __init__(self) -> None:
        self._buckets: dict[int, dict[str, VoteRecord]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add_vote(self, index: int, entry: LogEntry, voter: str) -> None:
        """Record that ``voter``'s slot at ``index`` holds ``entry``.

        A site revoting for a different entry at the same index (its slot
        was overwritten) is moved, never double-counted.
        """
        bucket = self._buckets.setdefault(index, {})
        for entry_id, record in bucket.items():
            if entry_id != entry.entry_id:
                record.voters.discard(voter)
        record = bucket.get(entry.entry_id)
        if record is None:
            record = VoteRecord(entry=entry)
            bucket[entry.entry_id] = record
        record.voters.add(voter)

    def null_out(self, entry_id: str, except_index: int) -> None:
        """Convert votes for ``entry_id`` at all other indices into null
        votes (the entry is being used at ``except_index``)."""
        for index, bucket in self._buckets.items():
            if index == except_index:
                continue
            record = bucket.pop(entry_id, None)
            if record is None:
                continue
            null_record = bucket.get(NULL_ID)
            if null_record is None:
                null_record = VoteRecord(entry=None)
                bucket[NULL_ID] = null_record
            null_record.voters.update(record.voters)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def voters_at(self, index: int) -> set[str]:
        """Every site with any (including null) vote at ``index``."""
        bucket = self._buckets.get(index, {})
        voters: set[str] = set()
        for record in bucket.values():
            voters |= record.voters
        return voters

    def candidates(self, index: int) -> list[VoteRecord]:
        """Vote records at ``index``, most votes first.

        Ties break deterministically: non-null before null, then lowest
        entry id ("break ties arbitrarily" -- determinism keeps runs
        replayable).
        """
        bucket = self._buckets.get(index, {})

        def sort_key(item: tuple[str, VoteRecord]):
            entry_id, record = item
            return (-record.count, record.is_null, entry_id)

        return [record for _, record in sorted(bucket.items(), key=sort_key)]

    def record_for(self, index: int, entry_id: str) -> VoteRecord | None:
        return self._buckets.get(index, {}).get(entry_id)

    def indices(self) -> list[int]:
        return sorted(self._buckets)

    def has_votes(self, index: int) -> bool:
        return bool(self._buckets.get(index))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def drop_through(self, index: int) -> None:
        """Forget books for indices <= ``index`` (already committed)."""
        for stale in [i for i in self._buckets if i <= index]:
            del self._buckets[stale]

    def forget_voter(self, voter: str) -> None:
        """Remove a departed site's votes everywhere."""
        for bucket in self._buckets.values():
            for record in bucket.values():
                record.voters.discard(voter)

    def clear(self) -> None:
        self._buckets.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PossibleEntries indices={self.indices()}>"
