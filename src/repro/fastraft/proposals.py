"""Proposal broadcast and vote intake (paper Section IV-B).

Proposers broadcast entries to every configuration member; each site
inserts into the targeted slot if empty (self-approved) and reports its
slot content to the leader as a vote. The leader files votes in
``possibleEntries`` and adjusts ``nextIndex`` from the voter's reported
commit index.
"""

from __future__ import annotations

from repro import perf
from repro.consensus.engine import Role, handles
from repro.consensus.entry import EntryKind, InsertedBy, LogEntry
from repro.consensus.messages import (
    ClientRequest,
    CommitNotice,
    ProposeEntry,
    VoteEntry,
)


class ProposalMixin:
    """Proposal-side behaviour of :class:`FastRaftEngine`."""

    # ------------------------------------------------------------------
    # Originating proposals
    # ------------------------------------------------------------------
    def _handle_client_request(self, msg: ClientRequest, sender: str) -> None:
        entry = LogEntry(entry_id=msg.request_id, kind=EntryKind.DATA,
                         payload=msg.command, origin=self.name,
                         term=0, inserted_by=InsertedBy.SELF)
        self.propose(entry)

    def propose(self, entry: LogEntry) -> None:
        """Broadcast ``entry`` to all members (steps 1-2 of "To propose an
        entry"). Re-invocation (a client retry) re-broadcasts at the same
        index while the slot is still winnable, regenerating lost votes;
        once a different entry committed the slot, a fresh index is used.
        """
        committed_at = self.log.committed_index_of(entry.entry_id,
                                                   self.commit_index)
        if committed_at is not None:
            self._outstanding_proposals.pop(entry.entry_id, None)
            self.ctx.on_origin_commit(self.log.get(committed_at),
                                      committed_at)
            return
        if entry.origin == self.name:
            self._outstanding_proposals[entry.entry_id] = entry
        live = [i for i in self.log.indices_of(entry.entry_id)
                if i > self.commit_index]
        index = min(live) if live else self.log.last_index + 1
        if self._tracing:
            self._trace("propose", index=index, entry_id=entry.entry_id,
                        retry=bool(live))
        message = ProposeEntry(index=index, entry=entry)
        for site in self._proposal_targets():
            self._send(site, message)

    def _proposal_targets(self) -> list[str]:
        """All replicas plus catch-up joiners: observer and joiner slot
        votes are counted only where the quorum rules say so (tiebreaker
        CONFIG decisions), but they must mirror the slots to vote at
        all."""
        if not self._catchup_targets and not perf.LEGACY_CORE:
            # Common case: no joiners catching up, and the replica tuple
            # is already deduplicated -- skip the merge/dedup rebuild.
            return self.configuration.replicas
        targets = list(self.configuration.replicas)
        targets.extend(sorted(self._catchup_targets))
        return list(dict.fromkeys(targets))

    # ------------------------------------------------------------------
    # Receiving proposals (every site, the leader included)
    # ------------------------------------------------------------------
    @handles(ProposeEntry)
    def _handle_propose_entry(self, msg: ProposeEntry, sender: str) -> None:
        proposed, index = msg.entry, msg.index
        committed_at = self.log.committed_index_of(proposed.entry_id,
                                                   self.commit_index)
        if committed_at is not None:
            self._notify_origin(self.log.get(committed_at), committed_at)
            return
        if index <= self.commit_index:
            # The slot committed with a different entry; a vote would be
            # ignored. The proposer's timeout re-targets a fresh index.
            return
        if self.log.get(index) is None:
            stamped = proposed.with_mark(self.current_term, InsertedBy.SELF)
            self._gate_insert([(index, stamped)],
                              lambda: self._send_slot_vote(index))
        else:
            # Slot occupied: do not overwrite; vote for the occupant
            # (step 4 sends log[i] regardless of insertion).
            self._send_slot_vote(index)

    @handles(ProposeEntry)
    def _handle_propose_entry_fast(self, msg: ProposeEntry,
                                   sender: str) -> None:
        """Current-core variant of :meth:`_handle_propose_entry`: same
        decisions in the same order, with the synchronous-gate insert
        fused in. Engines whose ``_gate_insert`` runs inline
        (``_SYNC_GATE``) skip the pair-list, the completion closure, and
        the post-gate slot re-read -- an empty winnable slot here always
        ends up holding exactly the entry just stamped. The asynchronous
        C-Raft global gate keeps the closure path. Registered after the
        reference handler so the flat dispatch table picks this one; the
        legacy ``_build_dispatch`` binds the reference explicitly."""
        proposed, index = msg.entry, msg.index
        log = self.log
        committed_at = log.committed_index_of(proposed.entry_id,
                                              self.commit_index)
        if committed_at is not None:
            self._notify_origin(log.get(committed_at), committed_at)
            return
        if index <= self.commit_index:
            return
        occupant = log.get(index)
        if occupant is not None:
            self._send_slot_vote(index, occupant)
            return
        stamped = proposed.with_mark(self.current_term, InsertedBy.SELF)
        if self._SYNC_GATE:
            # Guards in _insert_into_log cannot fire: the slot is empty
            # and above the commit index, so the insert always lands.
            size = self._insert_into_log(index, stamped)
            if size:
                self.ctx.store.touch("log", size=size)
            self._send_slot_vote(index, stamped)
            return
        self._gate_insert([(index, stamped)],
                          lambda: self._send_slot_vote(index))

    def _send_slot_vote(self, index: int, entry: LogEntry | None = None
                        ) -> None:
        if entry is None:
            entry = self.log.get(index)
        if entry is None or self.leader_id is None:
            return
        self._send(self.leader_id, VoteEntry(
            term=self.current_term, index=index, entry=entry,
            commit_index=self.commit_index, voter=self.name))

    # ------------------------------------------------------------------
    # Receiving votes (leader)
    # ------------------------------------------------------------------
    @handles(VoteEntry)
    def _handle_vote_entry(self, msg: VoteEntry, sender: str) -> None:
        self._observe_term(msg.term)
        if self.role is not Role.LEADER:
            return
        if msg.index <= self.commit_index:
            return
        self.possible_entries.add_vote(msg.index, msg.entry, msg.voter)
        # "Set nextIndex[i] = sentCommitIndex" (+1 for the first entry the
        # voter has not committed); keeps a follower consistent with a
        # newly elected leader whose own bookkeeping is fresh.
        if msg.voter in self.next_index and msg.voter != self.name:
            self.next_index[msg.voter] = min(msg.commit_index + 1,
                                             self.last_leader_index + 1)

    # ------------------------------------------------------------------
    # Commit notification
    # ------------------------------------------------------------------
    def _notify_origin(self, entry: LogEntry, index: int) -> None:
        if entry is None:
            return
        if entry.origin == self.name:
            self.ctx.on_origin_commit(entry, index)
        else:
            self._send(entry.origin, CommitNotice(
                entry_id=entry.entry_id, index=index, term=entry.term))
