"""Self-announced membership (paper Section IV-D).

Sites send join/leave requests to the members; non-leaders forward to the
leader; the leader serializes changes (one site per configuration entry),
catches joiners up as non-voting members first, and detects silent leaves
via the member timeout (in :mod:`repro.fastraft.replication`).

An evicted site (removed after a silent leave while actually alive) keeps
its stale configuration, so it cannot know it was removed; when its
messages are ignored, members answer with ``NotInConfiguration`` and the
site switches to join mode -- the paper's "it will need to send a join
request to return to the configuration".

Beyond the paper (global-membership liveness, see README):

- a member can retire into a standing **non-voting observer** instead of
  leaving (``LeaveRequest(as_observer=True)`` -> a *demote* change);
- a joiner may name the member whose seat it takes over
  (``JoinRequest.replaces``); while that member's exclusion is pending
  the leader catches the joiner up early, and the caught-up joiner's
  votes count toward deciding the exclusion entry
  (``_replacement_joiners_for`` / ``DecisionMixin._decision_quorum_met``).
"""

from __future__ import annotations

from typing import Any

from repro.consensus.config import Configuration
from repro.consensus.engine import Role
from repro.consensus.entry import ConfigPayload, EntryKind, InsertedBy, LogEntry
from repro.consensus.messages import (
    JoinAccepted,
    JoinRequest,
    LeaveAccepted,
    LeaveRequest,
    NotInConfiguration,
)


class MembershipMixin:
    """Membership behaviour of :class:`FastRaftEngine`."""

    # ------------------------------------------------------------------
    # Join / leave requests
    # ------------------------------------------------------------------
    def _handle_join_request(self, msg: JoinRequest, sender: str) -> None:
        if self.role is not Role.LEADER:
            if self.leader_id is not None and self.leader_id != self.name:
                self._send(self.leader_id, msg)  # redirect to the leader
            return
        site = msg.site
        if site in self.configuration:
            self._send(site, JoinAccepted(
                members=self.configuration.members, leader_id=self.name))
            return
        if self._membership_change_known(site):
            return  # duplicate request
        self._trace("join.accepted_for_catchup", site=site,
                    replaces=msg.replaces)
        self._enqueue_config_change({"action": "add", "site": site,
                                     "replaces": msg.replaces})
        # If the seat being taken over is already mid-exclusion, start
        # replicating to the joiner now -- its caught-up votes are what
        # let the exclusion decide when the voters alone cannot.
        self._begin_replacement_catchup()

    def _handle_leave_request(self, msg: LeaveRequest, sender: str) -> None:
        if self.role is not Role.LEADER:
            if self.leader_id is not None and self.leader_id != self.name:
                self._send(self.leader_id, msg)
            return
        site = msg.site
        if site not in self.configuration:
            if not msg.as_observer and site not in self.configuration.observers:
                self._send(site, LeaveAccepted(site=site))
            # A demotion request from a site that is already (or is
            # becoming) an observer needs no ack: the config entry
            # replicates to it like any other. Never LeaveAccepted-ack a
            # demotion -- the requester is staying, not leaving.
            return
        if self._membership_change_known(site):
            return
        if msg.as_observer:
            self._trace("demote.accepted", site=site)
            self._enqueue_config_change({"action": "demote", "site": site})
            return
        self._trace("leave.accepted", site=site)
        self._enqueue_config_change({"action": "remove", "site": site,
                                     "reason": "announced"})

    def _membership_change_known(self, site: str) -> bool:
        if any(change["site"] == site for change in self._config_queue):
            return True
        pending = self._pending_config
        return pending is not None and pending["site"] == site

    def _target_config(self, action: str, site: str) -> Configuration | None:
        """Membership after the change, computed idempotently: configs
        activate on *insert*, so by (re)proposal time the current config
        may already reflect the change."""
        members = set(self.configuration.members)
        observers = set(self.configuration.observers)
        if action == "add":
            members.add(site)
            observers.discard(site)  # observer-to-voter promotion
        elif action == "demote":
            members.discard(site)
            observers.add(site)
        else:
            members.discard(site)
            observers.discard(site)
        if not members:
            return None  # never commit an empty configuration
        return Configuration(tuple(members), tuple(observers))

    # ------------------------------------------------------------------
    # Serialized configuration changes
    # ------------------------------------------------------------------
    def _enqueue_config_change(self, change: dict[str, Any]) -> None:
        self._config_queue.append(change)
        self._start_next_config_change()

    def _start_next_config_change(self) -> None:
        if self.role is not Role.LEADER:
            return
        if self._pending_config is not None or not self._config_queue:
            return
        change = self._config_queue.pop(0)
        self._pending_config = change
        site = change["site"]
        if change["action"] == "add":
            # Non-voting catch-up before the configuration entry. The
            # setdefaults preserve progress a pre-exclusion catch-up (or
            # a standing observer's replication) has already made.
            self._start_joiner_catchup(site)
            self._send_append_entries(site)
            return
        target = self._target_config(change["action"], site)
        if target is None:
            self._pending_config = None
            self._start_next_config_change()
            return
        if change["action"] == "remove" and self._should_degrade():
            # No quorum can decide the proposal; removals fall back to the
            # degraded direct insert regardless of who initiated them.
            self._degraded_config_insert(target, change)
            return
        self._propose_config_entry(target, change)

    def _start_joiner_catchup(self, site: str) -> None:
        """Begin (or continue) non-voting catch-up replication to a
        joining site."""
        self._catchup_targets.add(site)
        self._extra_allowed.add(site)
        self.next_index.setdefault(site, 1)
        self.match_index.setdefault(site, 0)
        self.fast_match_index.setdefault(site, 0)

    def _should_degrade(self) -> bool:
        """Degraded reconfiguration applies when enabled, no classic
        quorum of members responds, and at least one *other* member still
        does. The last condition guards the most common false positive: a
        leader that hears from nobody is far more likely to be the
        disconnected one itself, and shrinking its configuration around
        itself is exactly the split-brain the paper's Section IV-E
        argument forbids."""
        if not self.timing.allow_degraded_reconfig:
            return False
        if self._quorum_of_members_responsive():
            return False
        threshold = self.timing.member_timeout_beats
        return any(self._beats_missed.get(member, 0) <= threshold
                   for member in self.configuration.others(self.name))

    # ------------------------------------------------------------------
    # Degraded reconfiguration (Section IV-F liveness)
    # ------------------------------------------------------------------
    def _quorum_of_members_responsive(self) -> bool:
        """Can the current configuration still decide proposals?"""
        threshold = self.timing.member_timeout_beats
        live = 1 if self.name in self.configuration else 0
        for member in self.configuration.others(self.name):
            if self._beats_missed.get(member, 0) <= threshold:
                live += 1
        return live >= self.configuration.classic_quorum

    def _degraded_config_insert(self, new_config: Configuration,
                                change: dict[str, Any]) -> None:
        """Majority silently left: the decision procedure can never gather
        a classic quorum, so the leader inserts the exclusion entry into
        its own log directly -- "the leader can insert a new configuration
        and decrease the leader's perception of quorum sizes" (Section
        IV-F). Configurations activate on insert, so chained removals
        shrink the quorum until the survivors can commit the entries.

        The entry lands at the first *empty* slot: overwriting even a
        self-approved occupant is unsafe, because a surviving replica's
        copy of a fast-committed entry is exactly a self-approved slot
        whose commit the replica has not heard about yet (the crashed
        leader acked the client). Occupied slots below the insert point
        are settled afterwards by the decision procedure under the
        shrunk configuration, which re-derives any fast-committed value
        from the recorded votes (Lemma 2)."""
        k = self.commit_index + 1
        while self.log.get(k) is not None:
            k += 1
        self._internal_seq += 1
        entry = LogEntry(
            entry_id=(f"{self.name}:config{self._internal_seq}"
                      f".t{self.current_term}"),
            kind=EntryKind.CONFIG,
            payload=ConfigPayload(members=new_config.members,
                                  observers=new_config.observers,
                                  version=self._next_config_version()),
            origin=self.name, term=self.current_term,
            inserted_by=InsertedBy.LEADER)
        change["entry_id"] = entry.entry_id
        self._insert_batch([(k, entry)])
        self._trace("config.degraded_insert", index=k, site=change["site"],
                    members=new_config.members)
        # Do not block the queue on this entry's commit; remember it so
        # the commit hook can still finish the bookkeeping later.
        self._awaiting_commit[entry.entry_id] = change
        self._pending_config = None
        self._start_next_config_change()

    def _check_catchup_complete(self, follower: str) -> None:
        pending = self._pending_config
        if (pending is None or pending["action"] != "add"
                or pending["site"] != follower
                or "entry_id" in pending):
            return
        if self.match_index.get(follower, 0) >= self.last_leader_index:
            self._propose_config_entry(
                self._target_config("add", follower), pending)

    # ------------------------------------------------------------------
    # Joining-leader exclusion quorum (the two-voter liveness fix)
    # ------------------------------------------------------------------
    def _begin_replacement_catchup(self) -> None:
        """While an exclusion is pending, start catch-up replication to
        any queued joiner that replaces the member being excluded, ahead
        of its turn in the change queue. The exclusion may be undecidable
        by the voters alone (2-of-2 with one dead); the caught-up joiner
        supplies the missing vote (see ``_decision_quorum_met``)."""
        pending = self._pending_config
        if pending is None or pending["action"] != "remove":
            return
        removed = pending["site"]
        for change in self._config_queue:
            if (change["action"] == "add"
                    and change.get("replaces") == removed
                    and change["site"] not in self._catchup_targets):
                self._start_joiner_catchup(change["site"])
                self._send_append_entries(change["site"])
                self._trace("join.replacement_catchup",
                            site=change["site"], replaces=removed)

    def _maybe_tiebreaker_insert(self, pending: dict[str, Any]) -> None:
        """A pending exclusion endorsed by a majority of the expanded
        electorate (tiebreaker observers / replacement joiner) but
        undecidable in order -- e.g. wedged behind a DATA slot that can
        never gather a classic quorum again: insert it directly at the
        next open slot, exactly like the degraded path, except backed by
        real votes instead of silence. The in-order decision path
        (``_decision_quorum_met``) handles the unwedged case."""
        if pending["action"] != "remove" or self.role is not Role.LEADER:
            return
        live = [i for i in self.log.indices_of(pending["entry_id"])
                if i > self.commit_index]
        if not live:
            return
        k = min(live)
        if k in self._gating_indices:
            return  # mid-gate: the decision path is already landing it
        entry = self.log.get(k)
        if entry.inserted_by is InsertedBy.LEADER:
            return  # decided; replication will commit it
        record = self.possible_entries.record_for(k, entry.entry_id)
        supporters = set(record.voters) if record is not None else set()
        if self.name not in supporters:
            return
        if self.configuration.is_classic_quorum(supporters):
            return  # a live classic quorum decides in order eventually
        extra = self._replacement_joiners_for(entry)
        if not self.configuration.config_entry_quorum(supporters, extra):
            return
        target = self._target_config("remove", pending["site"])
        if target is None:
            return
        self._trace("config.tiebreaker_insert", site=pending["site"],
                    from_index=k, supporters=sorted(supporters),
                    extra=sorted(extra))
        self._degraded_config_insert(target, pending)

    def _replacement_joiners_for(self, entry) -> set[str]:
        """Caught-up joiners whose votes count toward deciding ``entry``
        (a CONFIG entry): those replacing exactly a member the entry
        excludes. Caught up means the joiner mirrors the whole
        leader-approved region, i.e. it is as good a replica as any
        voter."""
        removed = set(self.configuration.members) - set(entry.payload.members)
        if not removed:
            return set()
        joiners: set[str] = set()
        changes = list(self._config_queue)
        if self._pending_config is not None:
            changes.append(self._pending_config)
        for change in changes:
            site = change["site"]
            if (change["action"] == "add"
                    and change.get("replaces") in removed
                    and site in self._catchup_targets
                    and self.match_index.get(site, 0)
                    >= self.last_leader_index):
                joiners.add(site)
        return joiners

    def _next_config_version(self) -> int:
        version = max(self._max_known_config_version(),
                      self._config_version_floor) + 1
        self._config_version_floor = version
        return version

    def _propose_config_entry(self, new_config: Configuration,
                              change: dict[str, Any]) -> None:
        """Configuration entries travel the normal proposal path; the
        Fig. 4 latency spike the paper attributes to "concurrent proposals
        with the leader for a configuration change" is exactly this."""
        self._internal_seq += 1
        entry = LogEntry(
            entry_id=f"{self.name}:config{self._internal_seq}.t{self.current_term}",
            kind=EntryKind.CONFIG,
            payload=ConfigPayload(members=new_config.members,
                                  observers=new_config.observers,
                                  version=self._next_config_version()),
            origin=self.name, term=self.current_term,
            inserted_by=InsertedBy.SELF)
        change["entry_id"] = entry.entry_id
        self._trace("config.proposed", action=change["action"],
                    site=change["site"], members=new_config.members)
        self.propose(entry)

    def _retry_pending_config(self) -> None:
        """Re-propose a pending configuration entry that lost its slot
        (called from the leader's decision tick; cheap no-op otherwise)."""
        self._begin_replacement_catchup()
        pending = self._pending_config
        if pending is None or "entry_id" not in pending:
            return
        if pending["action"] == "remove" and self._should_degrade():
            # The remaining sites can never decide this proposal; fall
            # back to the degraded direct insert (Section IV-F).
            target = self._target_config("remove", pending["site"])
            if target is not None:
                self._degraded_config_insert(target, pending)
                return
        entry_id = pending["entry_id"]
        if self.log.indices_of(entry_id):
            self._maybe_tiebreaker_insert(pending)
            return
        # The config entry was overwritten by a concurrent proposal before
        # being decided anywhere we can see; propose it afresh.
        del pending["entry_id"]
        target = self._target_config(pending["action"], pending["site"])
        if target is None:
            self._pending_config = None
            self._start_next_config_change()
            return
        self._propose_config_entry(target, pending)

    def _finish_config_change(self, entry: LogEntry) -> None:
        pending = self._pending_config
        if pending is not None and pending.get("entry_id") == entry.entry_id:
            self._pending_config = None
        else:
            pending = self._awaiting_commit.pop(entry.entry_id, None)
            if pending is None:
                return
        site = pending["site"]
        if pending["action"] == "add":
            self._catchup_targets.discard(site)
            self._extra_allowed.discard(site)
            self._send(site, JoinAccepted(
                members=self.configuration.members, leader_id=self.name))
        elif pending["action"] == "demote":
            # The site stays a replicated observer: keep its next/match
            # bookkeeping and let the config entry inform it. A demoted
            # self steps down like a removed self (lingering, below).
            if site == self.name:
                self._begin_leader_stepdown(entry)
                return
        else:
            self._send(site, LeaveAccepted(site=site))
            if site == self.name:
                # Keep the replication bookkeeping until the lingering
                # step-down completes.
                self._begin_leader_stepdown(entry)
                return
            self.next_index.pop(site, None)
            self.match_index.pop(site, None)
            self.fast_match_index.pop(site, None)
            self._beats_missed.pop(site, None)
            self.possible_entries.forget_voter(site)
        self._trace("config.committed", action=pending["action"], site=site)
        self._start_next_config_change()

    # ------------------------------------------------------------------
    # Lingering step-down (self-removal / self-demotion)
    # ------------------------------------------------------------------
    def _begin_leader_stepdown(self, entry: LogEntry) -> None:
        """This leader just committed its own exclusion or demotion. Do
        not abdicate yet: tentative configurations do not govern (see
        ``RaftLog.best_config_entry``), so the successors only adopt the
        new membership once they hold this CONFIG entry leader-approved
        or committed -- which a fast-track commit does not guarantee.
        Keep replicating until every new-config member has it, bounded
        by the member timeout so a dead successor cannot pin the old
        leader to the throne."""
        indices = self.log.indices_of(entry.entry_id)
        self._stepdown_index = max(indices) if indices else self.commit_index
        self._stepdown_deadline = self.now() + (
            self.timing.member_timeout_beats
            * self.timing.heartbeat_interval)
        self._trace("config.stepdown_pending", index=self._stepdown_index)
        self._maybe_complete_stepdown()

    def _maybe_complete_stepdown(self) -> None:
        if self._stepdown_index is None or self.role is not Role.LEADER:
            return
        successors = [m for m in self.configuration.members
                      if m != self.name]
        replicated = all(self.match_index.get(m, 0) >= self._stepdown_index
                         for m in successors)
        if replicated or self.now() >= self._stepdown_deadline:
            self._trace("config.stepdown", index=self._stepdown_index,
                        replicated=replicated)
            self._stepdown_index = None
            self._become_follower()

    # ------------------------------------------------------------------
    # Joining / evicted site behaviour
    # ------------------------------------------------------------------
    def seek_membership(self, replaces: str | None = None) -> None:
        """The host wants this site in the voting set *now* (C-Raft: it
        just won its local election). Needed because a standing observer
        receives the leader's heartbeats, which keep re-arming the
        election timer -- the timeout path that normally launches join
        requests never fires for it."""
        self.wants_membership = True
        self.join_replaces = replaces
        if (not self.is_member and not self._stopped
                and self.role is not Role.LEADER):
            self._send_join_requests()
            self._election_timer.reset(self.timing.join_timeout)

    def _maybe_retry_join(self) -> None:
        """Heartbeat-paced join retry for membership seekers that keep
        receiving AppendEntries (observers; joiners mid-catch-up whose
        accepting leader died): their election timer never times out, so
        lost join requests must be re-sent from the replication path."""
        if (self.wants_membership and not self.is_member
                and self.now() - self._last_join_request
                >= self.timing.join_timeout):
            self._send_join_requests()

    def _on_election_timeout_as_nonmember(self) -> None:
        """Not in the configuration (never admitted, or evicted): ask to
        join instead of starting unwinnable elections. A standing
        observer that does not want a voting seat simply keeps watching
        -- being outside the voting set is its job, not an eviction."""
        if (self.name in self.configuration.observers
                and not self.wants_membership):
            self._election_timer.reset(self.timing.join_timeout)
            return
        self._send_join_requests()
        self._election_timer.reset(self.timing.join_timeout)

    def _send_join_requests(self) -> None:
        self._last_join_request = self.now()
        request = JoinRequest(site=self.name, replaces=self.join_replaces)
        contacts = [m for m in self._join_contacts() if m != self.name]
        for contact in contacts:
            self._send(contact, request)
        self._trace("join.requested", contacts=contacts,
                    replaces=self.join_replaces)

    def _join_contacts(self) -> tuple[str, ...]:
        """All known members plus the last leader hint: a lone hint can go
        stale (the hinted site may itself have left the configuration)."""
        contacts = set(self.configuration.members)
        if self.leader_id is not None:
            contacts.add(self.leader_id)
        return tuple(sorted(contacts))

    def _handle_join_accepted(self, msg: JoinAccepted, sender: str) -> None:
        self.leader_id = msg.leader_id
        self._evicted = False
        self._refresh_configuration()
        self._trace("join.completed", members=msg.members)
        self._arm_election_timer()

    def _handle_leave_accepted(self, msg: LeaveAccepted, sender: str) -> None:
        if msg.site != self.name:
            return
        if self.name in self.configuration.observers:
            # A demoted site asked to *observe*, not to leave; a stray
            # LeaveAccepted (e.g. a duplicate request racing the
            # demotion) must not shut the standing observer down.
            return
        # Our announced departure committed: exit the system. Without
        # this, the site's election timeout would immediately ask to
        # rejoin (the paper assumes a leaving site actually leaves).
        self._trace("leave.completed")
        self.stop()

    def _handle_not_in_configuration(self, msg: NotInConfiguration,
                                     sender: str) -> None:
        if self.name in msg.members:
            return  # raced with our own (re)admission
        if msg.term < self.current_term and self.role is not Role.CANDIDATE:
            # Stale notice from before our (re)admission. A candidate is
            # exempt: its term is inflated by failed elections, yet the
            # notice is live feedback to the votes it is soliciting now.
            return
        self._observe_term(msg.term)
        if (self.name in self.configuration.observers
                and not self.wants_membership):
            # A standing observer is outside the voting set by design; a
            # peer with a stale (pre-demotion) config is not evicting us.
            return
        if not self._evicted:
            self._evicted = True
            self._trace("evicted.detected", via=sender)
        if msg.leader_hint is not None:
            self.leader_id = msg.leader_hint
        if self.role is not Role.LEADER:
            self._election_timer.reset(self.timing.join_timeout)
            self._send_join_requests()

    def _on_recovery_probe_rejected(self, msg, sender: str) -> None:
        """A recovery probe found a strictly newer configuration that
        excludes this site: funnel into the same rejoin path a live
        :class:`NotInConfiguration` notice takes (evicted flag, leader
        hint, immediate join requests) -- without waiting for the
        unwinnable election timeout that notice normally rides on."""
        self._handle_not_in_configuration(
            NotInConfiguration(term=msg.term, members=msg.members,
                               leader_hint=msg.leader_hint), sender)

    @property
    def is_member(self) -> bool:  # overrides BaseEngine's property use
        return self.name in self.configuration and not self._evicted
