"""Self-announced membership (paper Section IV-D).

Sites send join/leave requests to the members; non-leaders forward to the
leader; the leader serializes changes (one site per configuration entry),
catches joiners up as non-voting members first, and detects silent leaves
via the member timeout (in :mod:`repro.fastraft.replication`).

An evicted site (removed after a silent leave while actually alive) keeps
its stale configuration, so it cannot know it was removed; when its
messages are ignored, members answer with ``NotInConfiguration`` and the
site switches to join mode -- the paper's "it will need to send a join
request to return to the configuration".
"""

from __future__ import annotations

from typing import Any

from repro.consensus.config import Configuration
from repro.consensus.engine import Role
from repro.consensus.entry import ConfigPayload, EntryKind, InsertedBy, LogEntry
from repro.consensus.messages import (
    JoinAccepted,
    JoinRequest,
    LeaveAccepted,
    LeaveRequest,
    NotInConfiguration,
)


class MembershipMixin:
    """Membership behaviour of :class:`FastRaftEngine`."""

    # ------------------------------------------------------------------
    # Join / leave requests
    # ------------------------------------------------------------------
    def _handle_join_request(self, msg: JoinRequest, sender: str) -> None:
        if self.role is not Role.LEADER:
            if self.leader_id is not None and self.leader_id != self.name:
                self._send(self.leader_id, msg)  # redirect to the leader
            return
        site = msg.site
        if site in self.configuration:
            self._send(site, JoinAccepted(
                members=self.configuration.members, leader_id=self.name))
            return
        if self._membership_change_known(site):
            return  # duplicate request
        self._trace("join.accepted_for_catchup", site=site)
        self._enqueue_config_change({"action": "add", "site": site})

    def _handle_leave_request(self, msg: LeaveRequest, sender: str) -> None:
        if self.role is not Role.LEADER:
            if self.leader_id is not None and self.leader_id != self.name:
                self._send(self.leader_id, msg)
            return
        site = msg.site
        if site not in self.configuration:
            self._send(site, LeaveAccepted(site=site))
            return
        if self._membership_change_known(site):
            return
        self._trace("leave.accepted", site=site)
        self._enqueue_config_change({"action": "remove", "site": site,
                                     "reason": "announced"})

    def _membership_change_known(self, site: str) -> bool:
        if any(change["site"] == site for change in self._config_queue):
            return True
        pending = self._pending_config
        return pending is not None and pending["site"] == site

    def _target_config(self, action: str, site: str) -> Configuration | None:
        """Membership after the change, computed idempotently: configs
        activate on *insert*, so by (re)proposal time the current config
        may already reflect the change."""
        members = set(self.configuration.members)
        if action == "add":
            members.add(site)
        else:
            members.discard(site)
        if not members:
            return None  # never commit an empty configuration
        return Configuration(tuple(members))

    # ------------------------------------------------------------------
    # Serialized configuration changes
    # ------------------------------------------------------------------
    def _enqueue_config_change(self, change: dict[str, Any]) -> None:
        self._config_queue.append(change)
        self._start_next_config_change()

    def _start_next_config_change(self) -> None:
        if self.role is not Role.LEADER:
            return
        if self._pending_config is not None or not self._config_queue:
            return
        change = self._config_queue.pop(0)
        self._pending_config = change
        site = change["site"]
        if change["action"] == "add":
            # Non-voting catch-up before the configuration entry.
            self._catchup_targets.add(site)
            self._extra_allowed.add(site)
            self.next_index[site] = 1
            self.match_index[site] = 0
            self.fast_match_index.setdefault(site, 0)
            self._send_append_entries(site)
            return
        target = self._target_config("remove", site)
        if target is None:
            self._pending_config = None
            self._start_next_config_change()
            return
        if self._should_degrade():
            # No quorum can decide the proposal; removals fall back to the
            # degraded direct insert regardless of who initiated them.
            self._degraded_config_insert(target, change)
            return
        self._propose_config_entry(target, change)

    def _should_degrade(self) -> bool:
        """Degraded reconfiguration applies when enabled, no classic
        quorum of members responds, and at least one *other* member still
        does. The last condition guards the most common false positive: a
        leader that hears from nobody is far more likely to be the
        disconnected one itself, and shrinking its configuration around
        itself is exactly the split-brain the paper's Section IV-E
        argument forbids."""
        if not self.timing.allow_degraded_reconfig:
            return False
        if self._quorum_of_members_responsive():
            return False
        threshold = self.timing.member_timeout_beats
        return any(self._beats_missed.get(member, 0) <= threshold
                   for member in self.configuration.others(self.name))

    # ------------------------------------------------------------------
    # Degraded reconfiguration (Section IV-F liveness)
    # ------------------------------------------------------------------
    def _quorum_of_members_responsive(self) -> bool:
        """Can the current configuration still decide proposals?"""
        threshold = self.timing.member_timeout_beats
        live = 1  # the leader itself
        for member in self.configuration.others(self.name):
            if self._beats_missed.get(member, 0) <= threshold:
                live += 1
        return live >= self.configuration.classic_quorum

    def _degraded_config_insert(self, new_config: Configuration,
                                change: dict[str, Any]) -> None:
        """Majority silently left: the decision procedure can never gather
        a classic quorum, so the leader inserts the exclusion entry into
        its own log directly -- "the leader can insert a new configuration
        and decrease the leader's perception of quorum sizes" (Section
        IV-F). Configurations activate on insert, so chained removals
        shrink the quorum until the survivors can commit the entries.
        Leader-approved slots are never overwritten."""
        k = self.commit_index + 1
        while True:
            existing = self.log.get(k)
            if existing is None or existing.inserted_by is not InsertedBy.LEADER:
                break
            k += 1
        self._internal_seq += 1
        entry = LogEntry(
            entry_id=(f"{self.name}:config{self._internal_seq}"
                      f".t{self.current_term}"),
            kind=EntryKind.CONFIG,
            payload=ConfigPayload(members=new_config.members,
                                  version=self._next_config_version()),
            origin=self.name, term=self.current_term,
            inserted_by=InsertedBy.LEADER)
        change["entry_id"] = entry.entry_id
        self._insert_batch([(k, entry)])
        self._trace("config.degraded_insert", index=k, site=change["site"],
                    members=new_config.members)
        # Do not block the queue on this entry's commit; remember it so
        # the commit hook can still finish the bookkeeping later.
        self._awaiting_commit[entry.entry_id] = change
        self._pending_config = None
        self._start_next_config_change()

    def _check_catchup_complete(self, follower: str) -> None:
        pending = self._pending_config
        if (pending is None or pending["action"] != "add"
                or pending["site"] != follower
                or "entry_id" in pending):
            return
        if self.match_index.get(follower, 0) >= self.last_leader_index:
            self._propose_config_entry(
                self._target_config("add", follower), pending)

    def _next_config_version(self) -> int:
        version = max(self._max_known_config_version(),
                      self._config_version_floor) + 1
        self._config_version_floor = version
        return version

    def _propose_config_entry(self, new_config: Configuration,
                              change: dict[str, Any]) -> None:
        """Configuration entries travel the normal proposal path; the
        Fig. 4 latency spike the paper attributes to "concurrent proposals
        with the leader for a configuration change" is exactly this."""
        self._internal_seq += 1
        entry = LogEntry(
            entry_id=f"{self.name}:config{self._internal_seq}.t{self.current_term}",
            kind=EntryKind.CONFIG,
            payload=ConfigPayload(members=new_config.members,
                                  version=self._next_config_version()),
            origin=self.name, term=self.current_term,
            inserted_by=InsertedBy.SELF)
        change["entry_id"] = entry.entry_id
        self._trace("config.proposed", action=change["action"],
                    site=change["site"], members=new_config.members)
        self.propose(entry)

    def _retry_pending_config(self) -> None:
        """Re-propose a pending configuration entry that lost its slot
        (called from the leader's decision tick; cheap no-op otherwise)."""
        pending = self._pending_config
        if pending is None or "entry_id" not in pending:
            return
        if pending["action"] == "remove" and self._should_degrade():
            # The remaining sites can never decide this proposal; fall
            # back to the degraded direct insert (Section IV-F).
            target = self._target_config("remove", pending["site"])
            if target is not None:
                self._degraded_config_insert(target, pending)
                return
        entry_id = pending["entry_id"]
        if self.log.indices_of(entry_id):
            return
        # The config entry was overwritten by a concurrent proposal before
        # being decided anywhere we can see; propose it afresh.
        del pending["entry_id"]
        target = self._target_config(pending["action"], pending["site"])
        if target is None:
            self._pending_config = None
            self._start_next_config_change()
            return
        self._propose_config_entry(target, pending)

    def _finish_config_change(self, entry: LogEntry) -> None:
        pending = self._pending_config
        if pending is not None and pending.get("entry_id") == entry.entry_id:
            self._pending_config = None
        else:
            pending = self._awaiting_commit.pop(entry.entry_id, None)
            if pending is None:
                return
        site = pending["site"]
        if pending["action"] == "add":
            self._catchup_targets.discard(site)
            self._extra_allowed.discard(site)
            self._send(site, JoinAccepted(
                members=self.configuration.members, leader_id=self.name))
        else:
            self._send(site, LeaveAccepted(site=site))
            self.next_index.pop(site, None)
            self.match_index.pop(site, None)
            self.fast_match_index.pop(site, None)
            self._beats_missed.pop(site, None)
            self.possible_entries.forget_voter(site)
            if site == self.name:
                self._become_follower()
                return
        self._trace("config.committed", action=pending["action"], site=site)
        self._start_next_config_change()

    # ------------------------------------------------------------------
    # Joining / evicted site behaviour
    # ------------------------------------------------------------------
    def _on_election_timeout_as_nonmember(self) -> None:
        """Not in the configuration (never admitted, or evicted): ask to
        join instead of starting unwinnable elections."""
        self._send_join_requests()
        self._election_timer.reset(self.timing.join_timeout)

    def _send_join_requests(self) -> None:
        request = JoinRequest(site=self.name)
        contacts = [m for m in self._join_contacts() if m != self.name]
        for contact in contacts:
            self._send(contact, request)
        self._trace("join.requested", contacts=contacts)

    def _join_contacts(self) -> tuple[str, ...]:
        """All known members plus the last leader hint: a lone hint can go
        stale (the hinted site may itself have left the configuration)."""
        contacts = set(self.configuration.members)
        if self.leader_id is not None:
            contacts.add(self.leader_id)
        return tuple(sorted(contacts))

    def _handle_join_accepted(self, msg: JoinAccepted, sender: str) -> None:
        self.leader_id = msg.leader_id
        self._evicted = False
        self._refresh_configuration()
        self._trace("join.completed", members=msg.members)
        self._arm_election_timer()

    def _handle_leave_accepted(self, msg: LeaveAccepted, sender: str) -> None:
        if msg.site != self.name:
            return
        # Our announced departure committed: exit the system. Without
        # this, the site's election timeout would immediately ask to
        # rejoin (the paper assumes a leaving site actually leaves).
        self._trace("leave.completed")
        self.stop()

    def _handle_not_in_configuration(self, msg: NotInConfiguration,
                                     sender: str) -> None:
        if self.name in msg.members:
            return  # raced with our own (re)admission
        if msg.term < self.current_term and self.role is not Role.CANDIDATE:
            # Stale notice from before our (re)admission. A candidate is
            # exempt: its term is inflated by failed elections, yet the
            # notice is live feedback to the votes it is soliciting now.
            return
        self._observe_term(msg.term)
        if not self._evicted:
            self._evicted = True
            self._trace("evicted.detected", via=sender)
        if msg.leader_hint is not None:
            self.leader_id = msg.leader_hint
        if self.role is not Role.LEADER:
            self._election_timer.reset(self.timing.join_timeout)
            self._send_join_requests()

    @property
    def is_member(self) -> bool:  # overrides BaseEngine's property use
        return self.name in self.configuration and not self._evicted
