"""Fast Raft bound to a network address."""

from __future__ import annotations

from repro.consensus.server import ConsensusServer
from repro.fastraft.engine import FastRaftEngine


class FastRaftServer(ConsensusServer):
    """A Fast Raft site."""

    engine_cls = FastRaftEngine
