"""Dependency-free summary statistics for experiment reports."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class SummaryStats:
    """Summary of a sample of measurements."""

    count: int
    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float
    p5: float
    p95: float

    def format(self, unit: str = "", scale: float = 1.0) -> str:
        """Human-readable one-liner, e.g. ``'52.1 ms (median 51.3, n=100)'``."""
        return (f"{self.mean * scale:.1f}{unit} "
                f"(median {self.median * scale:.1f}, n={self.count})")


@dataclass(frozen=True)
class SnapshotCounters:
    """Aggregate snapshot/compaction activity across a set of engines
    (every engine exposes the four counters; see BaseEngine)."""

    taken: int = 0
    installed: int = 0
    shipped: int = 0
    entries_compacted: int = 0
    #: Chunk messages sent by leaders (0 under monolithic transfer).
    chunks_sent: int = 0

    def format(self) -> str:
        chunks = (f" ({self.chunks_sent} chunks)" if self.chunks_sent else "")
        return (f"snapshots: {self.taken} taken, {self.shipped} shipped"
                f"{chunks}, {self.installed} installed, "
                f"{self.entries_compacted} entries compacted")


def tally_snapshots(engines: Iterable) -> SnapshotCounters:
    """Sum the per-engine snapshot counters for a report."""
    taken = installed = shipped = compacted = chunks = 0
    for engine in engines:
        taken += getattr(engine, "snapshots_taken", 0)
        installed += getattr(engine, "snapshots_installed", 0)
        shipped += getattr(engine, "snapshots_shipped", 0)
        compacted += getattr(engine, "entries_compacted", 0)
        chunks += getattr(engine, "snapshot_chunks_sent", 0)
    return SnapshotCounters(taken=taken, installed=installed,
                            shipped=shipped, entries_compacted=compacted,
                            chunks_sent=chunks)


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Linear-interpolated percentile of pre-sorted values.

    The interpolation is computed as ``lo + (hi - lo) * w`` and clamped
    to ``[lo, hi]`` so floating-point rounding can never push the result
    outside its bracketing pair (which would break monotonicity of
    percentiles, e.g. p5 > p95 on constant data).
    """
    if not sorted_values:
        raise ValueError("no values")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return sorted_values[lower]
    low_value, high_value = sorted_values[lower], sorted_values[upper]
    value = low_value + (high_value - low_value) * (position - lower)
    return min(max(value, low_value), high_value)


def summarize(values: list[float]) -> SummaryStats:
    """Compute :class:`SummaryStats`; raises on an empty sample."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(values)
    count = len(ordered)
    # Clamped like percentile(): floating-point summation can push the
    # mean a ULP outside [min, max] (e.g. three identical values).
    mean = min(max(sum(ordered) / count, ordered[0]), ordered[-1])
    if count > 1:
        variance = sum((v - mean) ** 2 for v in ordered) / (count - 1)
        stdev = math.sqrt(variance)
    else:
        stdev = 0.0
    return SummaryStats(
        count=count, mean=mean, median=percentile(ordered, 0.5),
        stdev=stdev, minimum=ordered[0], maximum=ordered[-1],
        p5=percentile(ordered, 0.05), p95=percentile(ordered, 0.95))
