"""Dependency-free summary statistics for experiment reports."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class SummaryStats:
    """Summary of a sample of measurements."""

    count: int
    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float
    p5: float
    p95: float
    #: Tail percentiles for serving SLOs (0.0 when not computed by an
    #: older caller; ``summarize`` always fills them).
    p99: float = 0.0
    p999: float = 0.0

    def format(self, unit: str = "", scale: float = 1.0) -> str:
        """Human-readable one-liner, e.g. ``'52.1 ms (median 51.3, n=100)'``."""
        return (f"{self.mean * scale:.1f}{unit} "
                f"(median {self.median * scale:.1f}, n={self.count})")


@dataclass(frozen=True)
class SnapshotCounters:
    """Aggregate snapshot/compaction activity across a set of engines
    (every engine exposes the four counters; see BaseEngine)."""

    taken: int = 0
    installed: int = 0
    shipped: int = 0
    entries_compacted: int = 0
    #: Chunk messages sent by leaders (0 under monolithic transfer).
    chunks_sent: int = 0

    def format(self) -> str:
        chunks = (f" ({self.chunks_sent} chunks)" if self.chunks_sent else "")
        return (f"snapshots: {self.taken} taken, {self.shipped} shipped"
                f"{chunks}, {self.installed} installed, "
                f"{self.entries_compacted} entries compacted")


def tally_snapshots(engines: Iterable) -> SnapshotCounters:
    """Sum the per-engine snapshot counters for a report."""
    taken = installed = shipped = compacted = chunks = 0
    for engine in engines:
        taken += getattr(engine, "snapshots_taken", 0)
        installed += getattr(engine, "snapshots_installed", 0)
        shipped += getattr(engine, "snapshots_shipped", 0)
        compacted += getattr(engine, "entries_compacted", 0)
        chunks += getattr(engine, "snapshot_chunks_sent", 0)
    return SnapshotCounters(taken=taken, installed=installed,
                            shipped=shipped, entries_compacted=compacted,
                            chunks_sent=chunks)


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Linear-interpolated percentile of pre-sorted values.

    The interpolation is computed as ``lo + (hi - lo) * w`` and clamped
    to ``[lo, hi]`` so floating-point rounding can never push the result
    outside its bracketing pair (which would break monotonicity of
    percentiles, e.g. p5 > p95 on constant data).
    """
    if not sorted_values:
        raise ValueError("no values")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return sorted_values[lower]
    low_value, high_value = sorted_values[lower], sorted_values[upper]
    value = low_value + (high_value - low_value) * (position - lower)
    return min(max(value, low_value), high_value)


def summarize(values: list[float]) -> SummaryStats:
    """Compute :class:`SummaryStats`; raises on an empty sample."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(values)
    count = len(ordered)
    # Clamped like percentile(): floating-point summation can push the
    # mean a ULP outside [min, max] (e.g. three identical values).
    mean = min(max(sum(ordered) / count, ordered[0]), ordered[-1])
    if count > 1:
        variance = sum((v - mean) ** 2 for v in ordered) / (count - 1)
        stdev = math.sqrt(variance)
    else:
        stdev = 0.0
    return SummaryStats(
        count=count, mean=mean, median=percentile(ordered, 0.5),
        stdev=stdev, minimum=ordered[0], maximum=ordered[-1],
        p5=percentile(ordered, 0.05), p95=percentile(ordered, 0.95),
        p99=percentile(ordered, 0.99), p999=percentile(ordered, 0.999))


class StreamingReservoir:
    """Bounded-memory percentile sketch for high-volume runs.

    Classic reservoir sampling (Algorithm R) with an *injected* rng so
    simulations stay deterministic: every value updates the exact
    count/sum/min/max; a uniform sample of ``capacity`` values stands in
    for the full distribution when percentiles are needed. With tens of
    thousands of sessions, keeping every latency would dominate scenario
    memory; a few thousand samples pin the tail estimates well enough
    for SLO checks.
    """

    __slots__ = ("_capacity", "_rng", "_sample", "count", "total",
                 "minimum", "maximum")

    def __init__(self, capacity: int, rng) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        self._capacity = capacity
        self._rng = rng
        self._sample: list[float] = []
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._sample) < self._capacity:
            self._sample.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self._capacity:
            self._sample[slot] = value

    @property
    def sample(self) -> list[float]:
        return list(self._sample)

    def summary(self) -> SummaryStats:
        """Exact count/mean/min/max; percentiles and stdev estimated
        from the sample. Raises on an empty stream."""
        if not self.count:
            raise ValueError("cannot summarize an empty stream")
        estimated = summarize(self._sample)
        mean = min(max(self.total / self.count, self.minimum), self.maximum)
        return SummaryStats(
            count=self.count, mean=mean, median=estimated.median,
            stdev=estimated.stdev, minimum=self.minimum,
            maximum=self.maximum, p5=estimated.p5, p95=estimated.p95,
            p99=estimated.p99, p999=estimated.p999)


@dataclass(frozen=True)
class RecoveryProbeCounters:
    """Aggregate probe-before-trust outcomes across a set of engines
    (see BaseEngine.recovery_probes_*)."""

    confirmed: int = 0
    rejected: int = 0
    timed_out: int = 0

    def format(self) -> str:
        return (f"recovery probes: {self.confirmed} confirmed, "
                f"{self.rejected} rejected, {self.timed_out} timed out")


def tally_probe_outcomes(engines: Iterable) -> RecoveryProbeCounters:
    """Sum the per-engine recovery-probe counters for a report."""
    confirmed = rejected = timed_out = 0
    for engine in engines:
        confirmed += getattr(engine, "recovery_probes_confirmed", 0)
        rejected += getattr(engine, "recovery_probes_rejected", 0)
        timed_out += getattr(engine, "recovery_probes_timeout", 0)
    return RecoveryProbeCounters(confirmed=confirmed, rejected=rejected,
                                 timed_out=timed_out)
