"""Measurement utilities for the experiments.

- :mod:`repro.metrics.summary` -- dependency-free summary statistics
  (mean, median, percentiles, confidence half-widths).
- :mod:`repro.metrics.series` -- event/value time series with windowed
  aggregation (throughput curves, latency timelines).
- :mod:`repro.metrics.rounds` -- message-round accounting used to validate
  the paper's Fig. 1/Fig. 2 message-flow claims.
"""

from repro.metrics.rounds import hops_from_latency
from repro.metrics.series import EventSeries, ValueSeries
from repro.metrics.summary import (
    RecoveryProbeCounters,
    SnapshotCounters,
    StreamingReservoir,
    SummaryStats,
    summarize,
    tally_probe_outcomes,
    tally_snapshots,
)

__all__ = [
    "EventSeries",
    "RecoveryProbeCounters",
    "SnapshotCounters",
    "StreamingReservoir",
    "SummaryStats",
    "ValueSeries",
    "hops_from_latency",
    "summarize",
    "tally_probe_outcomes",
    "tally_snapshots",
]
