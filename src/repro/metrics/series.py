"""Time-series recording with windowed aggregation.

:class:`EventSeries` records instants (commits, message sends) and turns
them into rates -- the throughput numbers of Fig. 5. :class:`ValueSeries`
records timestamped values (per-proposal latencies) and supports windowed
means -- the timeline of Fig. 4.
"""

from __future__ import annotations

import bisect

from repro.metrics.summary import SummaryStats, summarize


class EventSeries:
    """Monotonic timestamps of point events."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: list[float] = []

    def record(self, time: float) -> None:
        if self._times and time < self._times[-1]:
            # Out-of-order recording is a harness bug worth failing fast on.
            raise ValueError(
                f"event at {time} precedes last event {self._times[-1]}")
        self._times.append(time)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> list[float]:
        return self._times

    def count_between(self, start: float, end: float) -> int:
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return hi - lo

    def rate_between(self, start: float, end: float) -> float:
        """Events per second over ``[start, end]``."""
        if end <= start:
            raise ValueError(f"bad window [{start}, {end}]")
        return self.count_between(start, end) / (end - start)

    def rates_per_window(self, start: float, end: float,
                         window: float) -> list[tuple[float, float]]:
        """(window midpoint, events/s) pairs tiling ``[start, end)``."""
        out = []
        t = start
        while t < end:
            hi = min(t + window, end)
            out.append(((t + hi) / 2, self.count_between(t, hi) / (hi - t)))
            t += window
        return out


class ValueSeries:
    """Timestamped measurements (time, value)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._points: list[tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        self._points.append((time, value))

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> list[tuple[float, float]]:
        return self._points

    def values(self) -> list[float]:
        return [v for _, v in self._points]

    def between(self, start: float, end: float) -> list[tuple[float, float]]:
        return [(t, v) for t, v in self._points if start <= t < end]

    def values_between(self, start: float, end: float) -> list[float]:
        return [v for t, v in self._points if start <= t < end]

    def summary(self) -> SummaryStats:
        return summarize(self.values())

    def window_means(self, start: float, end: float,
                     window: float) -> list[tuple[float, float]]:
        """(window midpoint, mean value) pairs; empty windows skipped."""
        out = []
        t = start
        while t < end:
            hi = min(t + window, end)
            values = self.values_between(t, hi)
            if values:
                out.append(((t + hi) / 2, sum(values) / len(values)))
            t += window
        return out
