"""Message-round accounting for the Fig. 1 / Fig. 2 validation.

Over a network with *constant* one-way delay ``d`` and instantaneous
protocol processing, a commit that takes ``k`` one-way hops on its
critical path completes in exactly ``k * d``. Running the protocols with
all periodic timers made negligible therefore lets us read the hop count
straight off the measured latency, validating the paper's message-flow
diagrams (classic Raft: proposer->leader, AppendEntries out, ack back,
notify = 4 hops, 3 of them leader-coordinated rounds; Fast Raft fast
track: proposer->sites, votes->leader, notify = 3 hops, 2 rounds).
"""

from __future__ import annotations


def hops_from_latency(latency: float, one_way_delay: float,
                      tolerance: float = 0.25) -> int:
    """Infer the hop count from a measured commit latency.

    Raises ``ValueError`` when the latency is not close to an integer
    multiple of the delay (within ``tolerance`` hops), which in tests
    flags timer-driven waits contaminating the measurement.
    """
    if one_way_delay <= 0:
        raise ValueError(f"delay must be positive: {one_way_delay!r}")
    hops = latency / one_way_delay
    nearest = round(hops)
    if abs(hops - nearest) > tolerance:
        raise ValueError(
            f"latency {latency!r} is {hops:.3f} hops of {one_way_delay!r}; "
            f"not within {tolerance} of an integer")
    return int(nearest)
