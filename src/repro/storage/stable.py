"""In-memory stable storage with crash/recovery semantics.

Model: a write to the store is durable the instant it returns (write-
through, fsync-per-write). Mutable objects placed in the store (e.g. the
replicated log) are held by reference, so in-place mutations are durable
immediately too -- a *conservative* durability model: nothing a node did
before crashing is ever lost, matching the paper's assumption that
persistent state "can be read from upon recovery". The paper's
``commitIndex`` is explicitly volatile ("if a site crashes and recovers,
it will need to relearn which log entries are committed"), so nodes must
simply not store it here.
"""

from __future__ import annotations

from typing import Any

from repro.errors import StorageError
from repro.net.sizes import estimate_size


class StableStore:
    """Per-site durable key/value store."""

    def __init__(self, owner: str) -> None:
        self._owner = owner
        self._values: dict[str, Any] = {}
        self._writes = 0
        self._write_bytes = 0

    @property
    def owner(self) -> str:
        return self._owner

    @property
    def write_count(self) -> int:
        """Total durable writes (a cheap proxy for fsync cost in reports)."""
        return self._writes

    @property
    def write_bytes(self) -> int:
        """Payload-weighted durable writes: ``write_count`` treats a
        multi-kilobyte snapshot save and an 8-byte term bump as one fsync
        each, which understates snapshot overhead exactly where the
        catch-up benchmarks care about it. Every write adds its payload
        size (measured for :meth:`set`, caller-supplied for
        :meth:`touch`) to this counter."""
        return self._write_bytes

    def set(self, key: str, value: Any) -> None:
        """Durably store ``value`` under ``key``."""
        self._values[key] = value
        self._writes += 1
        self._write_bytes += max(1, estimate_size(value))

    def touch(self, key: str, size: int = 1) -> None:
        """Record one durable write to a stored *mutable* object that was
        modified in place. The reference model makes such mutations
        durable automatically, but without this the write counter would
        understate fsync cost: callers must touch the key at every
        mutation site (e.g. the engines touch ``"log"`` on log writes).

        ``size`` is the payload written in place (simulated bytes): a
        replication batch passes its entries' size so appending 100
        entries costs more than appending one."""
        if key not in self._values:
            raise StorageError(
                f"{self._owner}: cannot touch unwritten key {key!r}")
        self._writes += 1
        self._write_bytes += max(1, size)

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def require(self, key: str) -> Any:
        """Like :meth:`get` but raises if the key was never written."""
        try:
            return self._values[key]
        except KeyError:
            raise StorageError(
                f"{self._owner}: no stable value for {key!r}") from None

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def keys(self) -> list[str]:
        return sorted(self._values)

    def wipe(self) -> None:
        """Destroy the stored state (models disk loss, NOT a crash)."""
        self._values.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StableStore {self._owner} keys={self.keys()}>"


class StorageFabric:
    """Registry of per-site stores that outlives node objects.

    Crash recovery builds a *new* node object for the same name; handing
    both the old and new object the same :class:`StableStore` via this
    fabric is what makes persistent state survive.
    """

    def __init__(self) -> None:
        self._stores: dict[str, StableStore] = {}

    def store_for(self, name: str) -> StableStore:
        store = self._stores.get(name)
        if store is None:
            store = StableStore(name)
            self._stores[name] = store
        return store

    def forget(self, name: str) -> None:
        """Drop a site's storage entirely (permanent departure)."""
        self._stores.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._stores
