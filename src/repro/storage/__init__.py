"""Stable-storage substrate with crash/recovery semantics.

The paper assumes "each site has a means of stable storage that can be
read from upon recovery". :class:`~repro.storage.stable.StableStore`
models exactly that boundary: values written to the store survive a
crash; everything else a node holds is volatile and lost.
"""

from repro.storage.stable import StableStore, StorageFabric

__all__ = ["StableStore", "StorageFabric"]
