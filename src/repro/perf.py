"""The legacy-core switch: run the pre-refactor hot paths on demand.

The simulation-core speedup work (timer-wheel scheduler, config-entry
index tracking, shared broadcast slices, network fast paths) kept every
observable result byte-identical, so the only way to *measure* the
speedup honestly is to run both cores on the same machine in the same
process. This module is that toggle: the legacy implementations stay in
the tree, each consulted at loop/log construction or per broadcast
round, and ``benchmarks/bench_perf.py`` flips the flag between two runs
of the same cell to report events/sec side by side.

The flag is read:

- by :class:`repro.sim.loop.SimLoop` at construction (binary heap with
  ``Handle.__lt__`` comparisons instead of the timer wheel),
- by :class:`repro.consensus.log.RaftLog` on every governing-config
  lookup (full index-ordered log scan instead of the tracked
  config-entry indices),
- by the engines' AppendEntries broadcast (per-follower message
  construction instead of one shared message per distinct nextIndex),
- by :class:`repro.net.network.Network` at construction and on model
  swaps (always routing through the loss/latency indirection instead of
  the trivial-model fast path).

``REPRO_LEGACY_CORE=1`` in the environment selects the legacy core for
a whole process (worker processes of a sweep inherit it), which is how
the CI perf smoke pins the comparison without touching any call site.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: When True, components below pick their pre-refactor implementation.
LEGACY_CORE: bool = os.environ.get("REPRO_LEGACY_CORE", "") not in ("", "0")


def legacy_core_enabled() -> bool:
    """Current value of the switch (read at component-specific times --
    see the module docstring for which component reads it when)."""
    return LEGACY_CORE


def set_legacy_core(enabled: bool) -> None:
    """Flip the switch for subsequently *constructed* components."""
    global LEGACY_CORE
    LEGACY_CORE = bool(enabled)


@contextmanager
def legacy_core(enabled: bool = True) -> Iterator[None]:
    """Scoped flip: everything built inside runs on the chosen core."""
    previous = LEGACY_CORE
    set_legacy_core(enabled)
    try:
        yield
    finally:
        set_legacy_core(previous)
