"""The legacy-core switch: run the pre-refactor hot paths on demand.

The simulation-core speedup work (timer-wheel scheduler, config-entry
index tracking, shared broadcast slices, network fast paths) kept every
observable result byte-identical, so the only way to *measure* the
speedup honestly is to run both cores on the same machine in the same
process. This module is that toggle: the legacy implementations stay in
the tree, each consulted at loop/log construction or per broadcast
round, and ``benchmarks/bench_perf.py`` flips the flag between two runs
of the same cell to report events/sec side by side.

The flag is read:

- by :class:`repro.sim.loop.SimLoop` at construction (binary heap with
  ``Handle.__lt__`` comparisons instead of the timer wheel; the wheel
  core also binds fused ``call_later``/``call_soon`` variants and
  gates the run-loop GC pause),
- by :class:`repro.consensus.log.RaftLog` on every governing-config
  lookup (full index-ordered log scan instead of the tracked
  config-entry indices) and on ``committed_index_of`` (re-gated scan),
- by :class:`repro.consensus.entry.LogEntry.with_mark` (per-broadcast
  stamp memo: the same stamped copy is shared instead of re-allocated),
- by :class:`repro.consensus.config.Configuration` (``replicas`` memo),
- by the engines' AppendEntries broadcast (per-follower message
  construction instead of one shared message per distinct nextIndex),
- by :class:`repro.consensus.engine.BaseEngine` at construction (legacy
  swaps in the isinstance-gate + per-instance dispatch dict via
  ``_legacy_handle``; the current core uses the class-level ``@handles``
  table, binds ``_send`` straight to the transport, and caches the
  trace-enabled flag -- legacy pins ``_tracing`` True so call sites
  keep building trace payloads),
- by the Fast Raft mixins per call: ``_reclaim_lost_proposals`` early
  exit, ``_proposal_targets`` dedup skip, and the fused synchronous
  gate in ``_handle_append_entries`` (``_SYNC_GATE`` engines insert
  inline instead of allocating a completion closure); the fused
  ``ProposeEntry`` handler is current-core-only by registration order,
  legacy dispatch binds the reference handler explicitly,
- by :class:`repro.net.latency.RegionLatencyModel` at construction
  (flat jittered sampler with precomputed ``lo``/``span`` constants;
  RNG stream unchanged),
- by :class:`repro.net.network.Network` at construction and on model
  swaps (always routing through the loss/latency indirection instead of
  the trivial-model fast path; the current core also enables the
  enveloped send path -- ``send_enveloped`` skips the Envelope
  allocation and unwrap frames, which
  :class:`repro.craft.server.CRaftServer` checks per send),
- by :class:`repro.craft.server.CRaftServer` at construction (the same
  ``_tracing`` pin as the engines, guarding the per-gate trace calls).

``REPRO_LEGACY_CORE=1`` in the environment selects the legacy core for
a whole process (worker processes of a sweep inherit it), which is how
the CI perf smoke pins the comparison without touching any call site.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: When True, components below pick their pre-refactor implementation.
LEGACY_CORE: bool = os.environ.get("REPRO_LEGACY_CORE", "") not in ("", "0")


def legacy_core_enabled() -> bool:
    """Current value of the switch (read at component-specific times --
    see the module docstring for which component reads it when)."""
    return LEGACY_CORE


def set_legacy_core(enabled: bool) -> None:
    """Flip the switch for subsequently *constructed* components."""
    global LEGACY_CORE
    LEGACY_CORE = bool(enabled)


@contextmanager
def legacy_core(enabled: bool = True) -> Iterator[None]:
    """Scoped flip: everything built inside runs on the chosen core."""
    previous = LEGACY_CORE
    set_legacy_core(enabled)
    try:
        yield
    finally:
        set_legacy_core(previous)
