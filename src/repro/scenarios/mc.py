"""Model-checking targets: registered scenarios the explorer can check.

An :class:`McTarget` wraps any :class:`~repro.scenarios.spec.ScenarioSpec`
with the extra knobs bounded exploration needs: the seed, how long to run
the *normal* deterministic schedule before exploration takes over (the
warmup brings the world to the interesting state -- leader elected,
workload drained, schedule events fired), and the liveness step bound.

Targets live in their own registry (parallel to the experiment-level
``Scenario`` registry) because a checkable target is a *(spec, seed,
warmup)* triple, not a sweep: experiments register targets for their own
specs right next to their ``register_scenario`` call, and
``load_catalog()`` populates both registries in one import pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelCheckError
from repro.harness.builder import build_from_spec
from repro.scenarios.spec import ScenarioSpec


@dataclass(frozen=True)
class McTarget:
    """One checkable scenario: spec + seed + warmup + probe bounds."""

    name: str
    spec: ScenarioSpec
    seed: int = 0
    #: Absolute sim time to drive the normal schedule to before the
    #: explorer takes over event ordering.
    warmup: float = 0.0
    description: str = ""
    #: Step bound for the recovered-member rejoin probe (0 disables it).
    liveness_bound: int = 0
    #: Extra liveness probes by registry name (see
    #: ``repro.mc.probes.PROBE_FACTORIES``); each gets the target's
    #: ``liveness_bound`` as its step bound (default 10 when unset).
    probes: tuple[str, ...] = ()


MC_TARGETS: dict[str, McTarget] = {}


def register_mc_target(target: McTarget) -> McTarget:
    if target.name in MC_TARGETS:
        raise ModelCheckError(
            f"duplicate mc target name: {target.name!r}")
    MC_TARGETS[target.name] = target
    return target


def get_mc_target(name: str) -> McTarget:
    from repro.scenarios.runner import load_catalog
    load_catalog()
    try:
        return MC_TARGETS[name]
    except KeyError:
        raise ModelCheckError(
            f"unknown mc target {name!r} "
            f"(see --list; registered: {mc_target_names()})") from None


def mc_target_names() -> list[str]:
    from repro.scenarios.runner import load_catalog
    load_catalog()
    return sorted(MC_TARGETS)


def prepare_world(target: McTarget):
    """Build the target's system and run its normal schedule to the
    warmup point; the returned :class:`~repro.mc.state.World` is the
    exploration root."""
    from repro.mc.state import World
    from repro.scenarios.runner import (
        RunContext,
        arm_timed_events,
        attach_workloads,
        elect_flat_leader,
    )
    spec = target.spec
    system = build_from_spec(spec, target.seed)
    ctx = RunContext(system, spec)
    system.start_all()
    if spec.engine == "craft":
        system.run_until_local_leaders(timeout=spec.leader_timeout)
        system.run_until_global_ready(
            timeout=spec.params.get("global_ready_timeout", 90.0))
    else:
        ctx.initial_leader = elect_flat_leader(system, spec)
    if spec.workload.requests:
        attach_workloads(system, spec, ctx, ctx.initial_leader)
    arm_timed_events(ctx)
    deadline = max(target.warmup, system.loop.now())
    system.loop.run_until(deadline)
    return World(system=system, spec=spec, seed=target.seed, ctx=ctx)
