"""Import-for-effect module: pulls in every scenario provider.

Importing this module populates the drive, probe, and scenario
registries. Worker processes import it (via ``load_catalog``) before
resolving any registered name, so specs built in the parent resolve
identically in the pool.
"""

from __future__ import annotations

# Each import registers drives/probes/scenarios as a side effect.
import repro.experiments.ablations      # noqa: F401
import repro.experiments.catchup        # noqa: F401
import repro.experiments.fig3_latency   # noqa: F401
import repro.experiments.fig4_churn     # noqa: F401
import repro.experiments.fig5_throughput  # noqa: F401
import repro.experiments.flapping       # noqa: F401
import repro.experiments.heavy_traffic  # noqa: F401
import repro.experiments.large_mesh     # noqa: F401
import repro.experiments.mc_scenarios   # noqa: F401
import repro.experiments.migrated_region  # noqa: F401
import repro.experiments.rounds         # noqa: F401
import repro.experiments.two_region_failover  # noqa: F401
