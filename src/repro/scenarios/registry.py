"""The named scenario registry.

Every experiment registers a :class:`Scenario`: how to build its config
for a mode (``quick`` / ``full`` / ``smoke``), how to run its sweep (with
a ``jobs`` fan-out degree), and how to render / verify the result. The
CLI (``python -m repro.experiments --scenario <name> --jobs N``), the
benchmarks, and CI all go through this registry instead of importing
driver functions ad hoc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ExperimentError


def _default_tables(result: Any) -> list:
    # Imported lazily: the experiment modules import this registry at
    # module level, so the reverse import must not happen at load time.
    from repro.experiments.base import ResultTable
    if isinstance(result, ResultTable):
        return [result]
    if isinstance(result, (list, tuple)):
        return [t for r in result for t in _default_tables(r)]
    return [result.table()]


def _default_check(result: Any) -> None:
    if isinstance(result, (list, tuple)):
        for item in result:
            _default_check(item)
        return
    check = getattr(result, "check_shape", None)
    if check is not None:
        check()


@dataclass
class Scenario:
    """A registered, runnable scenario (usually a sweep of cells)."""

    name: str
    description: str
    #: mode -> config object understood by :attr:`run`.
    make_config: Callable[[str], Any]
    #: ``run(config, jobs=N) -> result``.
    run: Callable[..., Any]
    modes: tuple[str, ...] = ("quick", "full")
    tables: Callable[[Any], list] = _default_tables
    check: Callable[[Any], None] = _default_check

    def as_dict(self, result: Any) -> dict[str, Any]:
        return {"scenario": self.name,
                "tables": [t.as_dict() for t in self.tables(result)]}


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    if scenario.name in _REGISTRY:
        raise ExperimentError(
            f"scenario already registered: {scenario.name!r}")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    from repro.scenarios.runner import load_catalog
    load_catalog()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario: {name!r} (known: {scenario_names()})"
        ) from None


def scenario_names() -> list[str]:
    from repro.scenarios.runner import load_catalog
    load_catalog()
    return sorted(_REGISTRY)


def run_scenario(name: str, mode: str = "quick", jobs: int = 1):
    """Convenience: resolve, configure, and run a scenario by name."""
    scenario = get_scenario(name)
    if mode not in scenario.modes:
        raise ExperimentError(
            f"scenario {name!r} has no mode {mode!r} "
            f"(choose from {scenario.modes})")
    config = scenario.make_config(mode)
    return scenario, scenario.run(config, jobs=jobs)
