"""Scenario execution and the process-parallel sweep runner.

``run_cell(spec, seed)`` executes one :class:`ScenarioSpec` in a fresh,
isolated :class:`~repro.sim.loop.SimLoop` and returns picklable metrics.
Which code drives the run and which extracts the metrics are *registered
functions* looked up by name (``spec.drive`` / ``spec.probe``), so specs
travel across process boundaries and workers resolve the names locally.

:class:`SweepRunner` fans a list of :class:`Cell`\\ s out across
``multiprocessing`` workers. Because every cell is a self-contained
simulation (own loop, own RNG registry, own fabric), parallelism is
embarrassingly safe: serial and parallel execution produce identical
results, in cell order, for the same specs and seeds. The pool itself
is module-persistent -- spin-up and per-worker catalog imports are paid
once per process, not once per sweep -- and :func:`close_sweep_pool`
(also an ``atexit`` hook) tears it down.
"""

from __future__ import annotations

import atexit
import multiprocessing
import pathlib
import re
from contextlib import contextmanager
from typing import Any, Callable

from repro.consensus.engine import Role
from repro.errors import ExperimentError
from repro.harness.builder import build_from_spec
from repro.harness.checkers import run_safety_checks
from repro.harness.faults import FaultInjector
from repro.harness.workload import ClosedLoopWorkload, PoissonWorkload
from repro.metrics.summary import summarize
from repro.scenarios.spec import Cell, Event, ScenarioSpec

# ----------------------------------------------------------------------
# Drive / probe registries
# ----------------------------------------------------------------------
DRIVES: dict[str, Callable] = {}
PROBES: dict[str, Callable] = {}


def drive(name: str):
    """Register a drive: ``fn(system, spec) -> picklable metrics``."""
    def decorator(fn):
        DRIVES[name] = fn
        return fn
    return decorator


def probe(name: str):
    """Register a probe: ``fn(ctx) -> picklable metrics``."""
    def decorator(fn):
        PROBES[name] = fn
        return fn
    return decorator


_catalog_loaded = False


def load_catalog() -> None:
    """Import every scenario-providing module (idempotent).

    Workers call this before resolving drive / probe / scenario names,
    so a spec built in one process runs identically in another.
    """
    global _catalog_loaded
    if not _catalog_loaded:
        _catalog_loaded = True
        import repro.scenarios.catalog  # noqa: F401  (import-for-effect)


def resolve_drive(name: str) -> Callable:
    load_catalog()
    try:
        return DRIVES[name]
    except KeyError:
        raise ExperimentError(f"unknown drive: {name!r}") from None


def resolve_probe(name: str) -> Callable:
    load_catalog()
    try:
        return PROBES[name]
    except KeyError:
        raise ExperimentError(f"unknown probe: {name!r}") from None


# ----------------------------------------------------------------------
# Run context: what drives build up and probes read
# ----------------------------------------------------------------------
class RunContext:
    """State shared between the generic drive steps and the probes."""

    def __init__(self, system, spec: ScenarioSpec) -> None:
        self.system = system
        self.spec = spec
        self.initial_leader: str | None = None
        self.clients: list = []
        self.workloads: list[ClosedLoopWorkload | PoissonWorkload] = []
        self.faults = FaultInjector(system)
        #: (fire time, event, resolved sites) per fired schedule event.
        self.fired: list[tuple[float, Event, list[str]]] = []
        self.topology = getattr(system, "topology", None)
        #: Site order positional selectors resolve against (overridden
        #: for cluster-scoped events, e.g. C-Raft catch-up).
        self.server_order: list[str] = list(system.servers)

    def total_completed(self) -> int:
        return sum(w.completed_count for w in self.workloads)

    def all_done(self) -> bool:
        return all(w.done for w in self.workloads)

    def fire(self, event: Event) -> list[str]:
        sites = self.faults.apply_event(
            event, server_order=self.server_order,
            initial_leader=self.initial_leader, topology=self.topology)
        self.fired.append((self.system.loop.now(), event, sites))
        return sites


# ----------------------------------------------------------------------
# Generic drive steps
# ----------------------------------------------------------------------
def elect_flat_leader(cluster, spec: ScenarioSpec) -> str:
    """Run until a leader exists; honours ``params['leader_step']``."""
    step = spec.params.get("leader_step", 0.01)
    if not cluster.run_until(lambda: cluster.leader() is not None,
                             spec.leader_timeout, step=step):
        raise ExperimentError(
            f"scenario {spec.name!r}: no leader within "
            f"{spec.leader_timeout}s")
    return cluster.leader()


def proposer_sites(system, spec: ScenarioSpec, leader: str | None
                   ) -> list[str]:
    wl = spec.workload
    if wl.placement == "leader":
        return [leader]
    if wl.placement == "random":
        stream = system.rng.stream(wl.rng_stream)
        return [stream.choice(sorted(system.servers))]
    if wl.placement == "first_nonleader":
        return [next(n for n in system.servers if n != leader)]
    if wl.placement == "round_robin":
        ordered = sorted(system.servers)
        return [ordered[i % len(ordered)] for i in range(wl.proposers)]
    return list(wl.sites)


def attach_workloads(system, spec: ScenarioSpec, ctx: RunContext,
                     leader: str | None) -> None:
    """Create the spec's clients + workloads (closed-loop or Poisson
    open-loop, per ``WorkloadSpec.arrival``) and start them."""
    wl = spec.workload
    for index, site in enumerate(proposer_sites(system, spec, leader)):
        name = (wl.client_names[index]
                if index < len(wl.client_names) else None)
        client = system.add_client(site=site, name=name,
                                   proposal_timeout=wl.proposal_timeout)
        if wl.arrival == "poisson":
            workload = PoissonWorkload(
                client, system.loop, wl.rate, max_requests=wl.requests,
                command_factory=wl.command_factory(index))
        else:
            workload = ClosedLoopWorkload(
                client, max_requests=wl.requests,
                command_factory=wl.command_factory(index))
        ctx.clients.append(client)
        ctx.workloads.append(workload)
    for index, workload in enumerate(ctx.workloads):
        if isinstance(workload, PoissonWorkload):
            # One dedicated stream per proposer keeps arrivals
            # independent of each other and of the fabric's RNG use.
            workload.start(system.rng.stream(f"{wl.rng_stream}.{index}"))
        else:
            workload.start()


def arm_timed_events(ctx: RunContext) -> None:
    now = ctx.system.loop.now()
    for event in ctx.spec.schedule.timed():
        # Election etc. may already have advanced the clock past an early
        # event time; fire immediately rather than refusing the cell.
        ctx.system.loop.call_at(max(event.at, now), ctx.fire, event)


def run_commit_triggered_events(ctx: RunContext) -> None:
    """Fire commit-count-triggered events in threshold order.

    Mirrors the hand-written drivers: run until the workload total
    reaches the threshold, then apply the group's events at that
    instant.
    """
    spec = ctx.spec
    for threshold, events in spec.schedule.commit_triggered():
        reached = ctx.system.run_until(
            lambda: ctx.total_completed() >= threshold,
            timeout=spec.timeout)
        if not reached:
            raise ExperimentError(
                f"scenario {spec.name!r}: stalled at "
                f"{ctx.total_completed()} commits before the "
                f"commit-{threshold} events")
        for event in events:
            ctx.fire(event)


def run_workload_to_completion(ctx: RunContext) -> None:
    spec = ctx.spec
    if not ctx.system.run_until(ctx.all_done, timeout=spec.timeout):
        requested = (spec.workload.requests or 0) * len(ctx.workloads)
        raise ExperimentError(
            f"scenario {spec.name!r}: finished only "
            f"{ctx.total_completed()}/{requested} commits")


def settle_and_check(ctx: RunContext) -> None:
    spec = ctx.spec
    if spec.settle:
        ctx.system.run_for(spec.settle)
    if spec.safety_checks:
        run_safety_checks(ctx.system.servers.values(), ctx.system.trace)


# ----------------------------------------------------------------------
# Built-in drives
# ----------------------------------------------------------------------
@drive("closed_loop")
def drive_closed_loop(system, spec: ScenarioSpec):
    """The standard figure shape: elect, load, schedule, finish, probe."""
    ctx = RunContext(system, spec)
    system.start_all()
    ctx.initial_leader = elect_flat_leader(system, spec)
    attach_workloads(system, spec, ctx, ctx.initial_leader)
    arm_timed_events(ctx)
    run_commit_triggered_events(ctx)
    run_workload_to_completion(ctx)
    settle_and_check(ctx)
    return resolve_probe(spec.probe)(ctx)


def _data_commits(server) -> int:
    from repro.consensus.entry import EntryKind
    return sum(1 for _, e in server.applied_log
               if e.kind is EntryKind.DATA)


@drive("throughput_window")
def drive_throughput_window(system, spec: ScenarioSpec) -> float:
    """Warm up, then count committed entries over a measurement window.

    For ``craft`` the numerator is entries applied from the global log
    (the Fig. 5 metric); for the flat engines it is DATA entries applied
    at the leader.
    """
    warmup = spec.params["warmup"]
    duration = spec.params["duration"]
    ctx = RunContext(system, spec)
    system.start_all()
    if spec.engine == "craft":
        system.run_until_local_leaders(timeout=spec.leader_timeout)
        system.run_until_global_ready(
            timeout=spec.params.get("global_ready_timeout", 90.0))
        attach_workloads(system, spec, ctx, leader=None)
        arm_timed_events(ctx)
        system.run_for(warmup)
        start_count = system.total_global_applied()
        system.run_for(duration)
        end_count = system.total_global_applied()
    else:
        ctx.initial_leader = elect_flat_leader(system, spec)
        attach_workloads(system, spec, ctx, ctx.initial_leader)
        arm_timed_events(ctx)
        system.run_for(warmup)
        leader = next(s for s in system.servers.values()
                      if s.engine.role is Role.LEADER)
        start_count = _data_commits(leader)
        system.run_for(duration)
        end_count = _data_commits(leader)
    for workload in ctx.workloads:
        workload.stop()
    return (end_count - start_count) / duration


# ----------------------------------------------------------------------
# Built-in probes
# ----------------------------------------------------------------------
@probe("latency_summary")
def probe_latency_summary(ctx: RunContext):
    return summarize([value for w in ctx.workloads
                      for value in w.latencies()])


@probe("mean_latency")
def probe_mean_latency(ctx: RunContext) -> float:
    return probe_latency_summary(ctx).mean


# ----------------------------------------------------------------------
# Cell execution + the sweep runner
# ----------------------------------------------------------------------
def run_cell(spec: ScenarioSpec, seed: int,
             profile_dir: str | None = None, label: str | None = None):
    """Execute one scenario cell in an isolated simulation.

    With ``profile_dir`` set the cell runs under :mod:`cProfile` and
    dumps raw stats to ``<profile_dir>/cell_<label>.pstats`` (load with
    :class:`pstats.Stats`); the metrics returned are unchanged, and the
    dump happens in whichever process runs the cell -- so parallel
    sweeps profile each cell inside its worker.
    """
    fn = resolve_drive(spec.drive)
    system = build_from_spec(spec, seed)
    if profile_dir is None:
        return fn(system, spec)
    import cProfile
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", label or f"{spec.name}_{seed}")
    path = pathlib.Path(profile_dir)
    path.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return fn(system, spec)
    finally:
        profiler.disable()
        profiler.dump_stats(path / f"cell_{slug}.pstats")


def _pool_entry(task: tuple[ScenarioSpec, int, str | None, str]):
    """Worker-side wrapper: success flag + payload.

    Exceptions are flattened to a string rather than pickled back --
    arbitrary exception objects (tracebacks, simulation state in args)
    are not reliably picklable, and a worker dying on the *reply* would
    hang the sweep.
    """
    spec, seed, profile_dir, label = task
    try:
        return True, run_cell(spec, seed, profile_dir, label)
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        return False, f"{type(exc).__name__}: {exc}"


#: The reusable worker pool: (pool, (workers, start_method)). Spinning a
#: pool up costs fork/spawn plus a catalog import per worker; benchmarks
#: and the CLI run many sweeps per process, so the pool persists across
#: SweepRunner calls and is torn down at interpreter exit (or explicitly
#: via close_sweep_pool).
_POOL: Any = None
_POOL_KEY: tuple[int, str] | None = None

#: Default per-cell profile directory (see per_cell_profiles).
_PROFILE_DIR: str | None = None


def sweep_pool(workers: int):
    """The shared pool, rebuilt only when the requested shape changes.

    Callers outside this module (the perf benchmark) use it to run work
    in a warm, quiet worker process without paying pool spin-up per
    call; they must not close it -- :func:`close_sweep_pool` owns that.
    """
    global _POOL, _POOL_KEY
    methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in methods else "spawn"
    key = (workers, method)
    if _POOL is None or _POOL_KEY != key:
        close_sweep_pool()
        context = multiprocessing.get_context(method)
        _POOL = context.Pool(processes=workers, initializer=load_catalog)
        _POOL_KEY = key
    return _POOL


def close_sweep_pool() -> None:
    """Terminate the shared sweep pool (idempotent).

    Called automatically at interpreter exit and whenever a worker cell
    fails (a broken sweep must not leave siblings burning CPU); call it
    explicitly to release the worker processes early, e.g. between
    benchmark phases that need the machine quiet.
    """
    global _POOL, _POOL_KEY
    pool, _POOL, _POOL_KEY = _POOL, None, None
    if pool is not None:
        pool.terminate()
        pool.join()


atexit.register(close_sweep_pool)


@contextmanager
def per_cell_profiles(directory: str | pathlib.Path):
    """Every sweep cell run inside this context dumps a cProfile stats
    file into ``directory`` -- including cells executed by pool workers,
    which profile in-process and write from the worker."""
    global _PROFILE_DIR
    previous = _PROFILE_DIR
    _PROFILE_DIR = str(directory)
    try:
        yield
    finally:
        _PROFILE_DIR = previous


def _cell_label(cell: Cell) -> str:
    return "_".join(str(part) for part in cell.key) + f"_{cell.seed}"


class SweepRunner:
    """Runs sweep cells, optionally across worker processes.

    ``jobs=1`` (the serial fallback) executes in-process; ``jobs=N``
    uses a shared ``multiprocessing`` pool that persists across sweeps
    (see :func:`close_sweep_pool`). Results come back in cell order
    either way, and -- because each cell is a hermetic simulation keyed
    only by ``(spec, seed)`` -- the two modes produce identical values.

    A cell that raises in a worker surfaces as :class:`ExperimentError`
    naming the cell, and the pool is terminated rather than leaked.
    """

    def __init__(self, jobs: int = 1,
                 profile_dir: str | None = None) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1: {jobs!r}")
        self.jobs = jobs
        self.profile_dir = profile_dir

    def map(self, cells: list[Cell]) -> list[Any]:
        """Metrics for every cell, in cell order."""
        load_catalog()
        profile_dir = self.profile_dir or _PROFILE_DIR
        if self.jobs == 1 or len(cells) <= 1:
            return [run_cell(cell.spec, cell.seed, profile_dir,
                             _cell_label(cell)) for cell in cells]
        pool = sweep_pool(self.jobs)
        tasks = [(cell.spec, cell.seed, profile_dir, _cell_label(cell))
                 for cell in cells]
        results: list[Any] = []
        try:
            # imap keeps result order while pairing each reply with its
            # cell, so a failure is attributed by name.
            for cell, (ok, payload) in zip(cells,
                                           pool.imap(_pool_entry, tasks)):
                if not ok:
                    raise ExperimentError(
                        f"sweep cell {cell.spec.name!r} "
                        f"(key={cell.key}, seed={cell.seed}) "
                        f"failed in worker: {payload}")
                results.append(payload)
        except BaseException:
            close_sweep_pool()
            raise
        return results

    def run(self, cells: list[Cell]) -> dict[tuple, Any]:
        """Like :meth:`map`, keyed by each cell's ``key``."""
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            duplicates = sorted({k for k in keys if keys.count(k) > 1})
            raise ExperimentError(
                f"sweep cells have duplicate keys: {duplicates}")
        return {cell.key: result
                for cell, result in zip(cells, self.map(cells))}
