"""Declarative scenario descriptions.

A :class:`ScenarioSpec` is a complete, picklable description of one
simulated run: which engine, how many sites and where they sit, the
protocol timing, the network conditions (latency / loss / bandwidth), a
time- or commit-ordered :class:`EventSchedule` of dynamic-network actions
(the paper's churn, partitions, and ``tc`` swaps), the workload, and how
to drive and measure the run (registered drive/probe names, so specs
cross process boundaries for the parallel sweep runner).

Experiments declare grids of specs (*cells*) instead of hand-scripting
topology construction and fault injection; the
:mod:`repro.scenarios.runner` executes cells serially or across worker
processes with identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.consensus.config import TransferConfig
from repro.consensus.timing import TimingConfig
from repro.craft.batching import BatchPolicy
from repro.errors import ExperimentError
from repro.net.latency import (
    BandwidthLatencyModel,
    ConstantLatency,
    LatencyModel,
    RegionLatencyModel,
    SharedLinkBandwidthModel,
    UniformLatency,
)
from repro.net.loss import BernoulliLoss, LossModel
from repro.net.topology import Topology
from repro.snapshot import CompactionPolicy


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TopologySpec:
    """Where the sites sit.

    With ``regions`` empty the scenario is a flat single-region cluster
    of ``n_sites`` (the classic-Raft / Fast Raft setups). With regions
    set, sites are placed region by region -- evenly when
    ``region_sizes`` is empty, else ``region_sizes[i]`` sites in
    ``regions[i]`` -- and each region doubles as a C-Raft cluster.
    """

    n_sites: int = 5
    regions: tuple[str, ...] = ()
    region_sizes: tuple[int, ...] = ()
    name_prefix: str = "n"

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise ExperimentError(f"need at least one site: {self.n_sites!r}")
        if self.region_sizes:
            if len(self.region_sizes) != len(self.regions):
                raise ExperimentError(
                    "region_sizes must pair up with regions")
            if sum(self.region_sizes) != self.n_sites:
                raise ExperimentError(
                    f"region_sizes {self.region_sizes!r} do not sum to "
                    f"{self.n_sites} sites")

    def build(self) -> Topology | None:
        """The :class:`Topology`, or None for a flat cluster."""
        if not self.regions:
            return None
        if not self.region_sizes:
            return Topology.even_clusters(self.n_sites, list(self.regions),
                                          name_prefix=self.name_prefix)
        topo = Topology()
        index = 0
        for region, size in zip(self.regions, self.region_sizes):
            for _ in range(size):
                topo.add_node(f"{self.name_prefix}{index}", region=region,
                              cluster=region)
                index += 1
        return topo

    def site_names(self) -> list[str]:
        topo = self.build()
        if topo is not None:
            return topo.nodes
        return [f"{self.name_prefix}{i}" for i in range(self.n_sites)]


# ----------------------------------------------------------------------
# Network models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LatencySpec:
    """Declarative latency model.

    Kinds: ``default`` (the builder's intra-region default),
    ``constant`` (``delay`` one-way seconds), ``uniform`` (``[low,
    high)``), ``regions`` (the AWS-like matrix from
    :mod:`repro.experiments.regions` over the scenario topology), and
    ``rtt_matrix`` (an explicit ``(region_a, region_b, rtt)`` table).
    ``bandwidth`` (simulated bytes/second) wraps the base model so
    message delays charge payload size; ``shared_link`` upgrades that to
    the congestion-aware queueing model.
    """

    kind: str = "default"
    delay: float = 0.0
    low: float = 0.0
    high: float = 0.0
    rtts: tuple[tuple[str, str, float], ...] = ()
    intra_rtt: float = 0.001
    jitter: float = 0.10
    bandwidth: float | None = None
    shared_link: bool = False

    def __post_init__(self) -> None:
        if self.shared_link and self.bandwidth is None:
            raise ExperimentError(
                "shared_link needs a bandwidth (the congestion model is "
                "a queue on the serialization delay)")

    @classmethod
    def constant(cls, delay: float, **kwargs) -> "LatencySpec":
        return cls(kind="constant", delay=delay, **kwargs)

    @classmethod
    def aws_regions(cls, jitter: float = 0.10, **kwargs) -> "LatencySpec":
        return cls(kind="regions", jitter=jitter, **kwargs)

    def build(self, topology: Topology | None) -> LatencyModel | None:
        """Instantiate the model (None means "builder default")."""
        base: LatencyModel | None
        if self.kind == "default":
            base = None
        elif self.kind == "constant":
            base = ConstantLatency(self.delay)
        elif self.kind == "uniform":
            base = UniformLatency(self.low, self.high)
        elif self.kind == "regions":
            if topology is None:
                raise ExperimentError(
                    "latency kind 'regions' needs a region topology")
            from repro.experiments.regions import latency_model_for
            base = latency_model_for(topology, jitter=self.jitter)
        elif self.kind == "rtt_matrix":
            if topology is None:
                raise ExperimentError(
                    "latency kind 'rtt_matrix' needs a region topology")
            base = RegionLatencyModel(
                dict(topology.node_regions),
                {(a, b): rtt for a, b, rtt in self.rtts},
                intra_rtt=self.intra_rtt, jitter=self.jitter)
        else:
            raise ExperimentError(f"unknown latency kind: {self.kind!r}")
        if self.bandwidth is None:
            return base
        if base is None:
            from repro.harness.builder import DEFAULT_LATENCY
            base = DEFAULT_LATENCY
        wrapper = (SharedLinkBandwidthModel if self.shared_link
                   else BandwidthLatencyModel)
        return wrapper(base, self.bandwidth)


@dataclass(frozen=True)
class LossSpec:
    """Bernoulli message loss; rate 0 keeps the RNG-free reliable path."""

    rate: float = 0.0

    def build(self) -> LossModel | None:
        if self.rate == 0.0:
            return None
        return BernoulliLoss(self.rate)


# ----------------------------------------------------------------------
# Event schedule
# ----------------------------------------------------------------------
#: Fault / network actions an Event may name (resolved against
#: FaultInjector methods or the network-model swaps).
EVENT_ACTIONS = frozenset({
    "crash", "recover", "silent_leave", "silent_return", "announced_leave",
    "request_join", "partition", "heal_partition", "set_loss",
    "set_link_loss", "set_bandwidth", "set_latency",
})


@dataclass(frozen=True)
class Event:
    """One scheduled action against the running system.

    Exactly one trigger must be set: ``at`` (absolute sim seconds) or
    ``after_commits`` (total completed workload commits). ``target`` is
    a site selector -- a literal site name, ``"leader"`` (the initial
    leader), ``"nonleader:<i>"`` (the i-th non-leader by sorted site id,
    excluding the *fire-time* leader), or ``"cluster:<name>"`` (every
    site of that cluster). ``args`` carry action parameters: partition
    groups, a loss rate, ``(src, dst, rate)`` for ``set_link_loss``,
    ``(bytes_per_second,)`` (optionally ``(bytes_per_second, shared)``)
    for ``set_bandwidth``, a :class:`LatencySpec`, or a join contact --
    ``(contact,)`` or ``(contact, replaces)`` for ``request_join``,
    where ``replaces`` is the seat hint carried on the
    :class:`~repro.consensus.messages.JoinRequest`.
    """

    action: str
    target: str = ""
    at: float | None = None
    after_commits: int | None = None
    args: tuple = ()

    def __post_init__(self) -> None:
        if self.action not in EVENT_ACTIONS:
            raise ExperimentError(f"unknown event action: {self.action!r}")
        if (self.at is None) == (self.after_commits is None):
            raise ExperimentError(
                f"event {self.action!r} needs exactly one trigger "
                f"(at= or after_commits=)")


@dataclass(frozen=True)
class EventSchedule:
    """A schedule of :class:`Event`\\ s, kept in declaration order."""

    events: tuple[Event, ...] = ()

    def timed(self) -> list[Event]:
        """Time-triggered events, ordered by fire time."""
        return sorted((e for e in self.events if e.at is not None),
                      key=lambda e: e.at)

    def commit_triggered(self) -> list[tuple[int, list[Event]]]:
        """Commit-count-triggered events, grouped by threshold."""
        groups: dict[int, list[Event]] = {}
        for event in self.events:
            if event.after_commits is not None:
                groups.setdefault(event.after_commits, []).append(event)
        return sorted(groups.items())

    @classmethod
    def flapping_link(cls, groups: tuple[tuple[str, ...], ...], *,
                      first_outage: float, outage: float, stable: float,
                      cycles: int) -> "EventSchedule":
        """A WAN link that alternates outages with short stability windows.

        From ``first_outage`` the link between ``groups`` is cut for
        ``outage`` seconds, then healed for ``stable`` seconds, repeated
        ``cycles`` times -- the short-lived stability windows of rooted
        dynamic networks (Winkler et al.). Sites inside one group keep
        talking throughout.
        """
        events: list[Event] = []
        t = first_outage
        for _ in range(cycles):
            events.append(Event("partition", at=t, args=(groups,)))
            t += outage
            events.append(Event("heal_partition", at=t))
            t += stable
        return cls(events=tuple(events))

    def outage_windows(self) -> list[tuple[float, float]]:
        """``(start, end)`` of every partition interval in the schedule."""
        windows: list[tuple[float, float]] = []
        start: float | None = None
        for event in self.timed():
            if event.action == "partition" and start is None:
                start = event.at
            elif event.action == "heal_partition" and start is not None:
                windows.append((start, event.at))
                start = None
        if start is not None:
            windows.append((start, float("inf")))
        return windows


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """Proposers: where they sit, what they submit, and how they pace.

    ``placement`` decides the proposer sites: ``leader``, ``random``
    (one site drawn from ``rng_stream``), ``first_nonleader``,
    ``round_robin`` (``proposers`` clients over the sorted site list),
    or ``sites`` (the explicit ``sites`` tuple, in order). ``command``
    picks the submitted payloads: ``default`` (``k<seq>``), ``keyed``
    (``<prefixes[i]>.<seq>``), or ``payload`` (``value_bytes`` of
    filler per value). ``arrival`` picks the pacing: ``closed_loop``
    (the paper's proposers -- next command after the previous commit) or
    ``poisson`` (open-loop, exponential inter-arrivals at ``rate``
    requests/second from the ``rng_stream`` random stream).
    """

    placement: str = "leader"
    proposers: int = 1
    sites: tuple[str, ...] = ()
    client_names: tuple[str, ...] = ()
    requests: int | None = None
    proposal_timeout: float | None = None
    command: str = "default"
    prefixes: tuple[str, ...] = ()
    value_bytes: int = 0
    arrival: str = "closed_loop"
    rate: float = 0.0
    rng_stream: str = "scenario.proposer"

    def __post_init__(self) -> None:
        if self.placement not in ("leader", "random", "first_nonleader",
                                  "round_robin", "sites"):
            raise ExperimentError(
                f"unknown workload placement: {self.placement!r}")
        if self.placement == "sites" and not self.sites:
            raise ExperimentError("placement 'sites' needs a sites tuple")
        if self.command not in ("default", "keyed", "payload"):
            raise ExperimentError(f"unknown command kind: {self.command!r}")
        if self.arrival not in ("closed_loop", "poisson"):
            raise ExperimentError(f"unknown arrival kind: {self.arrival!r}")
        if self.arrival == "poisson" and self.rate <= 0:
            raise ExperimentError(
                "poisson arrivals need a positive rate (requests/second)")

    def command_factory(self, index: int):
        """The per-proposer command factory (None = workload default)."""
        if self.command == "default":
            return None
        if self.command == "keyed":
            prefix = self.prefixes[index]
            return lambda seq, p=prefix: {"op": "put", "key": f"{p}.{seq}",
                                          "value": seq}
        value = "x" * self.value_bytes
        return lambda seq, v=value: {"op": "put", "key": f"k{seq}",
                                     "value": f"{v}{seq}"}


# ----------------------------------------------------------------------
# The scenario itself
# ----------------------------------------------------------------------
ENGINES = ("raft", "fastraft", "craft")


@dataclass(frozen=True)
class SLOSpec:
    """Service-level objectives a scenario asserts over its measured
    serving behaviour; ``None`` fields are unchecked. Latency bounds are
    sim-seconds; throughput is applied entries per sim-second."""

    p50: float | None = None
    p99: float | None = None
    p999: float | None = None
    max_latency: float | None = None
    max_abandoned_fraction: float | None = None
    min_throughput: float | None = None

    def check(self, latency: Any = None, throughput: float | None = None,
              abandoned_fraction: float | None = None) -> None:
        """Raise :class:`ExperimentError` naming every violated bound.

        ``latency`` is a :class:`~repro.metrics.summary.SummaryStats`
        (or anything with median/p99/p999/maximum attributes).
        """
        failures: list[str] = []

        def bound(label: str, measured: float | None,
                  limit: float | None, at_least: bool = False) -> None:
            if limit is None or measured is None:
                return
            bad = measured < limit if at_least else measured > limit
            if bad:
                op = "<" if at_least else ">"
                failures.append(f"{label} {measured:.4g} {op} {limit:.4g}")

        if latency is not None:
            bound("p50", latency.median, self.p50)
            bound("p99", latency.p99, self.p99)
            bound("p999", latency.p999, self.p999)
            bound("max", latency.maximum, self.max_latency)
        bound("throughput", throughput, self.min_throughput, at_least=True)
        bound("abandoned_fraction", abandoned_fraction,
              self.max_abandoned_fraction)
        if failures:
            raise ExperimentError("SLO violated: " + "; ".join(failures))


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully described simulation cell. Picklable end to end."""

    name: str
    engine: str = "fastraft"
    topology: TopologySpec = field(default_factory=TopologySpec)
    timing: TimingConfig | None = None
    global_timing: TimingConfig | None = None
    batch: BatchPolicy | None = None
    #: Leader-side ClientRequest coalescing for the flat engines (craft
    #: batches at the global level via ``batch`` instead).
    propose_batch: BatchPolicy | None = None
    #: Serving objectives the drive asserts before reporting (optional).
    slo: SLOSpec | None = None
    compaction: CompactionPolicy | None = None
    global_compaction: CompactionPolicy | None = None
    transfer: TransferConfig | None = None
    latency: LatencySpec = field(default_factory=LatencySpec)
    loss: LossSpec = field(default_factory=LossSpec)
    schedule: EventSchedule = field(default_factory=EventSchedule)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    #: Registered drive executing the run (see repro.scenarios.runner).
    drive: str = "closed_loop"
    #: Registered probe extracting the cell metrics (drive-dependent).
    probe: str = "latency_summary"
    #: State-machine class applied at every site (None = engine default).
    state_machine: Any = None
    trace: bool = True
    safety_checks: bool = True
    #: Sim-seconds to run after the workload before safety checks.
    settle: float = 0.0
    timeout: float = 600.0
    leader_timeout: float = 30.0
    #: Free-form drive/probe parameters (must stay picklable).
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ExperimentError(f"unknown engine: {self.engine!r}")
        if self.engine == "craft" and not self.topology.regions:
            raise ExperimentError("craft scenarios need a region topology")


@dataclass(frozen=True)
class Cell:
    """One sweep cell: a spec, its seed, and a stable key for assembly."""

    key: tuple
    spec: ScenarioSpec
    seed: int
