"""Declarative scenarios: specs, a named registry, and a parallel sweep
runner (see README "Scenario registry")."""

from repro.scenarios.registry import (
    Scenario,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.scenarios.runner import (
    RunContext,
    SweepRunner,
    close_sweep_pool,
    drive,
    per_cell_profiles,
    probe,
    run_cell,
)
from repro.scenarios.spec import (
    Cell,
    Event,
    EventSchedule,
    LatencySpec,
    LossSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

__all__ = [
    "Cell",
    "Event",
    "EventSchedule",
    "LatencySpec",
    "LossSpec",
    "RunContext",
    "Scenario",
    "ScenarioSpec",
    "SweepRunner",
    "TopologySpec",
    "WorkloadSpec",
    "close_sweep_pool",
    "drive",
    "get_scenario",
    "per_cell_profiles",
    "probe",
    "register_scenario",
    "run_cell",
    "run_scenario",
    "scenario_names",
]
