"""A replicated key-value store: the stock application state machine.

Commands are plain dicts built by :class:`KVCommand` so they stay
serialization-friendly (the simulated network passes objects by value
semantically, and real deployments would JSON-encode them).
"""

from __future__ import annotations

from typing import Any

from repro.smr.machine import StateMachine


class KVCommand:
    """Builders for the KV command vocabulary."""

    @staticmethod
    def put(key: str, value: Any) -> dict[str, Any]:
        return {"op": "put", "key": key, "value": value}

    @staticmethod
    def delete(key: str) -> dict[str, Any]:
        return {"op": "delete", "key": key}

    @staticmethod
    def append(key: str, value: str) -> dict[str, Any]:
        return {"op": "append", "key": key, "value": value}


class KVStateMachine(StateMachine):
    """Dictionary state with put/delete/append commands."""

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}

    def apply(self, command: Any) -> Any:
        if not isinstance(command, dict):
            raise ValueError(f"KV commands are dicts: {command!r}")
        op = command.get("op")
        key = command.get("key")
        if op == "put":
            self._data[key] = command.get("value")
            return self._data[key]
        if op == "delete":
            return self._data.pop(key, None)
        if op == "append":
            self._data[key] = str(self._data.get(key, "")) + str(
                command.get("value", ""))
            return self._data[key]
        raise ValueError(f"unknown KV op: {op!r}")

    def get(self, key: str, default: Any = None) -> Any:
        """Local (non-linearizable) read of the replica's state."""
        return self._data.get(key, default)

    def snapshot(self) -> Any:
        return dict(self._data)

    def restore(self, state: Any) -> None:
        self._data = dict(state)

    def __len__(self) -> int:
        return len(self._data)
