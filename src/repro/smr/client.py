"""Client sessions with the paper's proposal-timeout retry loop.

A client is co-located with its attached site (the paper picks "a site at
random to be the proposer"); client <-> site traffic uses the reliable
local path while everything between sites goes over the lossy network.

Latency is measured exactly as in Section VI: "the proposer started a
timer when first proposing an entry and stopped the timer when the leader
notified it that the entry was committed" -- i.e. from *first* submission,
across retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.consensus.messages import (ClientReply, ClientRequest, ReadReply,
                                      ReadRequest)
from repro.net.network import Network
from repro.sim.actor import Actor
from repro.sim.loop import SimLoop
from repro.sim.timers import RestartableTimer


@dataclass
class RequestRecord:
    """Lifecycle of one client request."""

    request_id: str
    command: Any
    submitted_at: float
    committed_at: float | None = None
    commit_index: int | None = None
    attempts: int = 1
    #: "write" (consensus commit) or "read" (lease-served local read).
    kind: str = "write"
    #: Per-session sequence number (0 for sessionless clients and reads).
    sequence: int = 0
    #: Read result value (reads only).
    result: Any = None
    callbacks: list[Callable[["RequestRecord"], None]] = field(
        default_factory=list)

    @property
    def latency(self) -> float | None:
        if self.committed_at is None:
            return None
        return self.committed_at - self.submitted_at

    @property
    def done(self) -> bool:
        return self.committed_at is not None


class Client(Actor):
    """A proposer attached to one site."""

    def __init__(self, name: str, loop: SimLoop, network: Network,
                 site: str, proposal_timeout: float = 1.0,
                 max_attempts: int | None = None,
                 session: bool = False) -> None:
        super().__init__(loop, name)
        self._network = network
        self._site = site
        self._proposal_timeout = proposal_timeout
        self._max_attempts = max_attempts
        #: Session clients stamp requests with (session_id, sequence) so
        #: servers can suppress duplicates from the retry loop without
        #: re-entering consensus.
        self._session = session
        self._sequence = 0
        self._read_sequence = 0
        self._pending: dict[str, RequestRecord] = {}
        self._timers: dict[str, RestartableTimer] = {}
        #: Completed requests in completion order.
        self.completed: list[RequestRecord] = []
        #: Requests abandoned after ``max_attempts`` retries.
        self.abandoned: list[RequestRecord] = []

    @property
    def site(self) -> str:
        return self._site

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def attach_to(self, site: str) -> None:
        """Re-attach to a different site (e.g. after its site departed)."""
        self._site = site

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, command: Any,
               on_done: Callable[[RequestRecord], None] | None = None
               ) -> RequestRecord:
        """Propose ``command``; retries until committed (or max attempts)."""
        self._sequence += 1
        request_id = f"{self.name}.{self._sequence}"
        record = RequestRecord(request_id=request_id, command=command,
                               submitted_at=self.now(),
                               sequence=self._sequence if self._session else 0)
        return self._track(record, on_done)

    def read(self, key: str,
             on_done: Callable[[RequestRecord], None] | None = None
             ) -> RequestRecord:
        """Linearizable read of ``key`` via the leader-lease path: served
        locally by the attached site (no consensus round), retried on the
        proposal timer like writes while no lease is active. The ``.read.``
        id segment keeps reads out of the server's session namespace."""
        self._read_sequence += 1
        request_id = f"{self.name}.read.{self._read_sequence}"
        record = RequestRecord(request_id=request_id, command=key,
                               submitted_at=self.now(), kind="read")
        return self._track(record, on_done)

    def _track(self, record: RequestRecord,
               on_done: Callable[[RequestRecord], None] | None
               ) -> RequestRecord:
        request_id = record.request_id
        if on_done is not None:
            record.callbacks.append(on_done)
        self._pending[request_id] = record
        self._send_request(record)
        timer = RestartableTimer(self.loop, lambda: self._on_timeout(request_id))
        timer.reset(self._proposal_timeout)
        self._timers[request_id] = timer
        return record

    def _send_request(self, record: RequestRecord) -> None:
        if record.kind == "read":
            self._network.send_local(self.name, self._site, ReadRequest(
                request_id=record.request_id, key=record.command))
            return
        self._network.send_local(self.name, self._site, ClientRequest(
            request_id=record.request_id, command=record.command,
            session_id=self.name if self._session else "",
            sequence=record.sequence))

    def _on_timeout(self, request_id: str) -> None:
        record = self._pending.get(request_id)
        if record is None or record.done:
            return
        if (self._max_attempts is not None
                and record.attempts >= self._max_attempts):
            self._pending.pop(request_id, None)
            self._timers.pop(request_id, None)
            self.abandoned.append(record)
            return
        record.attempts += 1
        self._send_request(record)
        self._timers[request_id].reset(self._proposal_timeout)

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    def on_message(self, message: Any, sender: str) -> None:
        if isinstance(message, ClientReply):
            self._complete(message.request_id, message.index, None)
        elif isinstance(message, ReadReply):
            if not message.ok:
                return  # no active lease yet: the proposal timer retries
            self._complete(message.request_id, message.index, message.value)

    def _complete(self, request_id: str, index: int | None,
                  result: Any) -> None:
        record = self._pending.pop(request_id, None)
        if record is None:
            return  # duplicate reply after completion
        timer = self._timers.pop(request_id, None)
        if timer is not None:
            timer.cancel()
        record.committed_at = self.now()
        record.commit_index = index
        record.result = result
        self.completed.append(record)
        for callback in record.callbacks:
            callback(record)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def latencies(self) -> list[float]:
        """Commit latencies of completed requests, in completion order."""
        return [r.latency for r in self.completed if r.latency is not None]

    def kill(self) -> None:
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        super().kill()
