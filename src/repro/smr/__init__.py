"""State-machine replication on top of the consensus protocols.

The consensus layer totally orders entries; this layer turns that order
into an application: a :class:`~repro.smr.machine.StateMachine` applied at
every site, a replicated key-value store as the stock example, and a
:class:`~repro.smr.client.Client` with the paper's proposal-timeout retry
loop and exactly-once semantics.
"""

from repro.smr.client import Client
from repro.smr.kv import KVCommand, KVStateMachine
from repro.smr.machine import AppendOnlyLog, CounterMachine, StateMachine

__all__ = [
    "AppendOnlyLog",
    "Client",
    "CounterMachine",
    "KVCommand",
    "KVStateMachine",
    "StateMachine",
]
