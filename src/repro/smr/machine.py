"""State-machine interface and two simple reference machines.

A state machine is deterministic: applying the same command sequence
yields the same state everywhere, which together with the consensus
layer's total order gives replicated consistency.
"""

from __future__ import annotations

from typing import Any


class StateMachine:
    """Deterministic application state."""

    def apply(self, command: Any) -> Any:
        """Apply one committed command; returns a command-specific result."""
        raise NotImplementedError

    def snapshot(self) -> Any:
        """A comparable representation of the full state (for checkers)."""
        raise NotImplementedError

    def restore(self, state: Any) -> None:
        """Replace the machine's state with a previously captured
        :meth:`snapshot` image (log compaction / InstallSnapshot)."""
        raise NotImplementedError


class AppendOnlyLog(StateMachine):
    """Records every command in order -- the minimal observable machine,
    used by tests to compare apply sequences across sites."""

    def __init__(self) -> None:
        self.commands: list[Any] = []

    def apply(self, command: Any) -> Any:
        self.commands.append(command)
        return len(self.commands)

    def snapshot(self) -> Any:
        return tuple(self.commands)

    def restore(self, state: Any) -> None:
        self.commands = list(state)


class CounterMachine(StateMachine):
    """A counter supporting ``{"op": "add", "amount": n}`` commands."""

    def __init__(self) -> None:
        self.value = 0

    def apply(self, command: Any) -> Any:
        if not isinstance(command, dict) or command.get("op") != "add":
            raise ValueError(f"unknown counter command: {command!r}")
        self.value += command.get("amount", 1)
        return self.value

    def snapshot(self) -> Any:
        return self.value

    def restore(self, state: Any) -> None:
        self.value = state
