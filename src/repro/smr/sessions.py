"""Server-side client-session bookkeeping for exactly-once application.

A session client stamps every request with ``(session_id, sequence)``
and never reuses a sequence number. Since one session retries request
``n`` until it commits before moving to ``n+1``, the server only needs
the *highest applied sequence* (plus the index it committed at) per
session to recognize every possible duplicate -- bounded state per
session, unlike the unbounded applied-id set.

The table is deliberately *derivable* from the applied entry ids that
already travel in snapshots (``Snapshot.applied_ids``): session request
ids are ``"{session}.{sequence}"`` (the format ``Client.submit`` has
always used), so a snapshot restore rebuilds the table without any
change to the snapshot wire format.
"""

from __future__ import annotations

from typing import Iterable


def parse_session(entry_id: str) -> tuple[str, int] | None:
    """Split ``"{session}.{sequence}"``; None for non-session ids
    (noops, batches, and any id whose tail is not an integer)."""
    head, sep, tail = entry_id.rpartition(".")
    if not sep or not head:
        return None
    try:
        sequence = int(tail)
    except ValueError:
        return None
    if sequence < 0:
        return None
    return head, sequence


class SessionTable:
    """Highest applied ``(sequence, commit index)`` per session."""

    __slots__ = ("_sessions",)

    def __init__(self) -> None:
        self._sessions: dict[str, tuple[int, int]] = {}

    def __len__(self) -> int:
        return len(self._sessions)

    def observe(self, entry_id: str, index: int) -> None:
        """Record one applied DATA entry (called in apply order)."""
        parsed = parse_session(entry_id)
        if parsed is None:
            return
        session, sequence = parsed
        known = self._sessions.get(session)
        if known is None or sequence > known[0]:
            self._sessions[session] = (sequence, index)

    def last_applied(self, session: str) -> tuple[int, int]:
        """``(sequence, index)`` of the session's newest applied request
        (``(0, 0)`` for an unknown session)."""
        return self._sessions.get(session, (0, 0))

    def is_duplicate(self, session: str, sequence: int) -> bool:
        """Has this request already been applied?"""
        return sequence <= self._sessions.get(session, (0, 0))[0]

    @classmethod
    def from_applied_ids(cls, applied_ids: Iterable[str]) -> "SessionTable":
        """Rebuild from a snapshot's applied-id set. Indices below the
        snapshot point are unknown; duplicates answered from a rebuilt
        table reply with the snapshot-floor index 0 (completion is what
        the retrying client needs, not the exact slot)."""
        table = cls()
        for entry_id in applied_ids:
            table.observe(entry_id, 0)
        return table
