"""When to snapshot, and how much log tail to keep.

The two classic triggers: a *threshold* on committed-but-uncompacted
entries (bounds log growth) and a *minimum interval* between captures
(bounds snapshot overhead under heavy traffic). ``retain`` keeps a short
committed tail in the log below the capture point so slightly-lagging
followers are still served by ordinary AppendEntries instead of a full
snapshot transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CompactionPolicy:
    """Triggers for taking a snapshot and compacting the log."""

    #: Take a snapshot once this many committed entries sit above the
    #: current compaction point.
    threshold: int = 64
    #: Minimum simulated seconds between two captures at one site.
    min_interval: float = 0.0
    #: Committed entries kept in the log below the capture point.
    retain: int = 8

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ConfigurationError("compaction threshold must be >= 1")
        if self.retain < 0:
            raise ConfigurationError("compaction retain must be >= 0")
        if self.retain >= self.threshold:
            raise ConfigurationError(
                f"retain ({self.retain}) must be below threshold "
                f"({self.threshold}) or compaction never fires")
        if self.min_interval < 0:
            raise ConfigurationError("min_interval must be >= 0")

    def should_compact(self, commit_index: int, snapshot_index: int,
                       now: float, last_taken: float) -> bool:
        """Is it time to snapshot, given the commit point, the current
        compaction point, and the time of the last capture?"""
        if commit_index - snapshot_index < self.threshold:
            return False
        if self.min_interval > 0 and now - last_taken < self.min_interval:
            return False
        return True
