"""Snapshot value types.

A :class:`Snapshot` is everything a site needs to resume operation at a
commit point without holding the log prefix below it:

- the state-machine image (whatever ``StateMachine.snapshot()`` returned
  at capture time -- the machines' images are restorable via
  ``StateMachine.restore``),
- the last included index and its term (the log consistency anchor:
  AppendEntries with ``prev_log_index`` at the snapshot point must still
  be answerable),
- the governing configuration at capture time (CONFIG entries below the
  snapshot point are gone, so the membership they established must
  travel with the image),
- the applied entry ids (the SMR layer's exactly-once guard: a retried
  request that committed both below and above the snapshot point must
  still apply once).

Snapshots are immutable and shared by reference across the simulation,
like log entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Snapshot:
    """A durable image of replicated state at one commit point."""

    last_included_index: int
    last_included_term: int
    machine_state: Any
    #: Entry ids already applied to the machine (exactly-once dedup).
    applied_ids: tuple[str, ...] = ()
    #: Governing configuration at capture time (None: bootstrap applies).
    config_members: tuple[str, ...] | None = None
    config_version: int = 0
    #: Standing non-voting observers of that configuration -- the
    #: observer role must survive compaction exactly like membership,
    #: or a tiebreaker would silently vanish when its CONFIG entry is
    #: swallowed by a snapshot.
    config_observers: tuple[str, ...] = ()
    #: Simulation time of capture and the capturing site (diagnostics).
    taken_at: float = 0.0
    origin: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Snapshot idx={self.last_included_index} "
                f"term={self.last_included_term} origin={self.origin!r}>")


@dataclass(frozen=True)
class SnapshotImage:
    """What the hosting server contributes to a snapshot: the machine
    image plus the applied-id set (the engine adds the log/config
    metadata itself)."""

    machine_state: Any
    applied_ids: tuple[str, ...] = ()


def newest(a: Snapshot | None, b: Snapshot | None) -> Snapshot | None:
    """The snapshot covering the higher commit point (None-tolerant)."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a.last_included_index >= b.last_included_index else b


def governing_config(snapshot: Snapshot | None, best_config_entry
                     ) -> tuple[int, tuple[str, ...] | None, tuple[str, ...]]:
    """Resolve ``(version, members, observers)`` between a snapshot's
    carried configuration and a log's best CONFIG entry (``(index,
    entry)`` or None). The log wins ties: it is at least as fresh as the
    snapshot that preceded it. ``members`` is None when neither source
    has a configuration (the bootstrap config applies)."""
    version: int = 0
    members: tuple[str, ...] | None = None
    observers: tuple[str, ...] = ()
    if snapshot is not None and snapshot.config_members:
        version, members = snapshot.config_version, snapshot.config_members
        observers = snapshot.config_observers
    if best_config_entry is not None:
        payload = best_config_entry[1].payload
        best_version = getattr(payload, "version", 0)
        if members is None or best_version >= version:
            version, members = best_version, payload.members
            observers = getattr(payload, "observers", ())
    return version, members, observers
