"""Chunked snapshot wire transfer (Raft's ``offset``/``done`` RPC shape).

PR 1 shipped a whole :class:`~repro.snapshot.types.Snapshot` in one
``InstallSnapshotRequest``; with a size-aware latency model that one
message serializes the entire image onto the link in a single charge, and
a mid-transfer leader change loses everything. Raft's reference
InstallSnapshot RPC instead ships the image as a sequence of byte chunks
(``offset``, ``data``, ``done``), which is what this module implements:

- :func:`serialize_snapshot` / :func:`deserialize_snapshot` turn a
  snapshot into the byte string actually traversing the simulated wire
  (so chunked and monolithic transfers are charged identical totals);
- :func:`chunk_offsets` splits the byte range into ``chunk_size`` slices;
- :class:`SnapshotSender` is the leader's per-follower transfer state:
  a window of unacked chunks in flight, resend on stall, full restart
  when every chunk was acked but no install confirmation arrived (the
  follower crashed mid-transfer and lost its buffer);
- :class:`ChunkAssembler` is the follower's reassembly buffer: chunks
  arrive unordered over the UDP-like fabric, duplicates are dropped, and
  the snapshot only exists once the byte range is fully covered --
  a partial transfer is useless and is discarded wholesale on a term
  change or when a newer snapshot's chunks start arriving.
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.errors import ConsensusError
from repro.snapshot.types import Snapshot


def serialize_snapshot(snapshot: Snapshot) -> bytes:
    """The snapshot's wire form (deterministic for identical content)."""
    return pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)


def deserialize_snapshot(data: bytes) -> Snapshot:
    snapshot = pickle.loads(data)
    if not isinstance(snapshot, Snapshot):
        raise ConsensusError(
            f"reassembled transfer is not a snapshot: {type(snapshot)!r}")
    return snapshot


def snapshot_wire_size(snapshot: Snapshot) -> int:
    """Bytes a transfer of ``snapshot`` puts on the wire (either mode)."""
    return len(serialize_snapshot(snapshot))


def chunk_offsets(total_size: int, chunk_size: int) -> list[tuple[int, int]]:
    """``(offset, length)`` slices covering ``[0, total_size)`` in order.

    A zero-byte payload still yields one empty chunk so the ``done``
    marker has a message to ride on.
    """
    if chunk_size < 1:
        raise ConsensusError(f"chunk_size must be >= 1: {chunk_size!r}")
    if total_size <= 0:
        return [(0, 0)]
    return [(offset, min(chunk_size, total_size - offset))
            for offset in range(0, total_size, chunk_size)]


class ChunkAssembler:
    """Follower-side reassembly of one chunked snapshot transfer."""

    def __init__(self, last_included_index: int, last_included_term: int,
                 leader_term: int, total_size: int) -> None:
        self.last_included_index = last_included_index
        self.last_included_term = last_included_term
        #: Term of the shipping leader; a higher observed term voids the
        #: partial transfer (the new leader restarts from scratch).
        self.leader_term = leader_term
        self.total_size = total_size
        self._pieces: dict[int, bytes] = {}
        self.received_bytes = 0

    def add(self, offset: int, data: bytes) -> bool:
        """Buffer one chunk; returns False for a duplicate offset."""
        if offset in self._pieces:
            return False
        self._pieces[offset] = bytes(data)
        self.received_bytes += len(data)
        return True

    @property
    def chunks_received(self) -> int:
        return len(self._pieces)

    @property
    def complete(self) -> bool:
        """True once the buffered slices cover ``[0, total_size)``."""
        if self.received_bytes < self.total_size:
            return False
        end = 0
        for offset in sorted(self._pieces):
            if offset > end:
                return False  # a hole despite the byte tally (bad chunks)
            end = max(end, offset + len(self._pieces[offset]))
        return end >= self.total_size

    def assemble(self) -> bytes:
        """Concatenate the covered range (requires :attr:`complete`)."""
        if not self.complete:
            raise ConsensusError(
                f"incomplete transfer: {self.received_bytes}"
                f"/{self.total_size} bytes")
        out = bytearray()
        for offset in sorted(self._pieces):
            piece = self._pieces[offset]
            if offset < len(out):
                piece = piece[len(out) - offset:]  # overlap from resends
            out.extend(piece)
        return bytes(out[:self.total_size])


class SnapshotSender:
    """Leader-side state for one chunked transfer to one follower."""

    def __init__(self, snapshot: Snapshot, data: bytes, chunk_size: int,
                 now: float) -> None:
        self.snapshot = snapshot
        self.data = data
        self.chunks = chunk_offsets(len(data), chunk_size)
        self._pending: list[tuple[int, int]] = list(self.chunks)
        self._in_flight: set[int] = set()
        self.acked: set[int] = set()
        self.last_activity = now
        #: Time an ack last arrived (creation counts as progress so a
        #: fresh transfer gets its grace period before any nudge).
        self.last_ack = now
        self.restarts = 0

    @property
    def snapshot_index(self) -> int:
        return self.snapshot.last_included_index

    @property
    def total_size(self) -> int:
        return len(self.data)

    @property
    def done(self) -> bool:
        """Every chunk acked (the install confirmation may still be due)."""
        return len(self.acked) == len(self.chunks)

    def in_flight(self) -> int:
        return len(self._in_flight)

    def take(self, window: int) -> list[tuple[int, int, bytes, bool]]:
        """Chunks to put on the wire now, keeping at most ``window`` in
        flight: ``(offset, length, data slice, done flag)`` tuples."""
        out: list[tuple[int, int, bytes, bool]] = []
        last_offset = self.chunks[-1][0]
        while self._pending and len(self._in_flight) < window:
            offset, length = self._pending.pop(0)
            self._in_flight.add(offset)
            out.append((offset, length, self.data[offset:offset + length],
                        offset == last_offset))
        return out

    def ack(self, offset: int) -> bool:
        """Record a chunk ack; returns True if it was news."""
        if offset in self.acked:
            return False
        self.acked.add(offset)
        self._in_flight.discard(offset)
        return True

    def requeue_unacked(self) -> None:
        """Stall recovery: put every unacked chunk back on the send queue
        (lost chunks or lost acks; duplicates are dropped by the
        assembler / the ack handler)."""
        self._in_flight.clear()
        self._pending = [c for c in self.chunks if c[0] not in self.acked]

    def restart(self) -> None:
        """Fully-acked but never installed (the follower lost its buffer,
        e.g. a crash mid-transfer): resend from scratch."""
        self.acked.clear()
        self._in_flight.clear()
        self._pending = list(self.chunks)
        self.restarts += 1
