"""Snapshotting and log compaction.

The paper's whole premise is consensus under dynamic membership, yet a
recovering or newly joined site that can only catch up by replaying the
replicated log from index 1 makes long churn scenarios quadratically
expensive. This package adds the standard Raft-family remedy:

- :class:`Snapshot` -- an immutable image of the state machine at a
  commit point, plus the metadata (last included index/term, governing
  configuration, exactly-once ids) a site needs to resume from it;
- :class:`SnapshotStore` -- durable snapshot persistence on top of a
  :class:`~repro.storage.stable.StableStore`;
- :class:`CompactionPolicy` -- threshold- and interval-based triggers
  deciding when a site snapshots and how much log tail it retains;
- :mod:`repro.snapshot.chunking` -- the chunked wire transfer (Raft's
  ``offset``/``done`` RPC shape): leader-side windowed
  :class:`SnapshotSender`, follower-side :class:`ChunkAssembler`.

The engines (:mod:`repro.consensus.engine` and subclasses) own the
protocol side: taking snapshots after commit advancement and shipping an
``InstallSnapshot`` message (monolithic or chunked, per
:class:`~repro.consensus.config.TransferConfig`) instead of log replay
when a follower's needed prefix has been compacted away.
"""

from repro.snapshot.chunking import (
    ChunkAssembler,
    SnapshotSender,
    chunk_offsets,
    deserialize_snapshot,
    serialize_snapshot,
    snapshot_wire_size,
)
from repro.snapshot.policy import CompactionPolicy
from repro.snapshot.store import SnapshotStore
from repro.snapshot.types import Snapshot, SnapshotImage

__all__ = [
    "ChunkAssembler",
    "CompactionPolicy",
    "Snapshot",
    "SnapshotImage",
    "SnapshotSender",
    "SnapshotStore",
    "chunk_offsets",
    "deserialize_snapshot",
    "serialize_snapshot",
    "snapshot_wire_size",
]
