"""Durable snapshot persistence.

One :class:`SnapshotStore` per engine, layered over the engine's
:class:`~repro.storage.stable.StableStore`. Only the newest snapshot is
kept -- a snapshot subsumes every older one -- and saves are monotonic in
the last included index, so a stale InstallSnapshot can never regress a
site's durable resume point.
"""

from __future__ import annotations

from repro.snapshot.types import Snapshot
from repro.storage.stable import StableStore


class SnapshotStore:
    """Holds the newest snapshot in stable storage."""

    #: Stable-store key (one snapshot per engine store).
    KEY = "snapshot"

    def __init__(self, store: StableStore) -> None:
        self._store = store

    @property
    def latest(self) -> Snapshot | None:
        return self._store.get(self.KEY)

    def save(self, snapshot: Snapshot) -> bool:
        """Durably persist ``snapshot`` unless an equal-or-newer one is
        already held; returns whether it was stored."""
        current = self.latest
        if (current is not None
                and snapshot.last_included_index
                <= current.last_included_index):
            return False
        self._store.set(self.KEY, snapshot)
        return True
