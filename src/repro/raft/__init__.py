"""Classic Raft: the paper's baseline protocol (Section III-A).

Implements leader election, log replication with the AppendEntries
consistency check and conflict truncation, commit rules (majority
matchIndex in the leader's current term, plus a term-opening no-op so
earlier-term entries commit transitively), heartbeats, and
administrator-driven single-site membership changes.

Public surface: :class:`~repro.raft.engine.ClassicRaftEngine` (transport-
agnostic state machine) and :class:`~repro.raft.server.RaftServer` (the
engine bound to a simulated network address).
"""

from repro.raft.engine import ClassicRaftEngine
from repro.raft.server import RaftServer

__all__ = ["ClassicRaftEngine", "RaftServer"]
