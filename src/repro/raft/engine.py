"""The classic Raft protocol engine.

Faithful to the paper's Section III-A description (which follows Ongaro's
dissertation): proposers send entries to the term's leader, the leader
appends and replicates them through periodic AppendEntries, and commits
once a classic quorum acknowledges. Conflicting follower suffixes are
truncated. Membership changes are administrator-driven, one site at a
time, with joiners caught up as non-voting members first.
"""

from __future__ import annotations

from typing import Any

from repro.consensus.config import Configuration
from repro.consensus.engine import BaseEngine, EngineContext, Role, handles
from repro.consensus.entry import (
    ConfigPayload,
    EntryKind,
    InsertedBy,
    LogEntry,
)
from repro.consensus.messages import (
    AppendEntries,
    AppendEntriesResponse,
    ClientRequest,
    CommitNotice,
    JoinAccepted,
    LeaveAccepted,
    ProposeToLeader,
    RequestVote,
)
from repro import perf
from repro.errors import ConsensusError, NotLeaderError
from repro.net.sizes import estimate_size
from repro.sim.timers import PeriodicTimer


class ClassicRaftEngine(BaseEngine):
    """Classic Raft over an injected transport."""

    protocol_name = "raft"

    def __init__(self, ctx: EngineContext,
                 bootstrap_config: Configuration) -> None:
        super().__init__(ctx, bootstrap_config)
        # --- leader volatile state ---
        self.next_index: dict[str, int] = {}
        self.match_index: dict[str, int] = {}
        self._heartbeat = PeriodicTimer(ctx.loop,
                                        self.timing.heartbeat_interval,
                                        self._broadcast_append_entries)
        # --- membership bookkeeping (leader only) ---
        self._catchup_targets: set[str] = set()
        self._pending_config: dict[str, Any] | None = None
        self._config_queue: list[dict[str, Any]] = []
        self._internal_seq = 0

    # ------------------------------------------------------------------
    # Role transitions
    # ------------------------------------------------------------------
    def _stop_role_timers(self) -> None:
        self._heartbeat.stop()
        self._catchup_targets.clear()
        self._extra_allowed.clear()
        self._pending_config = None
        self._config_queue.clear()

    def _make_vote_request(self) -> RequestVote:
        last_index = self.log.last_index
        last_term = self.log.term_at(last_index) if last_index else 0
        return RequestVote(term=self.current_term, candidate_id=self.name,
                           last_log_index=last_index, last_log_term=last_term)

    def _candidate_up_to_date(self, msg: RequestVote) -> bool:
        """Classic rule: compare last entry term, then length."""
        my_last_index = self.log.last_index
        my_last_term = self.log.term_at(my_last_index) if my_last_index else 0
        if msg.last_log_term != my_last_term:
            return msg.last_log_term > my_last_term
        return msg.last_log_index >= my_last_index

    def _init_leader_state(self) -> None:
        start = self.log.last_index + 1
        self.next_index = {m: start for m in self._configuration.members}
        self.match_index = {m: 0 for m in self._configuration.members}
        # A term-opening no-op lets entries from earlier terms commit
        # transitively (Raft never counts replicas of old-term entries).
        self._append_as_leader(self._make_internal_entry(EntryKind.NOOP, None))
        self._broadcast_append_entries()
        self._heartbeat.start()

    def _on_configuration_changed(self) -> None:
        if self.role is not Role.LEADER:
            return
        for site in self._configuration.replicas:
            self.next_index.setdefault(site, self.log.last_index + 1)
            self.match_index.setdefault(site, 0)

    # ------------------------------------------------------------------
    # Proposals
    # ------------------------------------------------------------------
    def _handle_client_request(self, msg: ClientRequest, sender: str) -> None:
        entry = LogEntry(entry_id=msg.request_id, kind=EntryKind.DATA,
                         payload=msg.command, origin=self.name,
                         term=0, inserted_by=InsertedBy.LEADER)
        if self.role is Role.LEADER:
            self._accept_proposal(entry)
        elif self.leader_id is not None and self.leader_id != self.name:
            self._send(self.leader_id, ProposeToLeader(entry=entry))
        # No known leader: drop; the client's proposal timeout retries.

    @handles(ProposeToLeader)
    def _handle_propose_to_leader(self, msg: ProposeToLeader,
                                  sender: str) -> None:
        if self.role is not Role.LEADER:
            # Stale redirect; forward once more if we know better.
            if self.leader_id is not None and self.leader_id != self.name:
                self._send(self.leader_id, msg)
            return
        self._accept_proposal(msg.entry)

    def _accept_proposal(self, entry: LogEntry) -> None:
        """Leader-side dedup + append."""
        committed = self.log.committed_index_of(entry.entry_id,
                                                self.commit_index)
        if committed is not None:
            self._notify_origin(self.log.get(committed), committed)
            return
        if self.log.indices_of(entry.entry_id):
            return  # already in flight; commit will notify
        self._append_as_leader(entry)

    def _append_as_leader(self, entry: LogEntry) -> int:
        stamped = entry.with_mark(self.current_term, InsertedBy.LEADER)
        index = self.log.append(stamped)
        self.ctx.store.touch("log", size=estimate_size(stamped))
        if stamped.kind is EntryKind.CONFIG:
            self._refresh_configuration()
        if self.timing.eager_append:
            self._broadcast_append_entries()
        self._maybe_commit_single_member()
        return index

    def _maybe_commit_single_member(self) -> None:
        """A single-member configuration commits its own appends."""
        if self._configuration.size == 1 and self.role is Role.LEADER:
            self._leader_advance_commit()

    def _make_internal_entry(self, kind: EntryKind, payload: Any) -> LogEntry:
        self._internal_seq += 1
        entry_id = f"{self.name}:{kind.value}{self._internal_seq}.t{self.current_term}"
        return LogEntry(entry_id=entry_id, kind=kind, payload=payload,
                        origin=self.name, term=self.current_term,
                        inserted_by=InsertedBy.LEADER)

    # ------------------------------------------------------------------
    # Replication: leader side
    # ------------------------------------------------------------------
    def _append_targets(self) -> list[str]:
        # Replicas = members + standing observers (which replicate but
        # never vote commits); plus any joiners mid-catch-up.
        targets = list(self._configuration.replicas_without(self.name))
        targets.extend(sorted(self._catchup_targets))
        return list(dict.fromkeys(targets))

    def _broadcast_append_entries(self) -> None:
        """One leader beat: AppendEntries to every replication target.

        Followers with equal nextIndex need byte-identical messages, so
        the beat builds one immutable AppendEntries per distinct
        nextIndex and reuses it (entries slice, size memo and all)
        across those followers -- the pre-refactor core built a fresh
        message and entries tuple per follower, which the legacy-core
        switch preserves for benchmarking. Send order is unchanged
        either way, so the fabric's RNG stream is untouched.
        """
        if self.role is not Role.LEADER:
            return
        round_cache = None if perf.LEGACY_CORE else {}
        for target in self._append_targets():
            self._send_append_entries(target, round_cache)

    def _send_append_entries(self, target: str,
                             round_cache: dict | None = None) -> None:
        next_index = self.next_index.get(target, self.log.last_index + 1)
        if next_index <= self.log.snapshot_index:
            # The entries this follower needs are compacted away: ship the
            # snapshot instead of replaying the log.
            self._send_install_snapshot(target)
            return
        message = (round_cache.get(next_index)
                   if round_cache is not None else None)
        if message is None:
            prev_index = next_index - 1
            prev_term = self.log.term_at(prev_index) if prev_index > 0 else 0
            hi = min(self.log.last_index,
                     prev_index + self.timing.max_append_batch)
            entries = tuple(self.log.entries_between(next_index, hi))
            if self._lease_enabled:
                sent_at = self.now()
                lease_until = self._lease_expiry(sent_at)
            else:
                sent_at = lease_until = 0.0
            message = AppendEntries(
                term=self.current_term, leader_id=self.name,
                prev_log_index=prev_index, prev_log_term=prev_term,
                entries=entries, leader_commit=self.commit_index,
                sent_at=sent_at, lease_until=lease_until)
            if round_cache is not None:
                round_cache[next_index] = message
        self._send(target, message)

    def _handle_append_entries_response(self, msg: AppendEntriesResponse,
                                        sender: str) -> None:
        self._observe_term(msg.term)
        if self.role is not Role.LEADER or msg.term < self.current_term:
            return
        follower = msg.follower
        # A responding follower's needs are freshly known: a suppressed
        # snapshot re-ship (if any) may go out immediately. (A stale
        # reply racing an in-flight ship can cause one redundant bulk
        # transfer; installs are idempotent, so this is accepted cost.)
        self._snapshot_inflight.pop(follower, None)
        if msg.success:
            if msg.beat_sent_at:
                self._record_lease_ack(follower, msg.beat_sent_at)
            self.match_index[follower] = max(
                self.match_index.get(follower, 0), msg.match_index)
            self.next_index[follower] = self.match_index[follower] + 1
            self._leader_advance_commit()
            self._check_catchup_complete(follower)
        else:
            current = self.next_index.get(follower, self.log.last_index + 1)
            self.next_index[follower] = max(
                1, min(current - 1, msg.last_log_index + 1))
            self._nudge_chunk_transfer(follower)

    def _leader_advance_commit(self) -> None:
        """Commit the highest index replicated on a classic quorum whose
        entry is from the current term.

        The quorum frontier is read straight off the sorted match
        indexes (the leader's own log counts as ``last_index``) instead
        of re-scanning ``commit_index+1 .. last_index`` one index at a
        time per response: replication counts only fall as the index
        grows, so index ``k`` has a quorum iff the ``classic_quorum``-th
        largest match is at least ``k`` -- the frontier IS that order
        statistic. Classic Raft log terms are non-decreasing, so the
        current-term gate holds somewhere at or below the frontier iff
        it holds *at* the frontier.
        """
        config = self._configuration
        counts = [self.log.last_index]  # the leader holds its own log
        counts.extend(self.match_index.get(member, 0)
                      for member in config.members if member != self.name)
        quorum = config.classic_quorum
        if quorum > len(counts):
            return
        counts.sort(reverse=True)
        frontier = min(counts[quorum - 1], self.log.last_index)
        if (frontier > self.commit_index
                and self.log.term_at(frontier) == self.current_term):
            self._advance_commit_index(frontier)

    # ------------------------------------------------------------------
    # Replication: follower side
    # ------------------------------------------------------------------
    def _handle_append_entries(self, msg: AppendEntries, sender: str) -> None:
        self._observe_term(msg.term, leader_hint=msg.leader_id)
        if msg.term < self.current_term:
            self._send(sender, AppendEntriesResponse(
                term=self.current_term, success=False, follower=self.name,
                match_index=0, last_log_index=self.log.last_index))
            return
        # Same-term AppendEntries implies an elected leader: candidates
        # convert to follower, followers refresh their timer.
        if self.role is not Role.FOLLOWER:
            self._become_follower(msg.leader_id)
        else:
            self.leader_id = msg.leader_id
            self._arm_election_timer()
        if not self._log_matches(msg.prev_log_index, msg.prev_log_term):
            self._send(sender, AppendEntriesResponse(
                term=self.current_term, success=False, follower=self.name,
                match_index=0, last_log_index=self.log.last_index))
            return
        self._absorb_entries(msg.entries)
        last_new = msg.prev_log_index + len(msg.entries)
        if msg.leader_commit > self.commit_index:
            self._advance_commit_index(min(msg.leader_commit,
                                           max(last_new, self.commit_index)))
        if msg.lease_until:
            self._note_lease_beat(msg)
        self._send(sender, AppendEntriesResponse(
            term=self.current_term, success=True, follower=self.name,
            match_index=last_new, last_log_index=self.log.last_index,
            beat_sent_at=msg.sent_at))

    def _log_matches(self, prev_index: int, prev_term: int) -> bool:
        if prev_index == 0:
            return True
        if prev_index <= self.commit_index:
            return True  # committed prefixes agree (Invariant 1)
        if not self.log.has(prev_index):
            return False
        return self.log.term_at(prev_index) == prev_term

    def _absorb_entries(self, entries) -> None:
        truncated = False
        inserted_bytes = 0
        for index, entry in entries:
            if index <= self.commit_index:
                continue  # committed prefixes agree (and may be compacted)
            existing = self.log.get(index)
            if existing is not None and existing.term == entry.term:
                continue  # log matching: same index+term => same entry
            if existing is not None and not truncated:
                self.log.truncate_from(index)
                truncated = True
            self.log.insert(index, entry)
            inserted_bytes += estimate_size(entry)
        if inserted_bytes or truncated:
            self.ctx.store.touch("log", size=max(1, inserted_bytes))
        if entries:
            self._refresh_configuration()

    # ------------------------------------------------------------------
    # Commit side effects (leader)
    # ------------------------------------------------------------------
    def _on_entry_committed(self, index: int, entry: LogEntry) -> None:
        if self.role is not Role.LEADER:
            return
        self._notify_origin(entry, index)
        if entry.kind is EntryKind.CONFIG:
            self._finish_config_change(entry)

    def _notify_origin(self, entry: LogEntry, index: int) -> None:
        if entry.origin != self.name:
            self._send(entry.origin, CommitNotice(
                entry_id=entry.entry_id, index=index, term=entry.term))
        # origin == self is handled by the base engine's on_origin_commit.

    # ------------------------------------------------------------------
    # Membership (administrator API, Section III-A)
    # ------------------------------------------------------------------
    def admin_add_site(self, site: str) -> None:
        """Administrator asks the leader to add ``site`` (catch up first,
        then commit the new configuration)."""
        self._require_leader()
        if site in self._configuration:
            raise ConsensusError(f"{site!r} is already a member")
        self._enqueue_config_change({"action": "add", "site": site})

    def admin_remove_site(self, site: str) -> None:
        """Administrator asks the leader to remove ``site``."""
        self._require_leader()
        if site not in self._configuration:
            raise ConsensusError(f"{site!r} is not a member")
        self._enqueue_config_change({"action": "remove", "site": site})

    def _require_leader(self) -> None:
        if self.role is not Role.LEADER:
            raise NotLeaderError(leader_hint=self.leader_id)

    def _enqueue_config_change(self, change: dict[str, Any]) -> None:
        self._config_queue.append(change)
        self._start_next_config_change()

    def _start_next_config_change(self) -> None:
        if self._pending_config is not None or not self._config_queue:
            return
        change = self._config_queue.pop(0)
        self._pending_config = change
        site = change["site"]
        if change["action"] == "add":
            # Catch the joiner up as a non-voting member before the
            # configuration entry is appended.
            self._catchup_targets.add(site)
            self._extra_allowed.add(site)
            self.next_index[site] = max(1, self.commit_index + 1)
            self.match_index[site] = 0
            self._send_append_entries(site)
        else:
            new_config = self._configuration.without_member(site)
            self._append_config_entry(new_config, change)

    def _check_catchup_complete(self, follower: str) -> None:
        pending = self._pending_config
        if (pending is None or pending["action"] != "add"
                or pending["site"] != follower
                or "entry_id" in pending):
            return
        if self.match_index.get(follower, 0) >= self.log.last_index:
            new_config = self._configuration.with_member(follower)
            self._append_config_entry(new_config, pending)

    def _append_config_entry(self, new_config: Configuration,
                             change: dict[str, Any]) -> None:
        version = self._max_known_config_version() + 1
        entry = self._make_internal_entry(
            EntryKind.CONFIG, ConfigPayload(members=new_config.members,
                                            observers=new_config.observers,
                                            version=version))
        change["entry_id"] = entry.entry_id
        self._append_as_leader(entry)
        self._trace("config.proposed", action=change["action"],
                    site=change["site"], members=new_config.members)

    def _finish_config_change(self, entry: LogEntry) -> None:
        pending = self._pending_config
        if pending is None or pending.get("entry_id") != entry.entry_id:
            return
        site = pending["site"]
        self._pending_config = None
        if pending["action"] == "add":
            self._catchup_targets.discard(site)
            self._extra_allowed.discard(site)
            self._send(site, JoinAccepted(
                members=self._configuration.members, leader_id=self.name))
        else:
            self._send(site, LeaveAccepted(site=site))
            self.next_index.pop(site, None)
            self.match_index.pop(site, None)
            if site == self.name:
                # A leader that removed itself steps down after commit.
                self._become_follower()
                return
        self._start_next_config_change()

    # ------------------------------------------------------------------
    # Dispatch additions
    # ------------------------------------------------------------------
    def _build_dispatch(self):
        dispatch = super()._build_dispatch()
        dispatch[ProposeToLeader] = self._handle_propose_to_leader
        return dispatch
