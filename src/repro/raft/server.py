"""Classic Raft bound to a network address."""

from __future__ import annotations

from repro.consensus.server import ConsensusServer
from repro.raft.engine import ClassicRaftEngine


class RaftServer(ConsensusServer):
    """A classic-Raft site (the paper's baseline)."""

    engine_cls = ClassicRaftEngine

    # Administrator passthroughs (classic Raft's membership is
    # administrator-driven; Section III-A).
    def admin_add_site(self, site: str) -> None:
        self.engine.admin_add_site(site)

    def admin_remove_site(self, site: str) -> None:
        self.engine.admin_remove_site(site)
