"""The intra-cluster engine: Fast Raft plus global-commit propagation.

Cluster members learn the global commit index from their local leader's
AppendEntries piggyback (Section V-B: "Local leaders now need to include
their global commitIndex in the AppendEntries message to let followers at
the local level know which global entries are committed").
"""

from __future__ import annotations

from typing import Callable

from repro.fastraft.engine import FastRaftEngine


class CRaftLocalEngine(FastRaftEngine):
    """Intra-cluster Fast Raft inside a C-Raft site."""

    protocol_name = "craft.local"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Wired by CRaftServer after construction.
        self.global_commit_provider: Callable[[], int] = lambda: 0
        self.global_commit_sink: Callable[[int], None] = lambda value: None

    def _global_commit_piggyback(self) -> int:
        return self.global_commit_provider()

    def _absorb_global_commit(self, global_commit: int) -> None:
        if global_commit > 0:
            self.global_commit_sink(global_commit)
