"""The inter-cluster engine: Fast Raft with gated log inserts.

Every insert into the global log -- from a proposal, from the leader's
decision procedure, or from absorbing a global AppendEntries -- first runs
intra-cluster consensus on a global state entry (Section V-B). The gate
itself lives in :class:`repro.craft.server.CRaftServer`, which owns the
local engine; this class only redirects the insert funnel through the
injected gate.

Restamping during election recovery (term/provenance only, data unchanged)
bypasses the gate: the restamped entries are re-replicated to every global
member through gated AppendEntries anyway, and the local log still holds
the data under the old stamp, which is all safety needs.
"""

from __future__ import annotations

from typing import Callable

from repro.consensus.entry import LogEntry
from repro.fastraft.engine import FastRaftEngine
from repro.snapshot import Snapshot

#: Signature of the injected gate: (pairs, continuation).
GateFn = Callable[[list[tuple[int, LogEntry]], Callable[[], None]], None]
#: Signature of the injected snapshot gate: (snapshot, continuation).
SnapshotGateFn = Callable[[Snapshot, Callable[[], None]], None]


class CRaftGlobalEngine(FastRaftEngine):
    """Inter-cluster Fast Raft run by cluster leaders."""

    protocol_name = "craft.global"

    #: Inserts defer behind a round of local consensus (Section V-B),
    #: so the fused synchronous proposal path must not be taken.
    _SYNC_GATE = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Wired by CRaftServer after construction; default passes through
        # (used by unit tests that exercise the engine standalone).
        self.insert_gate: GateFn | None = None
        self.snapshot_gate: SnapshotGateFn | None = None

    def _gate_insert(self, pairs: list[tuple[int, LogEntry]],
                     then: Callable[[], None]) -> None:
        if not pairs or self.insert_gate is None:
            super()._gate_insert(pairs, then)
            return
        self.insert_gate(pairs, lambda: self._complete_gated_insert(pairs,
                                                                    then))

    def _complete_gated_insert(self, pairs: list[tuple[int, LogEntry]],
                               then: Callable[[], None]) -> None:
        """Continuation run once the state entry committed locally."""
        self._insert_batch(pairs)
        then()

    def _gate_snapshot_install(self, snapshot: Snapshot,
                               then: Callable[[], None]) -> None:
        """A shipped global snapshot replaces log state, so like every
        other global log write it first runs intra-cluster consensus --
        the whole cluster inherits the image, not just this leader."""
        if self.snapshot_gate is None:
            super()._gate_snapshot_install(snapshot, then)
            return
        self.snapshot_gate(
            snapshot, lambda: self._complete_gated_snapshot(snapshot, then))

    def _complete_gated_snapshot(self, snapshot: Snapshot,
                                 then: Callable[[], None]) -> None:
        """Continuation once the snapshot-bearing state entry committed
        locally: adopt it into the global log and ack the leader."""
        self._install_snapshot(snapshot)
        then()
