"""Multi-cluster C-Raft deployment builder (the Fig. 5 setup)."""

from __future__ import annotations

from typing import Any, Callable

from repro.consensus.config import Configuration, TransferConfig
from repro.consensus.engine import Role
from repro.consensus.timing import TimingConfig
from repro.craft.batching import BatchPolicy
from repro.craft.server import CRaftServer
from repro.errors import ExperimentError
from repro.net.latency import (
    BandwidthLatencyModel,
    LatencyModel,
    SharedLinkBandwidthModel,
)
from repro.net.loss import LossModel, NoLoss
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.loop import SimLoop
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.smr.client import Client
from repro.snapshot import CompactionPolicy
from repro.storage.stable import StorageFabric


class CRaftDeployment:
    """A set of C-Raft sites grouped into clusters."""

    def __init__(self, loop: SimLoop, network: Network, rng: RngRegistry,
                 trace: TraceRecorder, fabric: StorageFabric,
                 topology: Topology, local_timing: TimingConfig,
                 global_timing: TimingConfig) -> None:
        self.loop = loop
        self.network = network
        self.rng = rng
        self.trace = trace
        self.fabric = fabric
        self.topology = topology
        self.local_timing = local_timing
        self.global_timing = global_timing
        self.servers: dict[str, CRaftServer] = {}
        self.clients: dict[str, Client] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_server(self, server: CRaftServer) -> None:
        self.servers[server.name] = server
        self.network.register(server)

    def add_client(self, site: str, name: str | None = None,
                   proposal_timeout: float | None = None,
                   max_attempts: int | None = None,
                   session: bool = False) -> Client:
        """Attach a client to ``site``. ``session=True`` makes it a
        session client and switches every site (all clusters -- batches
        propagate applied ids everywhere) to session dedup."""
        if site not in self.servers:
            raise ExperimentError(f"unknown site: {site!r}")
        if name is None:
            name = f"client.{site}.{len(self.clients)}"
        timeout = (proposal_timeout if proposal_timeout is not None
                   else self.local_timing.proposal_timeout)
        client = Client(name, self.loop, self.network, site,
                        proposal_timeout=timeout, max_attempts=max_attempts,
                        session=session)
        if session:
            for server in self.servers.values():
                server.enable_session_tracking()
        self.clients[name] = client
        self.network.register(client)
        return client

    def start_all(self) -> None:
        for server in self.servers.values():
            server.start()

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------
    def run_for(self, duration: float) -> None:
        self.loop.run_for(duration)

    def run_until(self, predicate: Callable[[], bool], timeout: float,
                  step: float = 0.05) -> bool:
        deadline = self.loop.now() + timeout
        while self.loop.now() < deadline:
            if predicate():
                return True
            self.loop.run_for(step)
        return predicate()

    def run_until_local_leaders(self, timeout: float = 10.0) -> dict[str, str]:
        """Run until every cluster has a leader; returns cluster -> site."""
        def all_elected() -> bool:
            return all(self.local_leader(c) is not None
                       for c in self.topology.clusters)
        if not self.run_until(all_elected, timeout):
            missing = [c for c in self.topology.clusters
                       if self.local_leader(c) is None]
            raise ExperimentError(f"no local leader in {missing} "
                                  f"within {timeout}s")
        return {c: self.local_leader(c) for c in self.topology.clusters}

    def run_until_global_ready(self, timeout: float = 30.0) -> str:
        """Run until every cluster leader sits in the global configuration
        and one of them is the global leader; returns the global leader
        site. (Requiring the global leader to be a *current* local leader
        skips the transient where the retiring bootstrap seed still holds
        global leadership while its demotion to observer is in flight.)"""
        def ready() -> bool:
            global_leader = self.global_leader()
            if global_leader is None:
                return False
            locals_now = set()
            for cluster in self.topology.clusters:
                leader = self.local_leader(cluster)
                if leader is None:
                    return False
                engine = self.servers[leader].global_engine
                if engine is None or not engine.is_member:
                    return False
                locals_now.add(leader)
            return global_leader in locals_now
        if not self.run_until(ready, timeout):
            raise ExperimentError(f"global level not ready within {timeout}s")
        return self.global_leader()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def local_leader(self, cluster: str) -> str | None:
        best_name, best_term = None, -1
        for name in self.topology.nodes_in_cluster(cluster):
            server = self.servers.get(name)
            if server is None or not server.alive:
                continue
            if self.network.is_disconnected(name):
                continue
            engine = server.local_engine
            if engine.role is Role.LEADER and engine.current_term > best_term:
                best_name, best_term = name, engine.current_term
        return best_name

    def global_leader(self) -> str | None:
        best_name, best_term = None, -1
        for name, server in self.servers.items():
            if not server.alive or self.network.is_disconnected(name):
                continue
            engine = server.global_engine
            if engine is None:
                continue
            if engine.role is Role.LEADER and engine.current_term > best_term:
                best_name, best_term = name, engine.current_term
        return best_name

    def total_global_applied(self) -> int:
        """Highest count of inner entries applied from the global log at
        any site (the Fig. 5 throughput numerator)."""
        return max((len(s._global_applied_ids)
                    for s in self.servers.values()), default=0)

    def global_observers(self) -> tuple[str, ...]:
        """Standing non-voting observers of the governing global
        configuration, as seen by the global leader (else by any live
        global engine -- the retired seed's own engine included)."""
        leader = self.global_leader()
        if leader is not None:
            return self.servers[leader].global_engine.configuration.observers
        for server in self.servers.values():
            if server.alive and server.global_engine is not None:
                return server.global_engine.configuration.observers
        return ()


def build_craft_deployment(
        topology: Topology, latency: LatencyModel,
        loss: LossModel | None = None, seed: int = 0,
        local_timing: TimingConfig | None = None,
        global_timing: TimingConfig | None = None,
        batch_policy: BatchPolicy | None = None,
        trace_enabled: bool = True,
        state_machine_factory: Callable[[], Any] | None = None,
        local_compaction: CompactionPolicy | None = None,
        global_compaction: CompactionPolicy | None = None,
        transfer: TransferConfig | None = None,
        bandwidth: float | None = None,
        shared_link: bool = False,
        global_seed_site: str | None = None) -> CRaftDeployment:
    """Build (without starting) a C-Raft deployment over ``topology``.

    ``bandwidth`` (simulated bytes/second) wraps ``latency`` in a
    :class:`BandwidthLatencyModel` (congestion-aware
    :class:`SharedLinkBandwidthModel` when ``shared_link``); ``transfer``
    tunes snapshot shipping at both consensus levels (monolithic vs
    chunked).
    """
    if shared_link and bandwidth is None:
        raise ExperimentError("shared_link needs a bandwidth")
    loop = SimLoop()
    rng = RngRegistry(seed)
    trace = TraceRecorder(enabled=trace_enabled)
    if bandwidth is not None:
        wrapper = (SharedLinkBandwidthModel if shared_link
                   else BandwidthLatencyModel)
        latency = wrapper(latency, bandwidth)
    network = Network(loop, rng, latency,
                      loss if loss is not None else NoLoss(), trace)
    fabric = StorageFabric()
    local_timing = local_timing or TimingConfig.intra_cluster()
    global_timing = global_timing or TimingConfig.inter_cluster()
    deployment = CRaftDeployment(loop, network, rng, trace, fabric,
                                 topology, local_timing, global_timing)
    if global_seed_site is None:
        first_cluster = topology.clusters[0]
        global_seed_site = topology.nodes_in_cluster(first_cluster)[0]
    for cluster in topology.clusters:
        members = topology.nodes_in_cluster(cluster)
        config = Configuration(tuple(members))
        for name in members:
            server = CRaftServer(
                name=name, cluster=cluster, loop=loop, network=network,
                fabric=fabric, local_bootstrap=config,
                global_seed=global_seed_site, local_timing=local_timing,
                global_timing=global_timing, rng=rng, trace=trace,
                batch_policy=batch_policy,
                state_machine_factory=state_machine_factory,
                local_compaction=local_compaction,
                global_compaction=global_compaction,
                transfer=transfer)
            deployment.add_server(server)
    return deployment
