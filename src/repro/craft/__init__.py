"""C-Raft: the paper's second contribution (Section V).

Sites form clusters; each cluster runs Fast Raft on a *local* log, and the
cluster leaders run a second Fast Raft instance among themselves on the
*global* log. Before a cluster leader inserts anything into its global
log, it commits a *global state entry* describing the insert through
intra-cluster consensus -- so if the leader dies, its successor
reconstructs the cluster's inter-cluster state from the local log, joins
the global configuration, and inter-cluster consensus continues. Locally
committed client entries are shipped cluster-to-cluster in batches.

Modules:

- :mod:`repro.craft.local` -- the intra-cluster engine (Fast Raft plus the
  global-commit piggyback on local AppendEntries),
- :mod:`repro.craft.global_engine` -- the inter-cluster engine (Fast Raft
  with every log insert gated through local consensus),
- :mod:`repro.craft.batching` -- batch assembly policy,
- :mod:`repro.craft.server` -- the site actor tying both levels together,
- :mod:`repro.craft.deployment` -- multi-cluster deployment builder.
"""

from repro.craft.batching import Batcher
from repro.craft.deployment import CRaftDeployment, build_craft_deployment
from repro.craft.server import CRaftServer

__all__ = ["Batcher", "CRaftDeployment", "CRaftServer",
           "build_craft_deployment"]
