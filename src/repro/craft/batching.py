"""Batch assembly: which locally committed entries go global, and when.

The paper's Fig. 5 configuration proposes "a batch of entries to the
global log after ten entries were committed in the local log"; the policy
here is count-based with an optional age-based flush so interactive
deployments do not strand a partial batch forever.

On top of the count-based default sits an opt-in *adaptive* mode: an
EWMA of the observed global-commit latency and of the batch byte-size
drives the effective ``batch_size`` / ``max_age`` / ``max_outstanding``
between configured floors and ceilings. Slow global rounds grow the
batch (amortizing the fixed per-round cost over more entries) and widen
the outstanding window; fast rounds shrink both back toward the floors
for responsiveness. A byte ceiling caps the entry count regardless of
what the latency signal asked for. ``adaptive=False`` (the default)
leaves every decision exactly where the paper's count-based policy put
it, so the fig5/ablation goldens are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.consensus.entry import BatchPayload, EntryKind, LogEntry
from repro.errors import ConfigurationError
from repro.net.sizes import estimate_size


@dataclass(frozen=True)
class BatchPolicy:
    """When to propose a batch."""

    #: Propose once this many local DATA entries await batching.
    batch_size: int = 10
    #: Also propose a partial batch once its oldest entry is this old
    #: (seconds); None disables age-based flushing (the paper's setup).
    max_age: float | None = None
    #: How many proposed-but-uncommitted batches may be outstanding.
    max_outstanding: int = 1

    # --- adaptive coalescing (opt-in; defaults keep the count-based
    # --- policy untouched) -------------------------------------------
    #: Let observed commit latency / batch bytes move the knobs.
    adaptive: bool = False
    #: Bounds the effective batch size may move between.
    batch_floor: int = 1
    batch_ceiling: int = 64
    #: Bounds for the effective age flush (None: age never adapts).
    age_floor: float | None = None
    age_ceiling: float | None = None
    #: Upper bound for the outstanding window (None: pinned at
    #: ``max_outstanding``).
    outstanding_ceiling: int | None = None
    #: Commit latency the controller steers toward (seconds).
    target_commit_latency: float = 0.5
    #: Byte ceiling per batch (None: bytes never cap the count).
    target_batch_bytes: int | None = None
    #: EWMA smoothing factor for both signals.
    ewma_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if not self.adaptive:
            return
        if not (1 <= self.batch_floor <= self.batch_ceiling):
            raise ConfigurationError(
                f"bad adaptive batch bounds "
                f"[{self.batch_floor}, {self.batch_ceiling}]")
        if (self.age_floor is not None and self.age_ceiling is not None
                and self.age_floor > self.age_ceiling):
            raise ConfigurationError(
                f"bad adaptive age bounds "
                f"[{self.age_floor}, {self.age_ceiling}]")
        if (self.outstanding_ceiling is not None
                and self.outstanding_ceiling < self.max_outstanding):
            raise ConfigurationError(
                "outstanding_ceiling below max_outstanding")
        if not (0.0 < self.ewma_alpha <= 1.0):
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        if self.target_commit_latency <= 0:
            raise ConfigurationError("target_commit_latency must be > 0")


class Batcher:
    """Tracks locally committed DATA entries not yet published globally."""

    def __init__(self, cluster: str, policy: BatchPolicy) -> None:
        self.cluster = cluster
        self.policy = policy
        self._pending: list[tuple[int, LogEntry]] = []
        self._pending_since: float | None = None
        self._next_unbatched = 1   # first local index not yet covered
        self._sequence = 0
        self._outstanding = 0
        # Adaptive-controller state (inert unless policy.adaptive).
        self._ewma_latency: float | None = None
        self._ewma_entry_bytes: float | None = None
        self._adaptive_size = policy.batch_size
        self._adaptive_age = (policy.max_age if policy.max_age is not None
                              else policy.age_floor)
        self._adaptive_outstanding = policy.max_outstanding

    # ------------------------------------------------------------------
    # Effective knobs (identical to the policy unless adaptive)
    # ------------------------------------------------------------------
    @property
    def effective_batch_size(self) -> int:
        if self.policy.adaptive:
            return self._adaptive_size
        return self.policy.batch_size

    @property
    def effective_max_age(self) -> float | None:
        if self.policy.adaptive:
            return self._adaptive_age
        return self.policy.max_age

    @property
    def effective_max_outstanding(self) -> int:
        if self.policy.adaptive:
            return self._adaptive_outstanding
        return self.policy.max_outstanding

    @property
    def has_age_flush(self) -> bool:
        """Whether an age-based flush can ever trigger (the server only
        arms its flush timer when this is set)."""
        return self.effective_max_age is not None

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def observe_local_commit(self, index: int, entry: LogEntry,
                             now: float) -> None:
        """Called for every locally applied entry, in order."""
        if index < self._next_unbatched:
            return  # already covered by an earlier batch
        if entry.kind is not EntryKind.DATA:
            return
        if not self._pending:
            self._pending_since = now
        self._pending.append((index, entry))

    def observe_local_commit_range(self, pairs: list[tuple[int, LogEntry]],
                                   now: float) -> None:
        """Range form of :meth:`observe_local_commit`: one call per apply
        sweep instead of one per entry. Pure bookkeeping -- identical
        pending state to feeding the entries one at a time."""
        pending = self._pending
        floor = self._next_unbatched
        for index, entry in pairs:
            if index < floor or entry.kind is not EntryKind.DATA:
                continue
            if not pending:
                self._pending_since = now
            pending.append((index, entry))

    def observe_and_check(self, index: int, entry: LogEntry,
                          now: float) -> bool:
        """Fused observe + readiness check for the apply hot loop: one
        call per entry, returning whether a batch proposal is now due."""
        if (index >= self._next_unbatched
                and entry.kind is EntryKind.DATA):
            pending = self._pending
            if not pending:
                self._pending_since = now
            pending.append((index, entry))
        return self.ready(now)

    def rebuild(self, applied: list[tuple[int, LogEntry]],
                next_unbatched: int, now: float) -> None:
        """Reset from a fresh leader's view: ``applied`` is the local
        applied log; entries at ``next_unbatched`` or later are pending."""
        self._next_unbatched = next_unbatched
        self._pending = [(i, e) for i, e in applied
                         if i >= next_unbatched
                         and e.kind is EntryKind.DATA]
        self._pending_since = now if self._pending else None
        self._outstanding = 0

    # ------------------------------------------------------------------
    # Adaptive controller
    # ------------------------------------------------------------------
    def observe_commit_latency(self, latency: float) -> None:
        """Feed one observed propose->global-commit latency (seconds).
        No-op unless the policy is adaptive."""
        policy = self.policy
        if not policy.adaptive:
            return
        alpha = policy.ewma_alpha
        if self._ewma_latency is None:
            self._ewma_latency = latency
        else:
            self._ewma_latency = (alpha * latency
                                  + (1.0 - alpha) * self._ewma_latency)
        self._adapt()

    def _observe_batch_bytes(self, total_bytes: int, count: int) -> None:
        if count <= 0:
            return
        alpha = self.policy.ewma_alpha
        per_entry = total_bytes / count
        if self._ewma_entry_bytes is None:
            self._ewma_entry_bytes = per_entry
        else:
            self._ewma_entry_bytes = (alpha * per_entry
                                      + (1.0 - alpha)
                                      * self._ewma_entry_bytes)

    def _adapt(self) -> None:
        policy = self.policy
        latency = self._ewma_latency
        if latency is None:
            return
        ratio = latency / policy.target_commit_latency
        size = self._adaptive_size
        if ratio > 1.1:
            # Global rounds are slow: amortize them over bigger batches
            # and a wider outstanding window.
            size = min(size + max(1, size // 4), policy.batch_ceiling)
            ceiling = (policy.outstanding_ceiling
                       if policy.outstanding_ceiling is not None
                       else policy.max_outstanding)
            self._adaptive_outstanding = min(
                self._adaptive_outstanding + 1, ceiling)
            if (self._adaptive_age is not None
                    and policy.age_ceiling is not None):
                self._adaptive_age = min(self._adaptive_age * 1.25,
                                         policy.age_ceiling)
        elif ratio < 0.9:
            # Rounds are fast: shrink back toward the floors for
            # responsiveness.
            size = max(size - max(1, size // 4), policy.batch_floor)
            self._adaptive_outstanding = max(
                self._adaptive_outstanding - 1, policy.max_outstanding)
            if (self._adaptive_age is not None
                    and policy.age_floor is not None):
                self._adaptive_age = max(self._adaptive_age * 0.8,
                                         policy.age_floor)
        if policy.target_batch_bytes and self._ewma_entry_bytes:
            cap = max(policy.batch_floor,
                      int(policy.target_batch_bytes
                          // max(self._ewma_entry_bytes, 1.0)))
            size = min(size, cap)
        self._adaptive_size = size

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def next_unbatched(self) -> int:
        return self._next_unbatched

    def ready(self, now: float) -> bool:
        if self._outstanding >= self.effective_max_outstanding:
            return False
        if len(self._pending) >= self.effective_batch_size:
            return True
        max_age = self.effective_max_age
        if (max_age is not None and self._pending
                and self._pending_since is not None
                and now - self._pending_since >= max_age):
            return True
        return False

    def age_deadline(self) -> float | None:
        """When the oldest pending entry expires (None: no pending
        partial batch, or age flushing disabled). The server arms its
        precise flush timer from this."""
        max_age = self.effective_max_age
        if max_age is None or self._pending_since is None:
            return None
        return self._pending_since + max_age

    def take_batch(self, now: float) -> BatchPayload:
        """Assemble the next batch (caller checked :meth:`ready`)."""
        size = min(self.effective_batch_size, len(self._pending))
        taken = self._pending[:size]
        self._pending = self._pending[size:]
        self._pending_since = now if self._pending else None
        self._sequence += 1
        self._outstanding += 1
        first, last = taken[0][0], taken[-1][0]
        self._next_unbatched = last + 1
        if self.policy.adaptive:
            total = 0
            for _, entry in taken:
                memo = entry._est_size
                total += memo if memo is not None else estimate_size(entry)
            self._observe_batch_bytes(total, len(taken))
        return BatchPayload(cluster=self.cluster, sequence=self._sequence,
                            entries=tuple(e for _, e in taken),
                            local_range=(first, last))

    def batch_done(self) -> None:
        """A batch we proposed committed globally."""
        if self._outstanding > 0:
            self._outstanding -= 1

    def advance_covered(self, through_local_index: int) -> None:
        """Another leader's batch (or a recovered one of ours) already
        covers local entries through this index; drop them from pending."""
        if through_local_index < self._next_unbatched - 1:
            return
        self._next_unbatched = max(self._next_unbatched,
                                   through_local_index + 1)
        self._pending = [(i, e) for i, e in self._pending
                         if i >= self._next_unbatched]
        if not self._pending:
            self._pending_since = None


class ProposalCoalescer:
    """Leader-side arrival coalescing for the flat engines' ``ClientRequest``
    -> propose path (opt-in).

    The server buffers incoming client requests and hands them to the
    engine in one flush -- when the pending count reaches the effective
    batch size, or when the oldest buffered request hits the age bound
    (``max_age=None`` flushes on the next loop turn, coalescing only
    same-instant arrivals). Duplicate request ids coalesce; the stored
    occurrence keeps the first arrival's sender.
    """

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self._pending: dict[str, tuple[Any, str]] = {}
        self._pending_since: float | None = None
        # Adaptive size shares the Batcher's controller shape, driven by
        # whatever latency the owner feeds in.
        self._ewma_latency: float | None = None
        self._size = policy.batch_size

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def add(self, request_id: str, message: Any, sender: str,
            now: float) -> bool:
        """Buffer one request; True when the batch is flush-ready."""
        if not self._pending:
            self._pending_since = now
        if request_id not in self._pending:
            self._pending[request_id] = (message, sender)
        return len(self._pending) >= self._size

    def age_deadline(self) -> float | None:
        """When the buffered batch must flush regardless of size."""
        if self._pending_since is None:
            return None
        return self._pending_since + (self.policy.max_age or 0.0)

    def drain(self) -> list[tuple[Any, str]]:
        drained = list(self._pending.values())
        self._pending.clear()
        self._pending_since = None
        return drained

    def observe_commit_latency(self, latency: float) -> None:
        """Adapt the flush size between the policy's floor/ceiling."""
        policy = self.policy
        if not policy.adaptive:
            return
        alpha = policy.ewma_alpha
        if self._ewma_latency is None:
            self._ewma_latency = latency
        else:
            self._ewma_latency = (alpha * latency
                                  + (1.0 - alpha) * self._ewma_latency)
        ratio = self._ewma_latency / policy.target_commit_latency
        if ratio > 1.1:
            self._size = min(self._size + max(1, self._size // 4),
                             policy.batch_ceiling)
        elif ratio < 0.9:
            self._size = max(self._size - max(1, self._size // 4),
                             policy.batch_floor)
