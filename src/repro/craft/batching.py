"""Batch assembly: which locally committed entries go global, and when.

The paper's Fig. 5 configuration proposes "a batch of entries to the
global log after ten entries were committed in the local log"; the policy
here is count-based with an optional age-based flush so interactive
deployments do not strand a partial batch forever.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.entry import BatchPayload, EntryKind, LogEntry


@dataclass(frozen=True)
class BatchPolicy:
    """When to propose a batch."""

    #: Propose once this many local DATA entries await batching.
    batch_size: int = 10
    #: Also propose a partial batch once its oldest entry is this old
    #: (seconds); None disables age-based flushing (the paper's setup).
    max_age: float | None = None
    #: How many proposed-but-uncommitted batches may be outstanding.
    max_outstanding: int = 1


class Batcher:
    """Tracks locally committed DATA entries not yet published globally."""

    def __init__(self, cluster: str, policy: BatchPolicy) -> None:
        self.cluster = cluster
        self.policy = policy
        self._pending: list[tuple[int, LogEntry]] = []
        self._pending_since: float | None = None
        self._next_unbatched = 1   # first local index not yet covered
        self._sequence = 0
        self._outstanding = 0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def observe_local_commit(self, index: int, entry: LogEntry,
                             now: float) -> None:
        """Called for every locally applied entry, in order."""
        if index < self._next_unbatched:
            return  # already covered by an earlier batch
        if entry.kind is not EntryKind.DATA:
            return
        if not self._pending:
            self._pending_since = now
        self._pending.append((index, entry))

    def rebuild(self, applied: list[tuple[int, LogEntry]],
                next_unbatched: int, now: float) -> None:
        """Reset from a fresh leader's view: ``applied`` is the local
        applied log; entries at ``next_unbatched`` or later are pending."""
        self._next_unbatched = next_unbatched
        self._pending = [(i, e) for i, e in applied
                         if i >= next_unbatched
                         and e.kind is EntryKind.DATA]
        self._pending_since = now if self._pending else None
        self._outstanding = 0

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def next_unbatched(self) -> int:
        return self._next_unbatched

    def ready(self, now: float) -> bool:
        if self._outstanding >= self.policy.max_outstanding:
            return False
        if len(self._pending) >= self.policy.batch_size:
            return True
        if (self.policy.max_age is not None and self._pending
                and self._pending_since is not None
                and now - self._pending_since >= self.policy.max_age):
            return True
        return False

    def take_batch(self, now: float) -> BatchPayload:
        """Assemble the next batch (caller checked :meth:`ready`)."""
        size = min(self.policy.batch_size, len(self._pending))
        taken = self._pending[:size]
        self._pending = self._pending[size:]
        self._pending_since = now if self._pending else None
        self._sequence += 1
        self._outstanding += 1
        first, last = taken[0][0], taken[-1][0]
        self._next_unbatched = last + 1
        return BatchPayload(cluster=self.cluster, sequence=self._sequence,
                            entries=tuple(e for _, e in taken),
                            local_range=(first, last))

    def batch_done(self) -> None:
        """A batch we proposed committed globally."""
        if self._outstanding > 0:
            self._outstanding -= 1

    def advance_covered(self, through_local_index: int) -> None:
        """Another leader's batch (or a recovered one of ours) already
        covers local entries through this index; drop them from pending."""
        if through_local_index < self._next_unbatched - 1:
            return
        self._next_unbatched = max(self._next_unbatched,
                                   through_local_index + 1)
        self._pending = [(i, e) for i, e in self._pending
                         if i >= self._next_unbatched]
        if not self._pending:
            self._pending_since = None
