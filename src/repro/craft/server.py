"""CRaftServer: one site running both levels of C-Raft.

Responsibilities (Section V):

- run intra-cluster Fast Raft on the local log and answer local clients;
- materialize a **global-log view** from committed GLOBAL_STATE entries in
  the local log, so every cluster member holds every global entry its
  cluster has vouched for;
- while local leader: run inter-cluster Fast Raft, gating every global
  insert through local consensus, and publish batches of locally
  committed entries to the global log;
- manage global membership from local leadership: join the global
  configuration on winning the local election, announce a leave on losing
  it (silent failures are caught by the global member timeout).

Bootstrap: the global configuration starts as ``{global_seed}`` -- one
designated site that runs a global engine from startup so the first real
cluster leaders have someone to join through; the seed retires from the
global configuration as soon as another member exists (unless it is a
cluster leader itself). The paper configures its AWS deployment manually
and leaves bootstrap unspecified; see DESIGN.md.

Retirement is a *demotion*, not a departure: the retired seed stays
registered as a standing **non-voting observer** that replicates the
global log but never counts toward commit quorums. While the voting set
is degenerate (two cluster leaders or fewer), the observer is promoted to
a tiebreaker for leader elections and CONFIG-entry decisions, so a
two-region deployment that loses one leader can still elect a global
leader, commit the dead leader's exclusion, and admit its successor --
the ROADMAP's "global-membership deadlock". Independently, a successor's
join names the crashed leader it replaces (``JoinRequest.replaces``), and
once caught up the successor counts toward that exclusion's quorum (see
README "Global membership liveness").

Crash recovery needs no special view logic: the view is a pure function of
the locally *applied* prefix, and on restart the local protocol re-applies
the committed prefix from stable storage, rebuilding the view, the state
machine, and the batch bookkeeping in one sweep.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.consensus.config import Configuration, TransferConfig
from repro.consensus.engine import EngineContext, Role
from repro.consensus.entry import (
    EntryKind,
    GlobalStatePayload,
    InsertedBy,
    LogEntry,
)
from repro.consensus.log import RaftLog
from repro.consensus.messages import (
    ClientReply,
    ClientRequest,
    Envelope,
    JoinRequest,
    LeaveRequest,
)
from repro.consensus.timing import TimingConfig
from repro import perf
from repro.craft.batching import Batcher, BatchPolicy
from repro.craft.global_engine import CRaftGlobalEngine
from repro.craft.local import CRaftLocalEngine
from repro.net.network import Network
from repro.sim.actor import Actor
from repro.sim.loop import SimLoop
from repro.sim.rng import RngRegistry
from repro.sim.timers import PeriodicTimer, RestartableTimer
from repro.sim.trace import TraceRecorder
from repro.smr.sessions import SessionTable
from repro.snapshot import CompactionPolicy, Snapshot, SnapshotImage, SnapshotStore
from repro.snapshot.types import governing_config, newest
from repro.storage.stable import StorageFabric


class CRaftServer(Actor):
    """A C-Raft site."""

    def __init__(self, name: str, cluster: str, loop: SimLoop,
                 network: Network, fabric: StorageFabric,
                 local_bootstrap: Configuration, global_seed: str,
                 local_timing: TimingConfig, global_timing: TimingConfig,
                 rng: RngRegistry, trace: TraceRecorder,
                 batch_policy: BatchPolicy | None = None,
                 state_machine_factory: Callable[[], Any] | None = None,
                 local_compaction: CompactionPolicy | None = None,
                 global_compaction: CompactionPolicy | None = None,
                 transfer: TransferConfig | None = None
                 ) -> None:
        super().__init__(loop, name)
        self.cluster = cluster
        self._network = network
        self._fabric = fabric
        self._local_bootstrap = local_bootstrap
        self.global_seed = global_seed
        self._local_timing = local_timing
        self._global_timing = global_timing
        self._rng = rng
        self._trace = trace
        # Mirrors BaseEngine._tracing: pinned True under the legacy core
        # so gate call sites always build their trace payloads
        # (pre-change cost); the recorder still drops them when disabled.
        self._tracing = True if perf.LEGACY_CORE else trace.enabled
        self._batch_policy = batch_policy or BatchPolicy()
        self._sm_factory = state_machine_factory
        self._local_compaction = local_compaction
        self._global_compaction = global_compaction
        self._transfer = transfer if transfer is not None else TransferConfig()
        self._seq = itertools.count(1)
        if perf.LEGACY_CORE:
            self.on_message = self._legacy_on_message  # type: ignore[method-assign]
            self._on_local_apply = self._legacy_on_local_apply  # type: ignore[method-assign]
        # Sticky across crashes (deployment property, like the factory
        # args): whether to maintain the per-session dedup table.
        self._session_tracking = False
        #: Retried requests answered from the session table (metrics).
        self.session_duplicates = 0
        self._reset_volatile()
        self.local_engine = self._build_local_engine()
        self.global_engine: CRaftGlobalEngine | None = None
        if name == global_seed:
            self._ensure_global_engine()

    def _reset_volatile(self) -> None:
        self.global_view = RaftLog()
        self.global_commit = 0
        #: Last local leader other than this site (successor joins name
        #: it as the global member they replace).
        self._prior_local_leader: str | None = None
        #: Advisory value from the AppendEntries piggyback; never used to
        #: apply (see GlobalStatePayload.global_commit for why).
        self.global_commit_hint = 0
        self._last_replicated_commit = 0
        self._marker_check_scheduled = False
        self.global_applied_index = 0
        #: Term of the newest applied global entry (snapshot anchor).
        self.global_applied_term = 0
        #: Newest global snapshot this site has adopted or captured.
        self._global_snapshot_base: Snapshot | None = None
        #: Highest local index covered by an applied BATCH, per cluster.
        self._covered_by_cluster: dict[str, int] = {}
        #: Applied local DATA entries not yet covered by a global batch,
        #: maintained incrementally (appended on apply, pruned as batch
        #: coverage advances, seeded from a restored snapshot image) so
        #: snapshot capture and leader takeover never rescan the whole
        #: apply history.
        self._uncovered_data: list[tuple[int, LogEntry]] = []
        #: Applied global (index, entry) pairs, in order.
        self.global_applied: list[tuple[int, LogEntry]] = []
        self._global_applied_ids: set[str] = set()
        #: (time, inner entry count) per applied batch -- throughput metric.
        self.global_apply_events: list[tuple[float, int]] = []
        self.global_state_machine = (self._sm_factory()
                                     if self._sm_factory else None)
        #: Local applied (index, entry) pairs, in order.
        self.applied_log: list[tuple[int, LogEntry]] = []
        self.batcher = Batcher(self.cluster, self._batch_policy)
        self._clients: dict[str, str] = {}
        self._replied: set[str] = set()
        self._sessions = SessionTable()
        self._pending_gates: dict[str, Callable[[], None]] = {}
        self._gate_timers: dict[str, RestartableTimer] = {}
        self._outstanding_batches: dict[str, RestartableTimer] = {}
        self._batch_tick: PeriodicTimer | None = None
        #: Precise max_age flush (armed only for age-bounded policies;
        #: the default count-only policy never allocates a timer).
        self._batch_age_timer: RestartableTimer | None = None
        #: Propose time per in-flight batch (adaptive policies only):
        #: feeds the global-commit-latency EWMA that steers the knobs.
        self._batch_proposed_at: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Engine construction
    # ------------------------------------------------------------------
    def _build_local_engine(self) -> CRaftLocalEngine:
        ctx = EngineContext(
            name=self.name, loop=self.loop, send=self._send_local_level,
            rng=self._rng.stream(f"node.{self.name}"), trace=self._trace,
            store=self._fabric.store_for(self.name),
            timing=self._local_timing, scope=self.cluster,
            on_apply=self._on_local_apply,
            on_origin_commit=self._on_local_origin_commit,
            on_role_change=self._on_local_role_change,
            on_leader_change=self._note_local_leader,
            capture_snapshot=self._capture_local_snapshot,
            on_snapshot_restore=self._restore_local_snapshot,
            compaction=self._local_compaction, transfer=self._transfer)
        engine = CRaftLocalEngine(ctx, self._local_bootstrap)
        engine.global_commit_provider = lambda: self.global_commit
        engine.global_commit_sink = self._note_global_commit_hint
        return engine

    def _ensure_global_engine(self) -> None:
        if self.global_engine is not None:
            return
        store = self._fabric.store_for(f"{self.name}::global")
        # The global log is determined by the local log's state entries
        # (Section V-B); rebuild it from the view on every (re)creation.
        # A compacted prefix is covered by the newest global snapshot
        # (from an earlier engine life on this store, or inherited through
        # the view's gated snapshot entries) -- anchor the log there.
        base = newest(store.get(SnapshotStore.KEY),
                      self._global_snapshot_base)
        if base is not None:
            # Monotonic: writes (and charges fsync cost) only when the
            # durable resume point actually advances.
            SnapshotStore(store).save(base)
        log = RaftLog()
        if base is not None:
            log.install_snapshot(base.last_included_index,
                                 base.last_included_term)
        for index, entry in self.global_view:
            if index > log.snapshot_index:
                log.insert(index, entry)
        store.set("log", log)
        ctx = EngineContext(
            name=self.name, loop=self.loop, send=self._send_global_level,
            rng=self._rng.stream(f"node.{self.name}.global"),
            trace=self._trace, store=store, timing=self._global_timing,
            scope="global",
            on_apply=self._on_global_engine_apply,
            on_origin_commit=self._on_global_origin_commit,
            on_config_change=self._on_global_config_change,
            capture_snapshot=self._capture_global_snapshot,
            on_snapshot_restore=self._restore_global_snapshot,
            compaction=self._global_compaction, transfer=self._transfer)
        engine = CRaftGlobalEngine(
            ctx, Configuration((self.global_seed,)))
        engine.insert_gate = self._gate_through_local_consensus
        engine.snapshot_gate = self._gate_global_snapshot
        self.global_engine = engine
        if self.alive:
            engine.start()
        self._trace.record(self.now(), self.name, "craft.global_engine.up",
                           cluster=self.cluster)

    def _drop_global_engine(self) -> None:
        if self.global_engine is None:
            return
        self.global_engine.stop()
        self.global_engine = None
        for timer in self._gate_timers.values():
            timer.cancel()
        self._gate_timers.clear()
        self._pending_gates.clear()
        for timer in self._outstanding_batches.values():
            timer.cancel()
        self._outstanding_batches.clear()
        self._trace.record(self.now(), self.name, "craft.global_engine.down",
                           cluster=self.cluster)

    # ------------------------------------------------------------------
    # Transport adapters
    # ------------------------------------------------------------------
    def _send_local_level(self, dst: str, message: Any) -> None:
        # env_fast is checked per call, not at construction: set_latency
        # can swap in a size-aware model mid-run, and the legacy core
        # keeps the wrapper allocation so bench_perf prices it.
        if self._network.env_fast:
            self._network.send_enveloped(self.name, dst, "local",
                                         self.cluster, message)
            return
        self._network.send(self.name, dst,
                           Envelope("local", self.cluster, message))

    def _send_global_level(self, dst: str, message: Any) -> None:
        if self._network.env_fast:
            self._network.send_enveloped(self.name, dst, "global",
                                         "global", message)
            return
        self._network.send(self.name, dst,
                           Envelope("global", "global", message))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.local_engine.start()
        if self.global_engine is not None:
            self.global_engine.start()
        self._batch_tick = PeriodicTimer(
            self.loop, self._local_timing.heartbeat_interval,
            self._maybe_propose_batch)
        self._batch_tick.start()

    def crash(self) -> None:
        self.local_engine.stop()
        self._drop_global_engine()
        if self._batch_tick is not None:
            self._batch_tick.stop()
        if self._batch_age_timer is not None:
            self._batch_age_timer.cancel()
        self.kill()

    def recover(self) -> None:
        """Restart from stable storage. The local engine re-applies the
        committed prefix, which rebuilds the view/state machine/batcher."""
        self._reset_volatile()
        self.local_engine = self._build_local_engine()
        self.revive()
        self.local_engine.start()
        # Probe-before-trust: the restored local configuration may be
        # older than the member timeout (evicted while down). The global
        # level needs no probe -- global seats follow local leadership
        # (_became_local_leader re-joins with a seat hint).
        self.local_engine.begin_recovery_probe()
        if self.name == self.global_seed:
            # The seed's global engine (voter at bootstrap, standing
            # observer after retirement) survives crashes: recreate it
            # from its own stable store, mirroring construction.
            self._ensure_global_engine()
        self._batch_tick = PeriodicTimer(
            self.loop, self._local_timing.heartbeat_interval,
            self._maybe_propose_batch)
        self._batch_tick.start()
        self._trace.record(self.now(), self.name, "node.recovered")

    # ------------------------------------------------------------------
    # Message routing
    # ------------------------------------------------------------------
    def on_message(self, message: Any, sender: str) -> None:
        # Per-class routing: C-Raft's wire alphabet at this layer is two
        # final classes (Envelope for all consensus traffic, ClientRequest
        # from clients), so exact-type tests replace the isinstance walk;
        # Envelope first because steady-state traffic is all envelopes.
        # The legacy core swaps in _legacy_on_message at construction.
        message_type = type(message)
        if message_type is Envelope:
            level = message.level
            if level == "local":
                if message.scope == self.cluster:
                    self.local_engine.handle(message.inner, sender)
            elif level == "global":
                if self.global_engine is not None:
                    self.global_engine.handle(message.inner, sender)
                else:
                    self._relay_global_without_engine(message.inner, sender)
            return
        if message_type is ClientRequest:
            if (self._session_tracking and message.sequence
                    and self._sessions.is_duplicate(message.session_id,
                                                    message.sequence)):
                self._reply_duplicate(message, sender)
                return
            self._clients[message.request_id] = sender
            self.local_engine.handle(message, sender)
        # else: stray unwrapped message; C-Raft traffic is enveloped

    def _reply_duplicate(self, message: ClientRequest, sender: str) -> None:
        """A retry of an already-applied request: complete it without
        re-entering local consensus (exactly-once over at-least-once)."""
        sequence, index = self._sessions.last_applied(message.session_id)
        self.session_duplicates += 1
        self._trace.record(self.now(), self.name, "session.duplicate",
                           request_id=message.request_id)
        self._network.send_local(self.name, sender, ClientReply(
            request_id=message.request_id, ok=True,
            index=index if (sequence == message.sequence and index) else None,
            info="duplicate"))

    def enable_session_tracking(self) -> None:
        """Turn on per-session dedup (idempotent; survives crashes)."""
        self._session_tracking = True

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    def on_enveloped(self, level: str, scope: str, inner: Any,
                     sender: str) -> None:
        """Routing target of :meth:`Network.send_enveloped`: the Envelope
        branch of :meth:`on_message` with the wrapper fields passed loose
        (the fast path never allocates the wrapper)."""
        if level == "local":
            if scope == self.cluster:
                self.local_engine.handle(inner, sender)
        elif level == "global":
            if self.global_engine is not None:
                self.global_engine.handle(inner, sender)
            else:
                self._relay_global_without_engine(inner, sender)

    def _legacy_on_message(self, message: Any, sender: str) -> None:
        """Pre-flattening routing (isinstance chain), selected under
        ``REPRO_LEGACY_CORE``."""
        if isinstance(message, ClientRequest):
            # Session dedup is serving semantics, not a perf-gated
            # optimization: both cores answer retries without consensus.
            if (self._session_tracking and message.sequence
                    and self._sessions.is_duplicate(message.session_id,
                                                    message.sequence)):
                self._reply_duplicate(message, sender)
                return
            self._clients[message.request_id] = sender
            self.local_engine.handle(message, sender)
            return
        if not isinstance(message, Envelope):
            return  # stray unwrapped message; C-Raft traffic is enveloped
        if message.level == "local":
            if message.scope == self.cluster:
                self.local_engine.handle(message.inner, sender)
            return
        if message.level == "global":
            if self.global_engine is not None:
                self.global_engine.handle(message.inner, sender)
            else:
                self._relay_global_without_engine(message.inner, sender)
            return

    def _relay_global_without_engine(self, inner: Any, sender: str) -> None:
        """This site no longer runs a global engine (e.g. the retired
        bootstrap seed), but its view may still know the current global
        members; forward join requests there so late-joining cluster
        leaders are not stranded on a stale contact."""
        if not isinstance(inner, JoinRequest):
            return
        # The view's CONFIG entries may have been compacted away by view
        # pruning; the snapshot base still carries the governing
        # membership, so resolve between the two exactly as snapshot
        # capture does. (Found by the migrated-region scenario: a late
        # region's join was silently dropped at the retired seed once
        # every CONFIG entry fell below the prune point.)
        _, members, __ = governing_config(
            self._global_snapshot_base,
            self.global_view.best_config_entry())
        if not members:
            return
        for member in members:
            if member not in (self.name, sender):
                self._send_global_level(member, inner)

    # ------------------------------------------------------------------
    # The insert gate (Section V-B)
    # ------------------------------------------------------------------
    def _gate_through_local_consensus(
            self, pairs: list[tuple[int, LogEntry]],
            then: Callable[[], None],
            snapshot: Snapshot | None = None) -> None:
        """Commit a GLOBAL_STATE entry locally, then run ``then``."""
        entry_id = f"{self.name}:gstate.{next(self._seq)}.{self.now():.4f}"
        payload = GlobalStatePayload(inserts=tuple(pairs),
                                     global_commit=self.global_commit,
                                     snapshot=snapshot)
        self._last_replicated_commit = max(self._last_replicated_commit,
                                           self.global_commit)
        entry = LogEntry(entry_id=entry_id, kind=EntryKind.GLOBAL_STATE,
                         payload=payload, origin=self.name, term=0,
                         inserted_by=InsertedBy.SELF)
        self._pending_gates[entry_id] = then
        if self._tracing:
            self._trace.record(self.now(), self.name, "craft.gate.open",
                               entry_id=entry_id,
                               indices=[i for i, _ in pairs],
                               snapshot=(snapshot.last_included_index
                                         if snapshot is not None else None))
        self.local_engine.propose(entry)
        timer = RestartableTimer(
            self.loop, lambda: self._retry_gate(entry_id, entry))
        timer.reset(self._local_timing.proposal_timeout)
        self._gate_timers[entry_id] = timer

    def _retry_gate(self, entry_id: str, entry: LogEntry) -> None:
        if entry_id not in self._pending_gates:
            return
        self.local_engine.propose(entry)
        self._gate_timers[entry_id].reset(self._local_timing.proposal_timeout)

    def _complete_gate(self, entry_id: str) -> None:
        then = self._pending_gates.pop(entry_id, None)
        timer = self._gate_timers.pop(entry_id, None)
        if timer is not None:
            timer.cancel()
        if then is not None:
            if self._tracing:
                self._trace.record(self.now(), self.name,
                                   "craft.gate.closed", entry_id=entry_id)
            then()

    # ------------------------------------------------------------------
    # Local-level callbacks
    # ------------------------------------------------------------------
    def _on_local_apply(self, index: int, entry: LogEntry) -> None:
        self.applied_log.append((index, entry))
        if entry.kind is EntryKind.DATA:
            self._uncovered_data.append((index, entry))
            if self._session_tracking:
                self._sessions.observe(entry.entry_id, index)
            # Fused observe+readiness check: one Batcher call per applied
            # entry instead of two, and the (role, membership, take)
            # pipeline in _maybe_propose_batch runs only when a batch can
            # actually form. Equivalent to the legacy body because
            # _maybe_propose_batch is a no-op whenever ready() is False.
            if self.batcher.observe_and_check(index, entry, self.now()):
                self._maybe_propose_batch()
            elif self.batcher.has_age_flush:
                self._arm_batch_age_timer()
        elif entry.kind is EntryKind.GLOBAL_STATE:
            if entry.payload.snapshot is not None:
                # A gated global snapshot: every cluster member inherits
                # the image, exactly like gated inserts.
                self._adopt_global_snapshot(entry.payload.snapshot)
            for gindex, gentry in entry.payload.inserts:
                self._view_insert(gindex, gentry)
            # Effective global commit advances only here (local-log order
            # guarantees every corrective insert below it arrived first).
            if entry.payload.global_commit > self.global_commit:
                self.global_commit = entry.payload.global_commit
            self._advance_global_apply()
            self._complete_gate(entry.entry_id)

    def _legacy_on_local_apply(self, index: int, entry: LogEntry) -> None:
        """Pre-restructure apply path (separate observe and readiness
        calls), selected under ``REPRO_LEGACY_CORE`` at construction."""
        self.applied_log.append((index, entry))
        if entry.kind is EntryKind.DATA:
            self._uncovered_data.append((index, entry))
            if self._session_tracking:
                # Session dedup is serving semantics, not a perf-gated
                # optimization: both cores must observe applied ids.
                self._sessions.observe(entry.entry_id, index)
            self.batcher.observe_local_commit(index, entry, self.now())
            self._maybe_propose_batch()
        elif entry.kind is EntryKind.GLOBAL_STATE:
            if entry.payload.snapshot is not None:
                self._adopt_global_snapshot(entry.payload.snapshot)
            for gindex, gentry in entry.payload.inserts:
                self._view_insert(gindex, gentry)
            if entry.payload.global_commit > self.global_commit:
                self.global_commit = entry.payload.global_commit
            self._advance_global_apply()
            self._complete_gate(entry.entry_id)

    def _arm_batch_age_timer(self) -> None:
        """Schedule the pending batch's age flush for exactly when it
        falls due, instead of waiting for the next heartbeat-period tick
        (which added up to a full heartbeat of avoidable latency)."""
        deadline = self.batcher.age_deadline()
        if deadline is None:
            return
        if self._batch_age_timer is None:
            self._batch_age_timer = RestartableTimer(
                self.loop, self._on_batch_age_timeout)
        self._batch_age_timer.reset(max(0.0, deadline - self.now()))

    def _on_batch_age_timeout(self) -> None:
        if self.alive:
            self._maybe_propose_batch()

    def _view_insert(self, gindex: int, gentry: LogEntry) -> None:
        """Materialize one global entry, with the same finality guards as
        the engine's log: state entries usually commit locally in creation
        order, but one that lost its local slot and was retried can land
        *after* its corrective successor -- its content must then lose.
        """
        if gindex <= self.global_applied_index:
            return  # applied entries are final
        existing = self.global_view.get(gindex)
        if existing is not None:
            if (existing.inserted_by is InsertedBy.LEADER
                    and gentry.inserted_by is InsertedBy.SELF):
                return  # tentative insert never displaces a decided one
            if (existing.inserted_by is InsertedBy.LEADER
                    and gentry.inserted_by is InsertedBy.LEADER
                    and gentry.term < existing.term):
                return  # stale decision from a deposed global leader
        self.global_view.insert(gindex, gentry)

    def _on_local_origin_commit(self, entry: LogEntry, index: int) -> None:
        if entry.kind is not EntryKind.DATA:
            return
        request_id = entry.entry_id
        client = self._clients.get(request_id)
        if client is None or request_id in self._replied:
            return
        self._replied.add(request_id)
        self._network.send_local(self.name, client, ClientReply(
            request_id=request_id, ok=True, index=index))

    def _on_local_role_change(self, role: Role) -> None:
        if role is Role.LEADER:
            self._became_local_leader()
        else:
            self._lost_local_leadership()

    def _note_local_leader(self, leader: str | None) -> None:
        """Local-engine leader hint: remember the last leader that was
        not this site, so a takeover's global join can name the member
        whose seat it claims (the exclusion-quorum rule)."""
        if leader is not None and leader != self.name:
            self._prior_local_leader = leader

    def _became_local_leader(self) -> None:
        covered = self._covered_by_cluster.get(self.cluster, 0)
        self.batcher.rebuild(self._uncovered_data, covered + 1, self.now())
        if self.batcher.has_age_flush:
            self._arm_batch_age_timer()
        self._ensure_global_engine()
        replaces = (self._prior_local_leader
                    if self._prior_local_leader != self.name else None)
        self.global_engine.seek_membership(replaces=replaces)
        self._trace.record(self.now(), self.name, "craft.local_leader",
                           cluster=self.cluster,
                           next_unbatched=self.batcher.next_unbatched)

    def _lost_local_leadership(self) -> None:
        engine = self.global_engine
        if engine is None:
            return
        engine.wants_membership = False
        engine.join_replaces = None
        if self.name in engine.configuration:
            # Announce the departure; the global member timeout covers
            # the case where this message is lost. The bootstrap seed
            # retires into a standing observer instead of leaving.
            leave = LeaveRequest(site=self.name,
                                 as_observer=(self.name == self.global_seed))
            for member in engine.configuration.others(self.name):
                self._send_global_level(member, leave)
        elif self.name not in engine.configuration.observers:
            self._drop_global_engine()

    # ------------------------------------------------------------------
    # Global-level callbacks
    # ------------------------------------------------------------------
    def _note_global_commit_hint(self, global_commit: int) -> None:
        if global_commit > self.global_commit_hint:
            self.global_commit_hint = global_commit

    def _on_global_engine_apply(self, gindex: int, gentry: LogEntry) -> None:
        # At a global member the engine's own commit advance is safe to
        # apply directly: its log (and therefore the view, which the gate
        # fills first) already holds the final entry.
        if gindex > self.global_commit:
            self.global_commit = gindex
            self._advance_global_apply()
            if not self._marker_check_scheduled:
                self._marker_check_scheduled = True
                self.loop.call_soon(self._maybe_propose_commit_marker)

    def _maybe_propose_commit_marker(self) -> None:
        """Replicate a bare global-commit advance to the cluster when no
        gated insert carried (or will carry) it."""
        self._marker_check_scheduled = False
        if not self.alive or self.local_engine.role is not Role.LEADER:
            return
        if self.global_commit <= self._last_replicated_commit:
            return
        self._gate_through_local_consensus([], lambda: None)

    def _on_global_origin_commit(self, entry: LogEntry, gindex: int) -> None:
        if entry.kind is EntryKind.BATCH:
            self._batch_settled(entry.entry_id)

    def _on_global_config_change(self, config: Configuration) -> None:
        if self.global_engine is None:
            return
        am_member = self.name in config
        local_leader = self.local_engine.role is Role.LEADER
        if not am_member and not local_leader:
            if self.name not in config.observers:
                self._drop_global_engine()
            # A standing observer keeps its engine: it replicates the
            # global log and serves as the degenerate-config tiebreaker.
            return
        if (am_member and not local_leader and config.size > 1
                and self.name == self.global_seed):
            # Seed retirement: a real cluster leader has joined. Demote
            # to a standing non-voting observer rather than leaving, so
            # a two-leader voting set keeps a tiebreaker.
            leave = LeaveRequest(site=self.name, as_observer=True)
            for member in config.others(self.name):
                self._send_global_level(member, leave)

    # ------------------------------------------------------------------
    # Global apply (every site, through the view)
    # ------------------------------------------------------------------
    def _advance_global_apply(self) -> None:
        while self.global_applied_index < self.global_commit:
            nxt = self.global_applied_index + 1
            gentry = self.global_view.get(nxt)
            if gentry is None:
                break  # wait for the state entry carrying it
            self.global_applied_index = nxt
            self.global_applied_term = gentry.term
            self.global_applied.append((nxt, gentry))
            if gentry.kind is EntryKind.BATCH:
                self._apply_batch(gentry)

    def _apply_batch(self, gentry: LogEntry) -> None:
        payload = gentry.payload
        applied = 0
        track_sessions = self._session_tracking
        for inner in payload.entries:
            if inner.entry_id in self._global_applied_ids:
                continue
            self._global_applied_ids.add(inner.entry_id)
            applied += 1
            if track_sessions:
                # Cross-cluster observation: a session client that
                # re-attaches to another region after failover still gets
                # duplicate suppression there (index 0: the local slot is
                # unknown for remote entries, completion is what counts).
                self._sessions.observe(inner.entry_id, 0)
            if self.global_state_machine is not None:
                self.global_state_machine.apply(inner.payload)
        self.global_apply_events.append((self.now(), applied))
        self._covered_by_cluster[payload.cluster] = max(
            self._covered_by_cluster.get(payload.cluster, 0),
            payload.local_range[1])
        if payload.cluster == self.cluster:
            self.batcher.advance_covered(payload.local_range[1])
            self._prune_uncovered_data()
            self._batch_settled(gentry.entry_id)

    # ------------------------------------------------------------------
    # Snapshots (Section V meets log compaction)
    # ------------------------------------------------------------------
    def _capture_local_snapshot(self) -> SnapshotImage:
        """The local-level snapshot image is a composite: the local log's
        GLOBAL_STATE entries materialize the global view, so compacting
        the local log must carry (a) the global state as of the capture
        point, (b) the still-unapplied view tail, and (c) the local DATA
        entries no global batch has covered yet (a future local leader
        must still be able to batch them)."""
        view_tail = tuple((i, e) for i, e in self.global_view
                          if i > self.global_applied_index)
        self._prune_uncovered_data()
        global_image = self._current_global_snapshot()
        state = {"global": global_image,
                 "view": view_tail,
                 "unbatched": tuple(self._uncovered_data)}
        if global_image is not None:
            # The composite image just captured the applied global prefix,
            # so the materialized view below that point is now redundant:
            # prune it here, not only on snapshot *adoption* -- a site
            # that compacts locally but never restores would otherwise
            # hold its full global history in memory forever.
            self._global_snapshot_base = newest(self._global_snapshot_base,
                                                global_image)
            self.global_view.install_snapshot(
                global_image.last_included_index,
                global_image.last_included_term)
        return SnapshotImage(machine_state=state, applied_ids=())

    def _restore_local_snapshot(self, snapshot: Snapshot) -> None:
        """Adopt a local-level snapshot (recovery from a compacted local
        log, or a live InstallSnapshot from the local leader)."""
        state = snapshot.machine_state or {}
        if state.get("global") is not None:
            self._adopt_global_snapshot(state["global"])
        for gindex, gentry in state.get("view", ()):
            self._view_insert(gindex, gentry)
        self._uncovered_data = [
            (i, e) for i, e in state.get("unbatched", ())]
        self.applied_log = []
        self._advance_global_apply()
        self._trace.record(self.now(), self.name, "craft.snapshot_restored",
                           level="local", index=snapshot.last_included_index)

    def _capture_global_snapshot(self) -> SnapshotImage:
        """The global engine's snapshot image: the global machine plus
        per-cluster batch coverage (so restored sites neither re-batch
        nor re-apply covered entries)."""
        machine = (self.global_state_machine.snapshot()
                   if self.global_state_machine is not None else None)
        return SnapshotImage(
            machine_state={"machine": machine,
                           "covered": dict(self._covered_by_cluster)},
            applied_ids=tuple(sorted(self._global_applied_ids)))

    def _restore_global_snapshot(self, snapshot: Snapshot) -> None:
        self._adopt_global_snapshot(snapshot)

    def _adopt_global_snapshot(self, snapshot: Snapshot) -> None:
        """Fast-forward this site's global state to a snapshot image (a
        no-op when the site is already past it)."""
        self._global_snapshot_base = newest(self._global_snapshot_base,
                                            snapshot)
        if snapshot.last_included_index <= self.global_applied_index:
            return
        state = snapshot.machine_state or {}
        if self._sm_factory is not None:
            self.global_state_machine = self._sm_factory()
            if state.get("machine") is not None:
                self.global_state_machine.restore(state["machine"])
        self._global_applied_ids = set(snapshot.applied_ids)
        if self._session_tracking:
            # Max-merge (not replace): locally applied entries not yet
            # covered by the snapshot may already be in the table.
            for entry_id in snapshot.applied_ids:
                self._sessions.observe(entry_id, 0)
        self.global_applied_index = snapshot.last_included_index
        self.global_applied_term = snapshot.last_included_term
        self.global_applied = []
        if snapshot.last_included_index > self.global_commit:
            self.global_commit = snapshot.last_included_index
        for cluster, through in (state.get("covered") or {}).items():
            self._covered_by_cluster[cluster] = max(
                self._covered_by_cluster.get(cluster, 0), through)
        self.global_view.install_snapshot(snapshot.last_included_index,
                                          snapshot.last_included_term)
        self.batcher.advance_covered(
            self._covered_by_cluster.get(self.cluster, 0))
        self._prune_uncovered_data()
        self._trace.record(self.now(), self.name, "craft.snapshot_restored",
                           level="global",
                           index=snapshot.last_included_index)
        self._advance_global_apply()

    def _current_global_snapshot(self) -> Snapshot | None:
        """A Snapshot of the global level as this site has applied it
        (for nesting into local-level snapshots); None until something
        global applied. (Adopting a base always advances the applied
        index too, so the base is necessarily None in this branch.)"""
        if self.global_applied_index == 0:
            return self._global_snapshot_base
        version, members, observers = governing_config(
            self._global_snapshot_base,
            self.global_view.best_config_entry(
                upto=self.global_applied_index))
        image = self._capture_global_snapshot()
        return Snapshot(
            last_included_index=self.global_applied_index,
            last_included_term=self.global_applied_term,
            machine_state=image.machine_state,
            applied_ids=image.applied_ids,
            config_members=members, config_version=version,
            config_observers=observers,
            taken_at=self.now(), origin=self.name)

    def _prune_uncovered_data(self) -> None:
        """Drop entries once global batches cover them, so long-lived
        servers never re-scan the full apply history."""
        if not self._uncovered_data:
            return
        covered = self._covered_by_cluster.get(self.cluster, 0)
        self._uncovered_data = [
            (i, e) for i, e in self._uncovered_data if i > covered]

    def _gate_global_snapshot(self, snapshot: Snapshot,
                              then: Callable[[], None]) -> None:
        """Replicate a leader-shipped global snapshot through local
        consensus before the global engine adopts it (the cluster-wide
        analogue of the gated insert)."""
        self._gate_through_local_consensus([], then, snapshot=snapshot)

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def _maybe_propose_batch(self) -> None:
        if self.local_engine.role is not Role.LEADER:
            return
        engine = self.global_engine
        if engine is None or not engine.is_member:
            return
        if not self.batcher.ready(self.now()):
            return
        payload = self.batcher.take_batch(self.now())
        entry = LogEntry(
            entry_id=(f"{self.name}:batch.{self.cluster}."
                      f"{payload.sequence}.{self.now():.4f}"),
            kind=EntryKind.BATCH, payload=payload, origin=self.name,
            term=0, inserted_by=InsertedBy.SELF)
        self._trace.record(self.now(), self.name, "craft.batch.proposed",
                           sequence=payload.sequence, size=len(payload),
                           local_range=payload.local_range)
        timer = RestartableTimer(
            self.loop, lambda: self._retry_batch(entry))
        timer.reset(self._global_timing.proposal_timeout)
        self._outstanding_batches[entry.entry_id] = timer
        if self._batch_policy.adaptive:
            self._batch_proposed_at[entry.entry_id] = self.now()
        engine.propose(entry)
        if self.batcher.has_age_flush:
            self._arm_batch_age_timer()

    def _retry_batch(self, entry: LogEntry) -> None:
        timer = self._outstanding_batches.get(entry.entry_id)
        if timer is None:
            return
        engine = self.global_engine
        if engine is None:
            return
        engine.propose(entry)
        timer.reset(self._global_timing.proposal_timeout)

    def _batch_settled(self, entry_id: str) -> None:
        timer = self._outstanding_batches.pop(entry_id, None)
        if timer is None:
            return
        timer.cancel()
        if self._batch_policy.adaptive:
            proposed = self._batch_proposed_at.pop(entry_id, None)
            if proposed is not None:
                # Propose -> global origin-commit (or batch apply,
                # whichever is seen first): the latency signal that
                # steers the adaptive knobs.
                self.batcher.observe_commit_latency(self.now() - proposed)
        self.batcher.batch_done()
        self._maybe_propose_batch()
