"""Simulated network substrate.

Models the paper's testbed network: UDP-like (unordered, unreliable,
asynchronous) messaging with configurable latency and loss.

- Latency models (:mod:`repro.net.latency`): constant, uniform, and a
  region matrix mirroring the paper's AWS inter-region RTTs.
- Loss models (:mod:`repro.net.loss`): Bernoulli drop (the paper's ``tc``
  settings), per-link overrides, and time-windowed schedules.
- :class:`~repro.net.network.Network`: the switch fabric -- registration,
  unicast/broadcast, partitions, disconnects, and per-type statistics.
"""

from repro.net.latency import (
    BandwidthLatencyModel,
    ConstantLatency,
    LatencyModel,
    RegionLatencyModel,
    UniformLatency,
)
from repro.net.loss import (
    BernoulliLoss,
    LossModel,
    NoLoss,
    PerLinkLoss,
    ScheduledLoss,
)
from repro.net.network import Network
from repro.net.sizes import SizedMessage, estimate_size, payload_size
from repro.net.stats import NetworkStats
from repro.net.topology import Topology

__all__ = [
    "BandwidthLatencyModel",
    "BernoulliLoss",
    "ConstantLatency",
    "LatencyModel",
    "LossModel",
    "Network",
    "NetworkStats",
    "NoLoss",
    "PerLinkLoss",
    "RegionLatencyModel",
    "ScheduledLoss",
    "SizedMessage",
    "Topology",
    "UniformLatency",
    "estimate_size",
    "payload_size",
]
