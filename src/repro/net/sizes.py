"""Message payload sizing: the vocabulary of the size-aware cost model.

The paper's latency model (and PR 1's) charged every message the same
one-way delay, so a 10,000-entry snapshot "arrived" as fast as a
heartbeat. Real links serialize bytes; to charge transfer cost the
network needs a *size* for every message, in simulated bytes.

Two sources, in priority order:

- a message may implement the :class:`SizedMessage` protocol -- a
  ``payload_size()`` method returning its wire size (AppendEntries sums
  its entries, a snapshot chunk reports its slice length);
- anything else is measured structurally by :func:`estimate_size`, a
  deterministic recursive walk (strings/bytes by length, scalars at a
  fixed width, containers and dataclasses by summed fields plus a small
  framing overhead).

The estimate is intentionally crude -- the simulation needs *relative*
cost (a snapshot is thousands of times a heartbeat), not wire-accurate
encodings.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Protocol, runtime_checkable

#: Fixed cost of a scalar field (ints, floats, bools, enum tags).
SCALAR_SIZE = 8
#: Framing overhead per container or dataclass (type tag + length).
FRAME_SIZE = 16
#: Per-message envelope overhead (addresses, type tag) added by callers
#: that want a floor under tiny messages.
HEADER_SIZE = 32


@runtime_checkable
class SizedMessage(Protocol):
    """A message that knows its own wire size in simulated bytes."""

    def payload_size(self) -> int:
        ...  # pragma: no cover - protocol signature


def estimate_size(obj: Any) -> int:
    """Deterministic structural size of ``obj`` in simulated bytes."""
    if obj is None:
        return 0
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return SCALAR_SIZE
    if isinstance(obj, enum.Enum):
        return SCALAR_SIZE
    if isinstance(obj, dict):
        return FRAME_SIZE + sum(estimate_size(k) + estimate_size(v)
                                for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return FRAME_SIZE + sum(estimate_size(item) for item in obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return FRAME_SIZE + sum(
            estimate_size(getattr(obj, f.name))
            for f in dataclasses.fields(obj))
    # Opaque object: charge a frame so it is never free.
    return FRAME_SIZE


def payload_size(message: Any) -> int:
    """Wire size of ``message``: its own claim if sized, else an estimate."""
    size_fn = getattr(message, "payload_size", None)
    if callable(size_fn):
        return size_fn()
    return HEADER_SIZE + estimate_size(message)
