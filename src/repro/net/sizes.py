"""Message payload sizing: the vocabulary of the size-aware cost model.

The paper's latency model (and PR 1's) charged every message the same
one-way delay, so a 10,000-entry snapshot "arrived" as fast as a
heartbeat. Real links serialize bytes; to charge transfer cost the
network needs a *size* for every message, in simulated bytes.

Two sources, in priority order:

- a message may implement the :class:`SizedMessage` protocol -- a
  ``payload_size()`` method returning its wire size (AppendEntries sums
  its entries, a snapshot chunk reports its slice length);
- anything else is measured structurally by :func:`estimate_size`, a
  deterministic walk (strings/bytes by length, scalars at a fixed
  width, containers and dataclasses by summed fields plus a small
  framing overhead).

The estimate is intentionally crude -- the simulation needs *relative*
cost (a snapshot is thousands of times a heartbeat), not wire-accurate
encodings.

Hot-path mechanics (the values are unchanged; only the cost moved):

- the walk is **iterative** -- an explicit work stack instead of
  recursion, so deep entry payloads never pay Python call frames or
  risk the recursion limit;
- immutable dataclasses that declare an ``_est_size`` slot (log
  entries, entry payloads, the entry-carrying messages) get their
  structural size **memoized in place** the first time they are walked.
  A broadcast that used to re-walk every entry payload once per
  destination per retry now walks each entry once, ever. Cache fields
  (``_est_size``/``_wire_size``) are never counted by the walk, so a
  cached object measures exactly what an uncached one does.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Protocol, runtime_checkable

#: Fixed cost of a scalar field (ints, floats, bools, enum tags).
SCALAR_SIZE = 8
#: Framing overhead per container or dataclass (type tag + length).
FRAME_SIZE = 16
#: Per-message envelope overhead (addresses, type tag) added by callers
#: that want a floor under tiny messages.
HEADER_SIZE = 32

#: Cache slots excluded from structural sums (see module docstring).
_CACHE_FIELDS = ("_est_size", "_wire_size")

#: type -> (sized field names, has an _est_size memo slot).
_CLASS_INFO: dict[type, tuple[tuple[str, ...], bool]] = {}

#: Frame-closing sentinel for the iterative walk (cannot collide with
#: any sizable object).
_CLOSE = object()


@runtime_checkable
class SizedMessage(Protocol):
    """A message that knows its own wire size in simulated bytes."""

    def payload_size(self) -> int:
        ...  # pragma: no cover - protocol signature


def _class_info(cls: type) -> tuple[tuple[str, ...], bool]:
    info = _CLASS_INFO.get(cls)
    if info is None:
        names = tuple(f.name for f in dataclasses.fields(cls)
                      if f.name not in _CACHE_FIELDS)
        cacheable = any(f.name == "_est_size"
                        for f in dataclasses.fields(cls))
        info = (names, cacheable)
        _CLASS_INFO[cls] = info
    return info


def estimate_size(obj: Any) -> int:
    """Deterministic structural size of ``obj`` in simulated bytes."""
    # Leaf and memo-hit fast paths: most calls size a scalar, a short
    # string, or an already-measured entry -- none of which should pay
    # for the walker's stacks.
    if obj is None:
        return 0
    cls = obj.__class__
    if cls is str or cls is bytes:
        return len(obj)
    if cls is bool:
        return 1
    if cls is int or cls is float:
        return SCALAR_SIZE
    # Only the opt-in dataclasses define an ``_est_size`` slot, so a
    # filled one is a finished measurement (checking is_dataclass here
    # would cost a function call per memo hit for no information).
    cached = getattr(obj, "_est_size", None)
    if cached is not None:
        return cached
    sums = [0]
    owners: list[Any] = []
    work = [obj]
    while work:
        o = work.pop()
        if o is _CLOSE:
            sub = sums.pop()
            owner = owners.pop()
            object.__setattr__(owner, "_est_size", sub)
            sums[-1] += sub
            continue
        if o is None:
            continue
        if isinstance(o, (bytes, bytearray)):
            sums[-1] += len(o)
        elif isinstance(o, str):
            sums[-1] += len(o)
        elif isinstance(o, bool):
            sums[-1] += 1
        elif isinstance(o, (int, float)):
            sums[-1] += SCALAR_SIZE
        elif isinstance(o, enum.Enum):
            sums[-1] += SCALAR_SIZE
        elif isinstance(o, dict):
            sums[-1] += FRAME_SIZE
            work.extend(o.keys())
            work.extend(o.values())
        elif isinstance(o, (list, tuple, set, frozenset)):
            sums[-1] += FRAME_SIZE
            work.extend(o)
        elif dataclasses.is_dataclass(o) and not isinstance(o, type):
            names, cacheable = _class_info(o.__class__)
            if cacheable:
                cached = o._est_size
                if cached is not None:
                    sums[-1] += cached
                    continue
                # Open a frame: everything between here and the _CLOSE
                # marker sums into this object's memo.
                owners.append(o)
                sums.append(FRAME_SIZE)
                work.append(_CLOSE)
            else:
                sums[-1] += FRAME_SIZE
            for name in names:
                work.append(getattr(o, name))
        else:
            # Opaque object: charge a frame so it is never free.
            sums[-1] += FRAME_SIZE
    return sums[0]


def payload_size(message: Any) -> int:
    """Wire size of ``message``: its own claim if sized, else an estimate."""
    size_fn = getattr(message, "payload_size", None)
    if callable(size_fn):
        return size_fn()
    return HEADER_SIZE + estimate_size(message)
