"""One-way message latency models.

The paper reports round-trip latencies of 10--300 ms between AWS regions
and under 1 ms within a region; models here are parameterized in one-way
seconds (half the RTT).
"""

from __future__ import annotations

import random

from repro import perf
from repro.errors import NetworkError


class LatencyModel:
    """Samples the one-way delay for a message from ``src`` to ``dst``."""

    #: When True the network computes each message's payload size and
    #: calls :meth:`transfer_delay`; plain models skip that work.
    size_aware = False

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        raise NotImplementedError

    def transfer_delay(self, rng: random.Random, src: str, dst: str,
                       size: int, now: float = 0.0) -> float:
        """One-way delay for a message of ``size`` simulated bytes.

        The default ignores size (pure propagation delay); decorators
        like :class:`BandwidthLatencyModel` add serialization cost.
        ``now`` is the send instant on the simulation clock; stateful
        models (:class:`SharedLinkBandwidthModel`) use it to queue
        concurrent transfers behind each other.
        """
        return self.sample(rng, src, dst)


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` seconds.

    Useful for tests and for the message-round validation experiment
    (Figs. 1-2), where latency must be an exact multiple of hops.
    """

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise NetworkError(f"delay must be non-negative: {delay!r}")
        self.delay = delay

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay!r})"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high)`` seconds."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise NetworkError(f"invalid latency range [{low!r}, {high!r})")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low!r}, {self.high!r})"


class BandwidthLatencyModel(LatencyModel):
    """Decorator adding ``size / bandwidth`` serialization delay.

    Wraps any :class:`LatencyModel`: the base model supplies propagation
    delay, this adds the time the payload spends on the wire. This is
    what makes a 10,000-entry InstallSnapshot slower than a heartbeat --
    and what chunked snapshot transfer exists to hide (chunks overlap
    their serialization with acks in flight; one monolithic image cannot).

    ``bandwidth`` is in simulated bytes per second (one-way). Each
    message is charged independently, i.e. the link is modeled as
    uncongested: concurrent messages do not queue behind each other.
    That under-charges a saturated link but keeps the model stateless
    and the simulation deterministic per-message.
    """

    size_aware = True

    def __init__(self, base: LatencyModel, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise NetworkError(f"bandwidth must be positive: {bandwidth!r}")
        self.base = base
        self.bandwidth = bandwidth

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return self.base.sample(rng, src, dst)

    def serialization_delay(self, size: int) -> float:
        """Wire time for ``size`` bytes (monotone non-decreasing)."""
        return max(0, size) / self.bandwidth

    def transfer_delay(self, rng: random.Random, src: str, dst: str,
                       size: int, now: float = 0.0) -> float:
        return (self.base.transfer_delay(rng, src, dst, size, now)
                + self.serialization_delay(size))

    def __repr__(self) -> str:
        return (f"BandwidthLatencyModel({self.base!r}, "
                f"bandwidth={self.bandwidth!r})")


class SharedLinkBandwidthModel(BandwidthLatencyModel):
    """Bandwidth model where concurrent transfers on one link contend.

    :class:`BandwidthLatencyModel` charges every message independently,
    as if each had the link to itself. Here each directed ``src -> dst``
    link is a FIFO queue: a message starts serializing only when the
    link finishes the previous one, so two overlapping chunk windows
    slow each other down exactly as on a real saturated pipe.

    The model is stateful (it remembers when each link frees up), which
    is still deterministic: state advances only on ``transfer_delay``
    calls, and those happen in simulation order.
    """

    def __init__(self, base: LatencyModel, bandwidth: float) -> None:
        super().__init__(base, bandwidth)
        self._busy_until: dict[tuple[str, str], float] = {}

    def link_busy_until(self, src: str, dst: str) -> float:
        """Time the ``src -> dst`` link finishes its queued transfers."""
        return self._busy_until.get((src, dst), 0.0)

    def transfer_delay(self, rng: random.Random, src: str, dst: str,
                       size: int, now: float = 0.0) -> float:
        start = max(now, self.link_busy_until(src, dst))
        finish = start + self.serialization_delay(size)
        self._busy_until[(src, dst)] = finish
        return ((finish - now)
                + self.base.transfer_delay(rng, src, dst, size, now))

    def __repr__(self) -> str:
        return (f"SharedLinkBandwidthModel({self.base!r}, "
                f"bandwidth={self.bandwidth!r})")


class RegionLatencyModel(LatencyModel):
    """Latency determined by the (region(src), region(dst)) pair.

    ``rtt_matrix`` maps unordered region pairs to round-trip seconds; the
    sampled one-way delay is ``rtt/2`` scaled by multiplicative jitter
    uniform in ``[1 - jitter, 1 + jitter]``. Nodes in the same region use
    the ``intra_rtt`` default unless the matrix overrides the self-pair.
    """

    def __init__(self, node_regions: dict[str, str],
                 rtt_matrix: dict[tuple[str, str], float],
                 intra_rtt: float = 0.001,
                 jitter: float = 0.1) -> None:
        if not 0 <= jitter < 1:
            raise NetworkError(f"jitter must be in [0, 1): {jitter!r}")
        self._node_regions = dict(node_regions)
        self._rtt: dict[tuple[str, str], float] = {}
        for (a, b), rtt in rtt_matrix.items():
            if rtt < 0:
                raise NetworkError(f"negative RTT for ({a!r}, {b!r})")
            self._rtt[self._key(a, b)] = rtt
        self._intra_rtt = intra_rtt
        self._jitter = jitter
        # (src, dst) -> one-way base delay. Region assignments are
        # fixed per node (add_node only ever adds), so resolving
        # region_of twice plus the matrix lookup per message is pure
        # rework; the jitter draw stays in sample() so the RNG stream
        # is untouched.
        self._pair_one_way: dict[tuple[str, str], float] = {}
        # Flat-sampler constants: ``rng.uniform(a, b)`` evaluates
        # ``a + (b - a) * rng.random()``, so with ``a = 1 - jitter`` and
        # ``b = 1 + jitter`` precomputed exactly as uniform() would
        # combine them, ``base * (lo + span * rng.random())`` is
        # bit-identical to the legacy draw -- same single RNG call, same
        # float operations in the same order. ``_sample_flat`` is
        # installed per instance so the per-message hot path skips the
        # jitter branch and the uniform() frame; the zero-jitter model
        # keeps the draw-free legacy path on both cores.
        self._jitter_lo = 1.0 - jitter
        self._jitter_span = (1.0 + jitter) - self._jitter_lo
        if jitter and not perf.LEGACY_CORE:
            self.sample = self._sample_flat  # type: ignore[method-assign]

    @staticmethod
    def _key(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def region_of(self, node: str) -> str:
        try:
            return self._node_regions[node]
        except KeyError:
            raise NetworkError(f"node {node!r} has no region") from None

    def add_node(self, node: str, region: str) -> None:
        """Register a node that joined after model construction."""
        self._node_regions[node] = region

    def rtt_between(self, region_a: str, region_b: str) -> float:
        if region_a == region_b:
            return self._rtt.get(self._key(region_a, region_b),
                                 self._intra_rtt)
        key = self._key(region_a, region_b)
        if key not in self._rtt:
            raise NetworkError(f"no RTT configured for {key!r}")
        return self._rtt[key]

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        one_way = self._pair_one_way.get((src, dst))
        if one_way is None:
            rtt = self.rtt_between(self.region_of(src), self.region_of(dst))
            one_way = rtt / 2.0
            self._pair_one_way[(src, dst)] = one_way
        if self._jitter:
            one_way *= rng.uniform(1.0 - self._jitter, 1.0 + self._jitter)
        return one_way

    def _sample_flat(self, rng: random.Random, src: str, dst: str) -> float:
        """Flat jittered sampler (see __init__); replaces ``sample`` on
        the current core when the model jitters."""
        one_way = self._pair_one_way.get((src, dst))
        if one_way is None:
            rtt = self.rtt_between(self.region_of(src), self.region_of(dst))
            one_way = rtt / 2.0
            self._pair_one_way[(src, dst)] = one_way
        return one_way * (self._jitter_lo + self._jitter_span * rng.random())

    def __repr__(self) -> str:
        regions = sorted({r for r in self._node_regions.values()})
        return (f"RegionLatencyModel(regions={regions}, "
                f"intra_rtt={self._intra_rtt}, jitter={self._jitter})")
