"""Network statistics: message counts by outcome and by message type."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class NetworkStats:
    """Counters maintained by :class:`repro.net.network.Network`.

    ``sent`` counts every ``send`` call; a message is then exactly one of
    ``delivered``, ``dropped`` (loss model), ``blocked`` (partition or
    disconnected endpoint), or ``dead_letter`` (receiver unknown/killed at
    delivery time).
    """

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    blocked: int = 0
    dead_letter: int = 0
    #: Simulated payload bytes sent (only charged when the latency model
    #: is size-aware; 0 otherwise -- sizing every message would cost real
    #: time for a number nothing consumes).
    bytes_sent: int = 0
    by_type: Counter = field(default_factory=Counter)
    bytes_by_type: Counter = field(default_factory=Counter)
    delivered_by_type: Counter = field(default_factory=Counter)

    def record_sent(self, type_name: str, size: int = 0) -> None:
        self.sent += 1
        self.by_type[type_name] += 1
        if size:
            self.bytes_sent += size
            self.bytes_by_type[type_name] += size

    def record_delivered(self, type_name: str) -> None:
        self.delivered += 1
        self.delivered_by_type[type_name] += 1

    def record_dropped(self) -> None:
        self.dropped += 1

    def record_blocked(self) -> None:
        self.blocked += 1

    def record_dead_letter(self) -> None:
        self.dead_letter += 1

    @property
    def loss_fraction(self) -> float:
        """Fraction of sent messages dropped by the loss model."""
        if self.sent == 0:
            return 0.0
        return self.dropped / self.sent

    def snapshot(self) -> dict[str, int]:
        """Plain-dict summary (for printing in experiment reports)."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "blocked": self.blocked,
            "dead_letter": self.dead_letter,
            "bytes_sent": self.bytes_sent,
        }
