"""The network fabric: registration, unicast/broadcast, partitions.

Semantics mirror UDP over the paper's testbed:

- no delivery guarantee (loss model),
- no ordering guarantee (each message samples its own latency, so a later
  message can overtake an earlier one),
- no duplication (the models here never duplicate; duplication resilience
  is still exercised by client retries).

Silent leaves and crashes are modelled by :meth:`disconnect` or by killing
the receiving actor; either way traffic to/from the site stops without any
notification to peers -- exactly what the protocols must detect.
"""

from __future__ import annotations

from typing import Any

from repro import perf
from repro.errors import NetworkError
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.loss import LossModel, NoLoss
from repro.net.sizes import payload_size
from repro.net.stats import NetworkStats
from repro.sim.actor import Actor
from repro.sim.loop import SimLoop
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


class Network:
    """Delivers messages between registered actors through the sim loop.

    ``send`` is one of the hottest functions of the whole simulation
    (every consensus message crosses it), so the trivial-model cases are
    precomputed instead of re-discovered per message: a :class:`NoLoss`
    model is never consulted (it draws no randomness, so skipping the
    call is observably identical), an exact :class:`ConstantLatency`
    model's delay is read from a cached float (its ``sample`` ignores
    the RNG), and the partition/disconnect check collapses to one flag
    test while no fault is installed. The flags refresh whenever a model
    is swapped or a fault installed; ``repro.perf``'s legacy core
    disables the fast paths entirely so ``bench_perf`` can price them.
    """

    def __init__(self, loop: SimLoop, rng: RngRegistry,
                 latency: LatencyModel, loss: LossModel | None = None,
                 trace: TraceRecorder | None = None) -> None:
        self._loop = loop
        self._latency_rng = rng.stream("net.latency")
        self._loss_rng = rng.stream("net.loss")
        self._latency = latency
        self._loss = loss if loss is not None else NoLoss()
        self._trace = trace
        self._actors: dict[str, Actor] = {}
        self._disconnected: set[str] = set()
        self._partition_groups: dict[str, int] | None = None
        self.stats = NetworkStats()
        self._fast_path = not perf.LEGACY_CORE
        self._no_loss = False
        self._fixed_delay: float | None = None
        self._refresh_model_flags()
        self._refresh_fault_flag()

    def _refresh_model_flags(self) -> None:
        """Recompute the trivial-model fast-path flags (see class doc)."""
        if not self._fast_path:
            self._no_loss = False
            self._fixed_delay = None
            self.env_fast = False
            return
        self._no_loss = type(self._loss) is NoLoss
        self._fixed_delay = (self._latency.delay
                             if type(self._latency) is ConstantLatency
                             else None)
        # Size-blind models never inspect the payload, so the enveloped
        # fast path (no wrapper allocation) is observably identical; a
        # size-aware model must see the real Envelope to price it.
        self.env_fast = not self._latency.size_aware

    def _refresh_fault_flag(self) -> None:
        self._faults_installed = (bool(self._disconnected)
                                  or self._partition_groups is not None
                                  or not self._fast_path)

    # ------------------------------------------------------------------
    # Membership of the fabric
    # ------------------------------------------------------------------
    def register(self, actor: Actor) -> None:
        """Attach an actor; its :attr:`Actor.name` becomes its address."""
        if actor.name in self._actors:
            raise NetworkError(f"address already registered: {actor.name!r}")
        self._actors[actor.name] = actor

    def replace(self, actor: Actor) -> None:
        """Re-bind an address to a new actor object (crash recovery)."""
        if actor.name not in self._actors:
            raise NetworkError(f"address not registered: {actor.name!r}")
        self._actors[actor.name] = actor

    def unregister(self, name: str) -> None:
        self._actors.pop(name, None)
        self._disconnected.discard(name)
        self._refresh_fault_flag()

    def is_registered(self, name: str) -> bool:
        return name in self._actors

    def actor(self, name: str) -> Actor:
        try:
            return self._actors[name]
        except KeyError:
            raise NetworkError(f"unknown address: {name!r}") from None

    @property
    def addresses(self) -> list[str]:
        return sorted(self._actors)

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def disconnect(self, name: str) -> None:
        """Silently cut a site off: nothing in, nothing out."""
        self._disconnected.add(name)
        self._refresh_fault_flag()

    def reconnect(self, name: str) -> None:
        self._disconnected.discard(name)
        self._refresh_fault_flag()

    def is_disconnected(self, name: str) -> bool:
        return name in self._disconnected

    def partition(self, groups: list[list[str]]) -> None:
        """Install a partition: only same-group pairs can communicate.

        Addresses not listed in any group are unreachable from everyone.
        """
        mapping: dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                if name in mapping:
                    raise NetworkError(
                        f"{name!r} appears in multiple partition groups")
                mapping[name] = index
        self._partition_groups = mapping
        self._refresh_fault_flag()

    def heal_partition(self) -> None:
        self._partition_groups = None
        self._refresh_fault_flag()

    def set_loss(self, loss: LossModel) -> None:
        """Swap the loss model mid-run (the paper's ``tc`` changes)."""
        self._loss = loss
        self._refresh_model_flags()

    def set_latency(self, latency: LatencyModel) -> None:
        self._latency = latency
        self._refresh_model_flags()

    @property
    def latency_model(self) -> LatencyModel:
        return self._latency

    @property
    def loss_model(self) -> LossModel:
        return self._loss

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, message: Any) -> None:
        """Unicast ``message``; delivery is scheduled on the sim loop.

        Sending to an unknown destination is allowed (counts as a dead
        letter at delivery time) because real systems can address departed
        sites. Self-addressed messages use the loopback path: immediate
        and lossless, exactly as ``tc``-shaped NIC traffic behaves on a
        real host (the paper's loss shaping never touches loopback).
        """
        type_name = type(message).__name__
        if src == dst:
            self.stats.record_sent(type_name)
            self._loop.call_soon(self._deliver_colocated, src, dst, message)
            return
        size_aware = self._latency.size_aware
        size = payload_size(message) if size_aware else 0
        self.stats.record_sent(type_name, size)
        if self._faults_installed and self._is_blocked(src, dst):
            self.stats.record_blocked()
            return
        # NoLoss draws no randomness, so skipping its call is identical.
        if not self._no_loss and self._loss.should_drop(
                self._loss_rng, src, dst, self._loop.now()):
            self.stats.record_dropped()
            if self._trace is not None:
                self._trace.record(self._loop.now(), src, "net.drop",
                                   dst=dst, type=type_name)
            return
        if size_aware:
            delay = self._latency.transfer_delay(self._latency_rng,
                                                 src, dst, size,
                                                 self._loop.now())
        elif self._fixed_delay is not None:
            # ConstantLatency.sample ignores the RNG; read the cached
            # delay instead of dispatching through the model.
            delay = self._fixed_delay
        else:
            delay = self._latency.sample(self._latency_rng, src, dst)
        self._loop.call_later(delay, self._deliver, src, dst, message)

    def broadcast(self, src: str, dsts: list[str], message: Any,
                  include_self: bool = True) -> None:
        """Send ``message`` to every destination (independent fates).

        ``include_self=False`` skips ``src`` if it appears in ``dsts``.
        Self-delivery still traverses the loss/latency models: the paper's
        implementation uses real UDP to self, and keeping that uniform
        avoids special-casing quorum math.
        """
        for dst in dsts:
            if not include_self and dst == src:
                continue
            self.send(src, dst, message)

    def send_local(self, src: str, dst: str, message: Any) -> None:
        """Reliable same-instant delivery (co-located client <-> site).

        Bypasses loss, latency, and partitions: the two endpoints share a
        box. A crashed destination still drops the message.
        """
        type_name = type(message).__name__
        self.stats.record_sent(type_name)
        self._loop.call_soon(self._deliver_colocated, src, dst, message)

    def send_enveloped(self, src: str, dst: str, level: str, scope: str,
                       inner: Any) -> None:
        """Unicast ``inner`` as if wrapped in ``Envelope(level, scope,
        inner)`` -- without allocating the wrapper.

        Every C-Raft consensus message crosses the fabric enveloped, so
        the wrapper dominates steady-state allocation: built per send,
        unwrapped per delivery, and never consulted in between (the
        fabric treats it as an opaque payload under a size-blind latency
        model). This path carries the routing fields loose through the
        scheduled delivery instead, and hands them straight to the
        destination's :meth:`on_enveloped` hook. Callers must check
        :attr:`env_fast` per send: it is False under a size-aware model
        (which must price the real wrapper) and under the legacy core.

        Parity with :meth:`send` for an Envelope: stats record under the
        literal ``"Envelope"`` type name, the loss and latency models see
        identical draws in identical order, and the loopback (``src ==
        dst``) case skips fault checks exactly as the colocated path does
        -- a disconnected site still talks to itself.
        """
        stats = self.stats
        stats.sent += 1
        stats.by_type["Envelope"] += 1
        if src == dst:
            self._loop.call_soon(self._deliver_enveloped_colocated,
                                 src, dst, level, scope, inner)
            return
        if self._faults_installed and self._is_blocked(src, dst):
            stats.blocked += 1
            return
        if not self._no_loss and self._loss.should_drop(
                self._loss_rng, src, dst, self._loop.now()):
            self.stats.record_dropped()
            if self._trace is not None:
                self._trace.record(self._loop.now(), src, "net.drop",
                                   dst=dst, type="Envelope")
            return
        if self._fixed_delay is not None:
            delay = self._fixed_delay
        else:
            delay = self._latency.sample(self._latency_rng, src, dst)
        self._loop.call_later(delay, self._deliver_enveloped,
                              src, dst, level, scope, inner)

    def _deliver_enveloped(self, src: str, dst: str, level: str,
                           scope: str, inner: Any) -> None:
        # Same re-checks as _deliver; the actor is looked up by name at
        # delivery time because crash recovery re-binds addresses to new
        # actor objects (see replace()).
        if self._faults_installed and self._is_blocked(src, dst):
            self.stats.record_blocked()
            return
        actor = self._actors.get(dst)
        if actor is None or not actor.alive:
            self.stats.record_dead_letter()
            return
        stats = self.stats
        stats.delivered += 1
        stats.delivered_by_type["Envelope"] += 1
        actor.on_enveloped(level, scope, inner, src)

    def _deliver_enveloped_colocated(self, src: str, dst: str, level: str,
                                     scope: str, inner: Any) -> None:
        actor = self._actors.get(dst)
        if actor is None or not actor.alive:
            self.stats.record_dead_letter()
            return
        stats = self.stats
        stats.delivered += 1
        stats.delivered_by_type["Envelope"] += 1
        actor.on_enveloped(level, scope, inner, src)

    def _deliver_colocated(self, src: str, dst: str, message: Any) -> None:
        actor = self._actors.get(dst)
        if actor is None or not actor.alive:
            self.stats.record_dead_letter()
            return
        self.stats.record_delivered(type(message).__name__)
        actor.deliver(message, src)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _is_blocked(self, src: str, dst: str) -> bool:
        if src in self._disconnected or dst in self._disconnected:
            return True
        if self._partition_groups is not None:
            src_group = self._partition_groups.get(src)
            dst_group = self._partition_groups.get(dst)
            if src_group is None or dst_group is None:
                return True
            if src_group != dst_group:
                return True
        return False

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        # Re-check blockage at delivery time: a partition installed while
        # the message was in flight still cuts it off, matching how long
        # one-way WAN delays interact with sudden failures.
        if self._faults_installed and self._is_blocked(src, dst):
            self.stats.record_blocked()
            return
        actor = self._actors.get(dst)
        if actor is None or not actor.alive:
            self.stats.record_dead_letter()
            return
        self.stats.record_delivered(type(message).__name__)
        actor.deliver(message, src)
