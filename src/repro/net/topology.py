"""Topology description: regions, clusters, and node placement.

A :class:`Topology` assigns node names to regions (for the latency model)
and to clusters (for C-Raft). The paper's Fig. 5 setup -- 20 sites split
evenly over *c* clusters, one cluster per AWS region -- is produced by
:meth:`Topology.even_clusters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetworkError


@dataclass
class Topology:
    """Mapping from node names to regions and clusters."""

    node_regions: dict[str, str] = field(default_factory=dict)
    node_clusters: dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single_region(cls, node_names: list[str],
                      region: str = "local") -> "Topology":
        """All nodes in one region, one implicit cluster."""
        return cls(node_regions={n: region for n in node_names},
                   node_clusters={n: region for n in node_names})

    @classmethod
    def even_clusters(cls, total_sites: int, regions: list[str],
                      name_prefix: str = "n") -> "Topology":
        """Split ``total_sites`` evenly across ``regions``, one cluster per
        region (the Fig. 5 layout). Site count must divide evenly so every
        cluster has the same quorum structure, as in the paper."""
        if not regions:
            raise NetworkError("need at least one region")
        if total_sites % len(regions) != 0:
            raise NetworkError(
                f"{total_sites} sites do not split evenly over "
                f"{len(regions)} regions")
        per_region = total_sites // len(regions)
        topo = cls()
        index = 0
        for region in regions:
            for _ in range(per_region):
                name = f"{name_prefix}{index}"
                topo.add_node(name, region=region, cluster=region)
                index += 1
        return topo

    def add_node(self, name: str, region: str, cluster: str | None = None
                 ) -> None:
        if name in self.node_regions:
            raise NetworkError(f"node already placed: {name!r}")
        self.node_regions[name] = region
        self.node_clusters[name] = cluster if cluster is not None else region

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        return sorted(self.node_regions)

    @property
    def regions(self) -> list[str]:
        return sorted(set(self.node_regions.values()))

    @property
    def clusters(self) -> list[str]:
        return sorted(set(self.node_clusters.values()))

    def nodes_in_cluster(self, cluster: str) -> list[str]:
        return sorted(n for n, c in self.node_clusters.items()
                      if c == cluster)

    def nodes_in_region(self, region: str) -> list[str]:
        return sorted(n for n, r in self.node_regions.items()
                      if r == region)

    def region_of(self, node: str) -> str:
        try:
            return self.node_regions[node]
        except KeyError:
            raise NetworkError(f"unknown node: {node!r}") from None

    def cluster_of(self, node: str) -> str:
        try:
            return self.node_clusters[node]
        except KeyError:
            raise NetworkError(f"unknown node: {node!r}") from None
