"""Message-loss models.

The paper forces loss rates with Linux ``tc``, which drops each packet
independently with a fixed probability -- exactly the Bernoulli model
here. Per-link and time-windowed variants support fault-injection
scenarios (e.g. a lossy WAN link, or loss that starts mid-experiment).
"""

from __future__ import annotations

import random

from repro.errors import NetworkError


class LossModel:
    """Decides whether to drop a message from ``src`` to ``dst`` at ``now``."""

    def should_drop(self, rng: random.Random, src: str, dst: str,
                    now: float) -> bool:
        raise NotImplementedError


class NoLoss(LossModel):
    """Reliable network (no drops)."""

    def should_drop(self, rng: random.Random, src: str, dst: str,
                    now: float) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss(LossModel):
    """Each message independently dropped with probability ``rate``."""

    def __init__(self, rate: float) -> None:
        if not 0 <= rate <= 1:
            raise NetworkError(f"loss rate must be in [0, 1]: {rate!r}")
        self.rate = rate

    def should_drop(self, rng: random.Random, src: str, dst: str,
                    now: float) -> bool:
        if self.rate == 0:
            return False
        return rng.random() < self.rate

    def __repr__(self) -> str:
        return f"BernoulliLoss({self.rate!r})"


class PerLinkLoss(LossModel):
    """Directional per-link loss rates over a fallback.

    ``rates`` maps ``(src, dst)`` pairs to Bernoulli rates. Useful for
    modelling one bad link without touching the rest of the fabric.
    Links without an override fall back to ``base`` (an arbitrary loss
    model -- this is how ``set_link_loss`` events overlay a running
    network's existing model) or, without one, to the ``default`` rate.
    A zero-rate override re-enables the reliable path for that link.
    """

    def __init__(self, rates: dict[tuple[str, str], float],
                 default: float = 0.0, base: LossModel | None = None) -> None:
        for pair, rate in rates.items():
            if not 0 <= rate <= 1:
                raise NetworkError(
                    f"loss rate for {pair!r} must be in [0, 1]: {rate!r}")
        if not 0 <= default <= 1:
            raise NetworkError(f"default rate must be in [0, 1]: {default!r}")
        self._rates = dict(rates)
        self._default = default
        self.base = base

    def set_rate(self, src: str, dst: str, rate: float) -> None:
        if not 0 <= rate <= 1:
            raise NetworkError(f"loss rate must be in [0, 1]: {rate!r}")
        self._rates[(src, dst)] = rate

    def should_drop(self, rng: random.Random, src: str, dst: str,
                    now: float) -> bool:
        rate = self._rates.get((src, dst))
        if rate is None:
            if self.base is not None:
                return self.base.should_drop(rng, src, dst, now)
            rate = self._default
        if rate == 0:
            return False
        return rng.random() < rate

    def __repr__(self) -> str:
        tail = (f"base={self.base!r}" if self.base is not None
                else f"default={self._default}")
        return f"PerLinkLoss({len(self._rates)} links, {tail})"


class ScheduledLoss(LossModel):
    """Time-windowed loss: a base model plus ``(start, end, model)`` windows.

    The first window containing ``now`` wins; outside all windows the base
    model applies. Models, e.g., "5 % loss for the whole run, but a full
    outage between t=30 s and t=40 s".
    """

    def __init__(self, base: LossModel,
                 windows: list[tuple[float, float, LossModel]] | None = None
                 ) -> None:
        self._base = base
        self._windows: list[tuple[float, float, LossModel]] = []
        for start, end, model in windows or []:
            self.add_window(start, end, model)

    def add_window(self, start: float, end: float, model: LossModel) -> None:
        if start >= end:
            raise NetworkError(
                f"window must have start < end: [{start!r}, {end!r})")
        self._windows.append((start, end, model))

    def should_drop(self, rng: random.Random, src: str, dst: str,
                    now: float) -> bool:
        for start, end, model in self._windows:
            if start <= now < end:
                return model.should_drop(rng, src, dst, now)
        return self._base.should_drop(rng, src, dst, now)

    def __repr__(self) -> str:
        return f"ScheduledLoss(base={self._base!r}, windows={len(self._windows)})"
