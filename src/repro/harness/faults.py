"""Fault injection: the failure vocabulary of the paper's evaluation.

- **crash / recover** -- a site stops and later restarts from stable
  storage (Section II's crash-recovery model).
- **silent leave** -- a site vanishes without a leave request (Fig. 4);
  implemented as a network disconnect so the process state still exists
  but nothing gets in or out.
- **announced leave / join** -- membership churn through the protocol's
  own request messages.

Faults can be applied immediately or scheduled at absolute sim times.
"""

from __future__ import annotations

from repro.consensus.messages import JoinRequest, LeaveRequest
from repro.errors import ExperimentError
from repro.harness.builder import Cluster


class FaultInjector:
    """Applies faults to a :class:`Cluster`."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        #: (time, kind, site) tuples, for experiment reports.
        self.injected: list[tuple[float, str, str]] = []

    def _record(self, kind: str, site: str) -> None:
        now = self._cluster.loop.now()
        self.injected.append((now, kind, site))
        self._cluster.trace.record(now, site, f"fault.{kind}")

    def _server(self, site: str):
        try:
            return self._cluster.servers[site]
        except KeyError:
            raise ExperimentError(f"unknown site: {site!r}") from None

    # ------------------------------------------------------------------
    # Immediate faults
    # ------------------------------------------------------------------
    def crash(self, site: str) -> None:
        """Stop a site; volatile state is lost, stable storage kept."""
        self._server(site).crash()
        self._record("crash", site)

    def recover(self, site: str) -> None:
        """Restart a crashed site from its stable storage."""
        self._server(site).recover()
        self._record("recover", site)

    def silent_leave(self, site: str) -> None:
        """The site leaves without telling anyone (Fig. 4's red line)."""
        self._cluster.network.disconnect(site)
        self._record("silent_leave", site)

    def silent_return(self, site: str) -> None:
        """Reconnect a silently departed site (it must rejoin via the
        membership protocol to vote again)."""
        self._cluster.network.reconnect(site)
        self._record("silent_return", site)

    def announced_leave(self, site: str) -> None:
        """The site sends a leave request to the members."""
        server = self._server(site)
        members = server.engine.configuration.members
        for member in members:
            if member != site:
                self._cluster.network.send(site, member,
                                           LeaveRequest(site=site))
        self._record("announced_leave", site)

    def request_join(self, site: str, contact: str) -> None:
        """A site asks ``contact`` to admit it to the configuration."""
        self._cluster.network.send(site, contact, JoinRequest(site=site))
        self._record("join_request", site)

    def partition(self, groups: list[list[str]]) -> None:
        self._cluster.network.partition(groups)
        self._record("partition", "+".join(",".join(g) for g in groups))

    def heal_partition(self) -> None:
        self._cluster.network.heal_partition()
        self._record("heal", "*")

    # ------------------------------------------------------------------
    # Scheduled faults
    # ------------------------------------------------------------------
    def schedule(self, at: float, kind: str, site: str, **kwargs) -> None:
        """Schedule a named fault at absolute sim time ``at``."""
        action = getattr(self, kind, None)
        if action is None or kind.startswith("_"):
            raise ExperimentError(f"unknown fault kind: {kind!r}")
        self._cluster.loop.call_at(at, lambda: action(site, **kwargs))
