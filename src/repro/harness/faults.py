"""Fault injection: the failure vocabulary of the paper's evaluation.

- **crash / recover** -- a site stops and later restarts from stable
  storage (Section II's crash-recovery model).
- **silent leave** -- a site vanishes without a leave request (Fig. 4);
  implemented as a network disconnect so the process state still exists
  but nothing gets in or out.
- **announced leave / join** -- membership churn through the protocol's
  own request messages.
- **network swaps** -- replacing the loss / latency model mid-run (the
  paper's ``tc`` changes) and partition installs/heals.

Faults can be applied immediately, scheduled at absolute sim times, or --
the declarative path -- described as :class:`repro.scenarios.spec.Event`
records that the scenario runner resolves and fires, so experiments no
longer hand-script injection code.
"""

from __future__ import annotations

from repro.consensus.messages import JoinRequest, LeaveRequest
from repro.errors import ExperimentError
from repro.harness.builder import Cluster
from repro.net.latency import BandwidthLatencyModel, SharedLinkBandwidthModel
from repro.net.loss import BernoulliLoss, NoLoss, PerLinkLoss


def resolve_event_targets(event, server_order: list[str],
                          initial_leader: str | None,
                          topology=None,
                          current_leader: str | None = None) -> list[str]:
    """Resolve an :class:`~repro.scenarios.spec.Event` target selector.

    ``server_order`` is the site list the positional selectors index
    into (server insertion order for a flat cluster, cluster members for
    a C-Raft cluster-scoped event). ``leader`` always means the *initial*
    leader (the documented spec semantics); ``nonleader:<i>`` resolves at
    fire time against ``current_leader`` (falling back to the initial
    one) and pins the index to the sorted site ids -- leadership may have
    moved between schedule evaluation and application, and without the
    fire-time resolution the selector could silently crash the live
    leader, turning a follower fault into a leader fault.
    """
    target = event.target
    if not target:
        return []
    if target == "leader":
        if initial_leader is None:
            raise ExperimentError("event targets 'leader' but no leader "
                                  "was recorded")
        return [initial_leader]
    if target.startswith("nonleader:"):
        leader = current_leader if current_leader is not None \
            else initial_leader
        if leader is None:
            raise ExperimentError(
                f"event targets {target!r} but no leader was recorded -- "
                f"the selector could silently hit the leader")
        index = int(target.split(":", 1)[1])
        others = sorted(n for n in server_order if n != leader)
        if index >= len(others):
            raise ExperimentError(f"no such non-leader: {target!r}")
        return [others[index]]
    if target.startswith("cluster:"):
        if topology is None:
            raise ExperimentError(
                f"event targets {target!r} but the scenario has no "
                f"cluster topology")
        return topology.nodes_in_cluster(target.split(":", 1)[1])
    return [target]


class FaultInjector:
    """Applies faults to a :class:`Cluster` (or C-Raft deployment --
    anything with ``servers`` / ``network`` / ``loop`` / ``trace``)."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        #: (time, kind, site) tuples, for experiment reports.
        self.injected: list[tuple[float, str, str]] = []

    def _record(self, kind: str, site: str) -> None:
        now = self._cluster.loop.now()
        self.injected.append((now, kind, site))
        self._cluster.trace.record(now, site, f"fault.{kind}")

    def _server(self, site: str):
        try:
            return self._cluster.servers[site]
        except KeyError:
            raise ExperimentError(f"unknown site: {site!r}") from None

    # ------------------------------------------------------------------
    # Immediate faults
    # ------------------------------------------------------------------
    def crash(self, site: str) -> None:
        """Stop a site; volatile state is lost, stable storage kept."""
        self._server(site).crash()
        self._record("crash", site)

    def recover(self, site: str) -> None:
        """Restart a crashed site from its stable storage. Recovering a
        site that is still alive is rejected: it would silently rebuild
        the engine mid-operation (dropping volatile state the cluster
        still counts on) instead of modelling a crash-recovery."""
        server = self._server(site)
        if server.alive:
            raise ExperimentError(
                f"cannot recover {site!r}: the site is alive (crash it "
                f"first; recover models a restart from stable storage)")
        server.recover()
        self._record("recover", site)

    def silent_leave(self, site: str) -> None:
        """The site leaves without telling anyone (Fig. 4's red line)."""
        self._cluster.network.disconnect(site)
        self._record("silent_leave", site)

    def silent_return(self, site: str) -> None:
        """Reconnect a silently departed site (it must rejoin via the
        membership protocol to vote again)."""
        self._cluster.network.reconnect(site)
        self._record("silent_return", site)

    def announced_leave(self, site: str) -> None:
        """The site sends a leave request to the members."""
        server = self._server(site)
        members = server.engine.configuration.members
        for member in members:
            if member != site:
                self._cluster.network.send(site, member,
                                           LeaveRequest(site=site))
        self._record("announced_leave", site)

    def request_join(self, site: str, contact: str,
                     replaces: str | None = None) -> None:
        """A site asks ``contact`` to admit it to the configuration.
        ``replaces`` is the seat hint from the membership protocol: the
        member whose place this joiner takes, so a scheduled join can
        count toward that member's pending-exclusion quorum (see
        :class:`~repro.consensus.messages.JoinRequest`)."""
        self._cluster.network.send(site, contact,
                                   JoinRequest(site=site, replaces=replaces))
        self._record("join_request", site)

    def partition(self, groups: list[list[str]]) -> None:
        self._cluster.network.partition(groups)
        self._record("partition", "+".join(",".join(g) for g in groups))

    def heal_partition(self) -> None:
        self._cluster.network.heal_partition()
        self._record("heal", "*")

    def set_loss(self, rate: float) -> None:
        """Swap the network-wide loss model (the paper's ``tc`` change)."""
        self._cluster.network.set_loss(
            BernoulliLoss(rate) if rate else NoLoss())
        self._record("set_loss", f"{rate:g}")

    def set_link_loss(self, src: str, dst: str, rate: float,
                      symmetric: bool = True) -> None:
        """Degrade one link (``tc`` on a single route): messages from
        ``src`` to ``dst`` (both directions when ``symmetric``) drop with
        probability ``rate``; all other traffic keeps the current model.
        Repeated calls accumulate overrides on the same overlay."""
        current = self._cluster.network.loss_model
        if not isinstance(current, PerLinkLoss):
            current = PerLinkLoss({}, base=current)
            self._cluster.network.set_loss(current)
        current.set_rate(src, dst, rate)
        if symmetric:
            current.set_rate(dst, src, rate)
        self._record("set_link_loss", f"{src}<->{dst}:{rate:g}"
                     if symmetric else f"{src}->{dst}:{rate:g}")

    def set_bandwidth(self, bandwidth: float, shared: bool = False) -> None:
        """Swap the link bandwidth mid-run (a WAN capacity change):
        re-wraps the current latency model's base so message delays
        charge payload size at the new rate. ``shared`` upgrades to the
        congestion-aware queueing model."""
        model = self._cluster.network.latency_model
        base = model.base if isinstance(model, BandwidthLatencyModel) \
            else model
        wrapper = SharedLinkBandwidthModel if shared \
            else BandwidthLatencyModel
        self._cluster.network.set_latency(wrapper(base, bandwidth))
        self._record("set_bandwidth",
                     f"{bandwidth:g}{'(shared)' if shared else ''}")

    def set_latency(self, model) -> None:
        """Swap the latency model mid-run (e.g. a degraded WAN phase)."""
        self._cluster.network.set_latency(model)
        self._record("set_latency", repr(model))

    # ------------------------------------------------------------------
    # Scheduled faults
    # ------------------------------------------------------------------
    def schedule(self, at: float, kind: str, site: str, **kwargs) -> None:
        """Schedule a named fault at absolute sim time ``at``."""
        action = getattr(self, kind, None)
        if action is None or kind.startswith("_"):
            raise ExperimentError(f"unknown fault kind: {kind!r}")
        self._cluster.loop.call_at(at, lambda: action(site, **kwargs))

    # ------------------------------------------------------------------
    # Declarative events (repro.scenarios.spec.Event)
    # ------------------------------------------------------------------
    def apply_event(self, event, *, server_order: list[str] | None = None,
                    initial_leader: str | None = None,
                    topology=None) -> list[str]:
        """Fire one scenario event now; returns the resolved sites."""
        order = (server_order if server_order is not None
                 else list(self._cluster.servers))
        if event.action == "partition":
            self.partition([list(group) for group in event.args[0]])
            return []
        if event.action == "heal_partition":
            self.heal_partition()
            return []
        if event.action == "set_loss":
            self.set_loss(event.args[0])
            return []
        if event.action == "set_link_loss":
            self.set_link_loss(*event.args)
            return []
        if event.action == "set_bandwidth":
            self.set_bandwidth(*event.args)
            return []
        if event.action == "set_latency":
            model = event.args[0].build(topology)
            if model is None:
                from repro.harness.builder import DEFAULT_LATENCY
                model = DEFAULT_LATENCY
            self.set_latency(model)
            return []
        sites = resolve_event_targets(event, order, initial_leader,
                                      topology=topology,
                                      current_leader=self._current_leader())
        for site in sites:
            if event.action == "request_join":
                replaces = event.args[1] if len(event.args) > 1 else None
                self.request_join(site, contact=event.args[0],
                                  replaces=replaces)
            else:
                getattr(self, event.action)(site)
        return sites

    def _current_leader(self) -> str | None:
        """The live leader at fire time, if the system can name one (a
        flat Cluster can; a C-Raft deployment has one per level, so
        positional selectors there fall back to the recorded initial
        leader)."""
        getter = getattr(self._cluster, "leader", None)
        return getter() if callable(getter) else None
