"""Safety-invariant checkers.

Mechanical verifications of the paper's Section II properties and the
internal invariants its proofs rely on. Experiments and tests call
:func:`run_safety_checks` after every run; property-based tests call the
individual checkers on randomized fault schedules.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.consensus.engine import BaseEngine
from repro.consensus.entry import InsertedBy
from repro.consensus.server import ConsensusServer
from repro.errors import InvariantViolation
from repro.sim.trace import TraceRecorder


def check_committed_prefix_agreement(engines: Iterable[BaseEngine]) -> None:
    """Safety (Definition 2.1): no two sites commit different entries at
    the same index."""
    engines = list(engines)
    for i, a in enumerate(engines):
        for b in engines[i + 1:]:
            upto = min(a.commit_index, b.commit_index)
            for index in range(1, upto + 1):
                entry_a, entry_b = a.log.get(index), b.log.get(index)
                if entry_a is None or entry_b is None:
                    raise InvariantViolation(
                        f"committed hole at index {index}: "
                        f"{a.name}={entry_a!r} {b.name}={entry_b!r}")
                if entry_a.entry_id != entry_b.entry_id:
                    raise InvariantViolation(
                        f"safety violation at index {index}: "
                        f"{a.name} committed {entry_a.entry_id!r}, "
                        f"{b.name} committed {entry_b.entry_id!r}")


def check_log_matching(engines: Iterable[BaseEngine]) -> None:
    """Leader-approved entries with the same (index, term) hold the same
    value (classic Raft's Log Matching, restricted to leader-approved
    entries for Fast Raft, whose self-approved slots are tentative)."""
    engines = list(engines)
    for i, a in enumerate(engines):
        for b in engines[i + 1:]:
            hi = min(a.log.last_index, b.log.last_index)
            for index in range(1, hi + 1):
                entry_a, entry_b = a.log.get(index), b.log.get(index)
                if entry_a is None or entry_b is None:
                    continue
                if (entry_a.inserted_by is not InsertedBy.LEADER
                        or entry_b.inserted_by is not InsertedBy.LEADER):
                    continue
                if (entry_a.term == entry_b.term
                        and entry_a.entry_id != entry_b.entry_id):
                    raise InvariantViolation(
                        f"log matching violation at index {index} term "
                        f"{entry_a.term}: {a.name}={entry_a.entry_id!r} "
                        f"{b.name}={entry_b.entry_id!r}")


def check_election_safety(trace: TraceRecorder) -> None:
    """At most one leader per (protocol, scope, term)."""
    leaders: dict[tuple, set[str]] = defaultdict(set)
    for event in trace.select_prefix(""):
        if not event.category.endswith("role.leader"):
            continue
        key = (event.category, event.payload.get("scope", "main"),
               event.payload.get("term"))
        leaders[key].add(event.node)
        if len(leaders[key]) > 1:
            raise InvariantViolation(
                f"two leaders for {key!r}: {sorted(leaders[key])}")


def check_applied_consistency(servers: Iterable[ConsensusServer]) -> None:
    """Every site applies the same (index, entry) sequence -- one site's
    applied log is a prefix of any longer one."""
    applied = [[(i, e.entry_id) for i, e in s.applied_log]
               for s in servers]
    applied.sort(key=len)
    for shorter, longer in zip(applied, applied[1:]):
        if longer[:len(shorter)] != shorter:
            raise InvariantViolation(
                f"applied sequences diverge: {shorter[-3:]} vs "
                f"{longer[:len(shorter)][-3:]}")


def check_leader_approved_prefix(engine: BaseEngine) -> None:
    """A Fast Raft *leader*'s log is contiguous leader-approved up to its
    last leader-approved index (the decision procedure decides in order)."""
    last_leader = engine.log.last_with_provenance(InsertedBy.LEADER)
    for index in range(1, last_leader + 1):
        entry = engine.log.get(index)
        if entry is None or entry.inserted_by is not InsertedBy.LEADER:
            raise InvariantViolation(
                f"{engine.name}: non-leader-approved slot {index} below "
                f"lastLeaderIndex {last_leader}: {entry!r}")


def check_commit_monotonic(commit_history: dict[str, list[int]]) -> None:
    """commitIndex never regresses at a live site (between crashes)."""
    for name, history in commit_history.items():
        for before, after in zip(history, history[1:]):
            if after < before:
                raise InvariantViolation(
                    f"{name}: commitIndex regressed {before} -> {after}")


def run_safety_checks(servers: Iterable[ConsensusServer],
                      trace: TraceRecorder | None = None) -> None:
    """The standard post-run bundle."""
    servers = list(servers)
    engines = [s.engine for s in servers]
    check_committed_prefix_agreement(engines)
    check_log_matching(engines)
    check_applied_consistency(servers)
    if trace is not None:
        check_election_safety(trace)
