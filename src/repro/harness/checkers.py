"""Safety-invariant checkers.

Mechanical verifications of the paper's Section II properties and the
internal invariants its proofs rely on. Experiments and tests call
:func:`run_safety_checks` after every run; property-based tests call the
individual checkers on randomized fault schedules.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.consensus.engine import BaseEngine
from repro.consensus.entry import InsertedBy
from repro.consensus.server import ConsensusServer
from repro.errors import InvariantViolation
from repro.sim.trace import TraceRecorder


def check_committed_prefix_agreement(engines: Iterable[BaseEngine]) -> None:
    """Safety (Definition 2.1): no two sites commit different entries at
    the same index. Compacted prefixes hold no entries to compare, so the
    check covers the retained overlap of each pair."""
    engines = list(engines)
    for i, a in enumerate(engines):
        for b in engines[i + 1:]:
            upto = min(a.commit_index, b.commit_index)
            start = max(a.log.first_retained_index,
                        b.log.first_retained_index)
            for index in range(start, upto + 1):
                entry_a, entry_b = a.log.get(index), b.log.get(index)
                if entry_a is None or entry_b is None:
                    raise InvariantViolation(
                        f"committed hole at index {index}: "
                        f"{a.name}={entry_a!r} {b.name}={entry_b!r}")
                if entry_a.entry_id != entry_b.entry_id:
                    raise InvariantViolation(
                        f"safety violation at index {index}: "
                        f"{a.name} committed {entry_a.entry_id!r}, "
                        f"{b.name} committed {entry_b.entry_id!r}")


def check_log_matching(engines: Iterable[BaseEngine]) -> None:
    """Leader-approved entries with the same (index, term) hold the same
    value (classic Raft's Log Matching, restricted to leader-approved
    entries for Fast Raft, whose self-approved slots are tentative)."""
    engines = list(engines)
    for i, a in enumerate(engines):
        for b in engines[i + 1:]:
            hi = min(a.log.last_index, b.log.last_index)
            for index in range(1, hi + 1):
                entry_a, entry_b = a.log.get(index), b.log.get(index)
                if entry_a is None or entry_b is None:
                    continue
                if (entry_a.inserted_by is not InsertedBy.LEADER
                        or entry_b.inserted_by is not InsertedBy.LEADER):
                    continue
                if (entry_a.term == entry_b.term
                        and entry_a.entry_id != entry_b.entry_id):
                    raise InvariantViolation(
                        f"log matching violation at index {index} term "
                        f"{entry_a.term}: {a.name}={entry_a.entry_id!r} "
                        f"{b.name}={entry_b.entry_id!r}")


def check_election_safety(trace: TraceRecorder) -> None:
    """At most one leader per (protocol, scope, term)."""
    leaders: dict[tuple, set[str]] = defaultdict(set)
    for event in trace.select_prefix(""):
        if not event.category.endswith("role.leader"):
            continue
        key = (event.category, event.payload.get("scope", "main"),
               event.payload.get("term"))
        leaders[key].add(event.node)
        if len(leaders[key]) > 1:
            raise InvariantViolation(
                f"two leaders for {key!r}: {sorted(leaders[key])}")


def check_applied_consistency(servers: Iterable[ConsensusServer]) -> None:
    """Every site applies entries in strictly increasing index order, and
    no two sites apply different entries at the same index. (Sites that
    resumed from a snapshot start applying mid-stream, so sequences are
    compared per index rather than as whole-list prefixes.)"""
    owners: dict[int, tuple[str, str]] = {}
    for server in servers:
        name = getattr(server, "name", "<server>")
        last = None
        for index, entry in server.applied_log:
            if last is None:
                # Applies resume exactly one above the last snapshot
                # *restore* (applied_floor), not whatever snapshot the
                # node happens to hold at check time -- a later self-taken
                # snapshot must not retroactively legitimize a skipped
                # prefix. Absent on duck-typed fakes: anchor unchecked.
                floor = getattr(server, "applied_floor", None)
                if floor is not None and index != floor + 1:
                    raise InvariantViolation(
                        f"{name}: first applied index {index} but the "
                        f"last snapshot restore covered through {floor} "
                        f"(expected {floor + 1})")
            if last is not None and index != last + 1:
                raise InvariantViolation(
                    f"{name}: applied index {index} after {last} "
                    f"(applies must be contiguous)")
            last = index
            claimed = owners.get(index)
            if claimed is None:
                owners[index] = (entry.entry_id, name)
            elif claimed[0] != entry.entry_id:
                raise InvariantViolation(
                    f"applied divergence at index {index}: "
                    f"{claimed[1]} applied {claimed[0]!r}, "
                    f"{name} applied {entry.entry_id!r}")


def check_images_agree(points: Iterable[tuple[int, object, str]],
                       what: str = "state machines") -> None:
    """Generic agreement oracle: any two ``(point, image, name)`` tuples
    sharing a point must hold equal images (deterministic machines at the
    same apply point cannot legitimately differ)."""
    by_point: dict[int, tuple[object, str]] = {}
    for point, image, name in points:
        seen = by_point.get(point)
        if seen is None:
            by_point[point] = (image, name)
        elif seen[0] != image:
            raise InvariantViolation(
                f"{what} diverge at apply point {point}: "
                f"{seen[1]} vs {name}")


def check_state_machine_agreement(servers: Iterable[ConsensusServer]) -> None:
    """Sites whose machines cover the same commit point hold identical
    state -- the end-to-end guard that snapshot install/restore introduces
    no divergence (deterministic machines + per-index agreement imply it,
    but this checks the composed artifact directly)."""
    check_images_agree(
        (server.engine.commit_index, server.state_machine.snapshot(),
         server.name)
        for server in servers if server.state_machine is not None)


def check_leader_approved_prefix(engine: BaseEngine) -> None:
    """A Fast Raft *leader*'s log is contiguous leader-approved up to its
    last leader-approved index (the decision procedure decides in order).
    Compacted indices held committed -- hence decided -- entries, so the
    check starts at the first retained index."""
    last_leader = engine.log.last_with_provenance(InsertedBy.LEADER)
    for index in range(engine.log.first_retained_index, last_leader + 1):
        entry = engine.log.get(index)
        if entry is None or entry.inserted_by is not InsertedBy.LEADER:
            raise InvariantViolation(
                f"{engine.name}: non-leader-approved slot {index} below "
                f"lastLeaderIndex {last_leader}: {entry!r}")


def check_commit_monotonic(commit_history: dict[str, list[int]]) -> None:
    """commitIndex never regresses at a live site (between crashes)."""
    for name, history in commit_history.items():
        for before, after in zip(history, history[1:]):
            if after < before:
                raise InvariantViolation(
                    f"{name}: commitIndex regressed {before} -> {after}")


def run_safety_checks(servers: Iterable[ConsensusServer],
                      trace: TraceRecorder | None = None) -> None:
    """The standard post-run bundle."""
    servers = list(servers)
    engines = [s.engine for s in servers]
    check_committed_prefix_agreement(engines)
    check_log_matching(engines)
    check_applied_consistency(servers)
    check_state_machine_agreement(servers)
    if trace is not None:
        check_election_safety(trace)
