"""Workload drivers.

The paper's proposers are closed-loop: "The proposer only proposed a new
entry after the previous entry was committed."
:class:`ClosedLoopWorkload` reproduces that; :class:`PoissonWorkload`
offers an open-loop alternative for ablations.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.sim.loop import SimLoop
from repro.smr.client import Client, RequestRecord


def _default_command_factory(sequence: int) -> Any:
    return {"op": "put", "key": f"k{sequence}", "value": sequence}


class ClosedLoopWorkload:
    """Submit the next command as soon as the previous one commits."""

    def __init__(self, client: Client,
                 command_factory: Callable[[int], Any] | None = None,
                 max_requests: int | None = None,
                 stop_at: float | None = None) -> None:
        self._client = client
        self._factory = command_factory or _default_command_factory
        self._max_requests = max_requests
        self._stop_at = stop_at
        self._sequence = itertools.count()
        self._submitted = 0
        self.records: list[RequestRecord] = []
        self._stopped = False

    def start(self) -> None:
        self._submit_next()

    def stop(self) -> None:
        self._stopped = True

    @property
    def completed_count(self) -> int:
        return sum(1 for r in self.records if r.done)

    def latencies(self) -> list[float]:
        return [r.latency for r in self.records if r.latency is not None]

    def _submit_next(self) -> None:
        if self._stopped:
            return
        if (self._max_requests is not None
                and self._submitted >= self._max_requests):
            return
        if (self._stop_at is not None
                and self._client.now() >= self._stop_at):
            return
        command = self._factory(next(self._sequence))
        self._submitted += 1
        record = self._client.submit(command, on_done=self._on_done)
        self.records.append(record)

    def _on_done(self, record: RequestRecord) -> None:
        self._submit_next()

    @property
    def done(self) -> bool:
        """True when the requested number of commands all committed."""
        if self._max_requests is None:
            return False
        return (self._submitted >= self._max_requests
                and self.completed_count >= self._max_requests)


class PoissonWorkload:
    """Open-loop submissions with exponential inter-arrival times."""

    def __init__(self, client: Client, loop: SimLoop, rate: float,
                 command_factory: Callable[[int], Any] | None = None,
                 max_requests: int | None = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate!r}")
        self._client = client
        self._loop = loop
        self._rate = rate
        self._factory = command_factory or _default_command_factory
        self._max_requests = max_requests
        self._rng = None  # set in start() so builders can inject
        self._sequence = itertools.count()
        self._submitted = 0
        self.records: list[RequestRecord] = []
        self._stopped = False

    def start(self, rng) -> None:
        """Begin submitting; ``rng`` is a dedicated random stream."""
        self._rng = rng
        self._schedule_next()

    def stop(self) -> None:
        self._stopped = True

    @property
    def completed_count(self) -> int:
        return sum(1 for r in self.records if r.done)

    @property
    def done(self) -> bool:
        """True once the requested number of submissions all committed
        (mirrors :class:`ClosedLoopWorkload` so the scenario runner can
        drive either arrival process)."""
        if self._max_requests is None:
            return False
        return (self._submitted >= self._max_requests
                and self.completed_count >= self._max_requests)

    def latencies(self) -> list[float]:
        return [r.latency for r in self.records if r.latency is not None]

    def _schedule_next(self) -> None:
        if self._stopped:
            return
        if (self._max_requests is not None
                and self._submitted >= self._max_requests):
            return
        delay = self._rng.expovariate(self._rate)
        self._loop.call_later(delay, self._submit)

    def _submit(self) -> None:
        if self._stopped:
            return
        command = self._factory(next(self._sequence))
        self._submitted += 1
        self.records.append(self._client.submit(command))
        self._schedule_next()
