"""Scenario harness: build clusters, drive workloads, inject faults,
check invariants.

This is the layer experiments and tests share: a
:class:`~repro.harness.builder.Cluster` wires servers, clients, network,
storage, and trace together from a handful of parameters; the fault
injector reproduces the paper's failure scenarios (crashes, silent
leaves, joins); checkers verify the paper's safety properties after
every run.
"""

from repro.harness.builder import Cluster, build_cluster
from repro.harness.checkers import (
    check_applied_consistency,
    check_committed_prefix_agreement,
    check_election_safety,
    check_log_matching,
    run_safety_checks,
)
from repro.harness.faults import FaultInjector
from repro.harness.workload import ClosedLoopWorkload, PoissonWorkload

__all__ = [
    "ClosedLoopWorkload",
    "Cluster",
    "FaultInjector",
    "PoissonWorkload",
    "build_cluster",
    "check_applied_consistency",
    "check_committed_prefix_agreement",
    "check_election_safety",
    "check_log_matching",
    "run_safety_checks",
]
