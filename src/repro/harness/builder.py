"""Cluster construction and run-control helpers."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.consensus.config import Configuration, TransferConfig
from repro.consensus.engine import Role
from repro.consensus.server import ConsensusServer
from repro.consensus.timing import TimingConfig
from repro.errors import ExperimentError
from repro.net.latency import (
    BandwidthLatencyModel,
    LatencyModel,
    SharedLinkBandwidthModel,
    UniformLatency,
)
from repro.net.loss import LossModel, NoLoss
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.loop import SimLoop
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.smr.client import Client
from repro.snapshot import CompactionPolicy
from repro.storage.stable import StorageFabric

if TYPE_CHECKING:
    from repro.craft.batching import BatchPolicy

#: Default intra-region one-way latency: the paper reports sub-millisecond
#: round trips inside one AWS region.
DEFAULT_LATENCY = UniformLatency(0.0002, 0.0005)


class Cluster:
    """A set of consensus servers plus the shared substrate."""

    def __init__(self, loop: SimLoop, network: Network, rng: RngRegistry,
                 trace: TraceRecorder, fabric: StorageFabric,
                 timing: TimingConfig) -> None:
        self.loop = loop
        self.network = network
        self.rng = rng
        self.trace = trace
        self.fabric = fabric
        self.timing = timing
        self.servers: dict[str, ConsensusServer] = {}
        self.clients: dict[str, Client] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_server(self, server: ConsensusServer) -> None:
        self.servers[server.name] = server
        self.network.register(server)

    def add_client(self, site: str, name: str | None = None,
                   proposal_timeout: float | None = None,
                   max_attempts: int | None = None,
                   session: bool = False) -> Client:
        """Attach a client to ``site`` (co-located, reliable link).

        ``session=True`` makes it a session client (stamped sequence
        numbers) and switches every server in the cluster to session
        dedup -- the tracking flag is cluster-wide because any site may
        later lead and must recognize the session's retries.
        """
        if site not in self.servers:
            raise ExperimentError(f"unknown site: {site!r}")
        if name is None:
            name = f"client.{site}.{len(self.clients)}"
        timeout = (proposal_timeout if proposal_timeout is not None
                   else self.timing.proposal_timeout)
        client = Client(name, self.loop, self.network, site,
                        proposal_timeout=timeout, max_attempts=max_attempts,
                        session=session)
        if session:
            for server in self.servers.values():
                server.enable_session_tracking()
        self.clients[name] = client
        self.network.register(client)
        return client

    def start_all(self) -> None:
        for server in self.servers.values():
            server.start()

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------
    def run_for(self, duration: float) -> None:
        self.loop.run_for(duration)

    def run_until(self, predicate: Callable[[], bool], timeout: float,
                  step: float = 0.01) -> bool:
        """Advance in ``step`` increments until ``predicate()`` or timeout.

        Returns True if the predicate became true.
        """
        deadline = self.loop.now() + timeout
        while self.loop.now() < deadline:
            if predicate():
                return True
            self.loop.run_for(step)
        return predicate()

    def run_until_leader(self, timeout: float = 5.0) -> str:
        """Run until some live server is leader; returns its name."""
        if not self.run_until(lambda: self.leader() is not None, timeout):
            raise ExperimentError(f"no leader elected within {timeout}s")
        return self.leader()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def leader(self) -> str | None:
        """Name of the live leader with the highest term, if any."""
        best_name, best_term = None, -1
        for name, server in self.servers.items():
            if not server.alive or self.network.is_disconnected(name):
                continue
            engine = server.engine
            if engine.role is Role.LEADER and engine.current_term > best_term:
                best_name, best_term = name, engine.current_term
        return best_name

    def live_servers(self) -> list[ConsensusServer]:
        return [s for s in self.servers.values()
                if s.alive and not self.network.is_disconnected(s.name)]

    def commit_indices(self) -> dict[str, int]:
        return {name: server.engine.commit_index
                for name, server in self.servers.items()}

    # ------------------------------------------------------------------
    # Convenience workload
    # ------------------------------------------------------------------
    def propose_and_wait(self, client: Client, command: Any,
                         timeout: float = 10.0):
        """Submit one command and run the loop until it commits."""
        record = client.submit(command)
        if not self.run_until(lambda: record.done, timeout):
            raise ExperimentError(
                f"command {command!r} did not commit within {timeout}s")
        return record


def build_cluster(server_cls: type[ConsensusServer], n_sites: int = 5,
                  seed: int = 0, timing: TimingConfig | None = None,
                  latency: LatencyModel | None = None,
                  loss: LossModel | None = None,
                  trace_enabled: bool = True,
                  state_machine_factory: Callable[[], Any] | None = None,
                  compaction: CompactionPolicy | None = None,
                  transfer: TransferConfig | None = None,
                  bandwidth: float | None = None,
                  shared_link: bool = False,
                  n_observers: int = 0,
                  name_prefix: str = "n",
                  propose_batch: BatchPolicy | None = None) -> Cluster:
    """Standard single-group cluster: ``n_sites`` voting members.

    ``n_observers`` adds that many standing non-voting observers (named
    after the voters: ``n<n_sites>`` onward) to the bootstrap
    configuration -- replicas that receive everything but only tip
    quorums as tiebreakers for CONFIG entries and elections while the
    voting set is degenerate (see ``Configuration.observers``).

    ``bandwidth`` (simulated bytes/second) wraps the latency model in a
    :class:`BandwidthLatencyModel` so message delays charge payload size
    (``shared_link=True`` upgrades it to the congestion-aware
    :class:`SharedLinkBandwidthModel` where concurrent transfers queue);
    ``transfer`` tunes how snapshots ship (monolithic vs chunked).

    The result is not started; call :meth:`Cluster.start_all` (tests often
    install faults first).
    """
    if n_sites < 1:
        raise ExperimentError(f"need at least one site: {n_sites!r}")
    if n_observers < 0:
        raise ExperimentError(f"n_observers must be >= 0: {n_observers!r}")
    if shared_link and bandwidth is None:
        raise ExperimentError("shared_link needs a bandwidth")
    loop = SimLoop()
    rng = RngRegistry(seed)
    trace = TraceRecorder(enabled=trace_enabled)
    latency = latency if latency is not None else DEFAULT_LATENCY
    if bandwidth is not None:
        wrapper = (SharedLinkBandwidthModel if shared_link
                   else BandwidthLatencyModel)
        latency = wrapper(latency, bandwidth)
    network = Network(loop, rng, latency,
                      loss if loss is not None else NoLoss(), trace)
    fabric = StorageFabric()
    timing = timing if timing is not None else TimingConfig()
    cluster = Cluster(loop, network, rng, trace, fabric, timing)
    names = [f"{name_prefix}{i}" for i in range(n_sites)]
    watchers = [f"{name_prefix}{n_sites + i}" for i in range(n_observers)]
    config = Configuration(tuple(names), tuple(watchers))
    for name in names + watchers:
        server = server_cls(
            name=name, loop=loop, network=network,
            store=fabric.store_for(name), bootstrap_config=config,
            timing=timing, rng=rng, trace=trace,
            state_machine_factory=state_machine_factory,
            compaction=compaction, transfer=transfer,
            propose_batch=propose_batch)
        cluster.add_server(server)
    return cluster


def build_topology_cluster(server_cls: type[ConsensusServer],
                           topology: Topology,
                           latency: LatencyModel | None = None,
                           loss: LossModel | None = None,
                           seed: int = 0,
                           timing: TimingConfig | None = None,
                           trace_enabled: bool = True,
                           state_machine_factory: Callable[[], Any] | None = None,
                           compaction: CompactionPolicy | None = None,
                           transfer: TransferConfig | None = None,
                           propose_batch: BatchPolicy | None = None
                           ) -> Cluster:
    """One flat consensus group spanning every node of ``topology``.

    The geo-distributed classic-Raft baseline of Fig. 5: a single voting
    configuration whose members sit in different regions (the latency
    model decides what that costs). Nodes are created in
    ``topology.nodes`` order.
    """
    loop = SimLoop()
    rng = RngRegistry(seed)
    trace = TraceRecorder(enabled=trace_enabled)
    network = Network(loop, rng,
                      latency if latency is not None else DEFAULT_LATENCY,
                      loss, trace)
    fabric = StorageFabric()
    timing = timing if timing is not None else TimingConfig()
    cluster = Cluster(loop, network, rng, trace, fabric, timing)
    members = Configuration(tuple(topology.nodes))
    for name in topology.nodes:
        server = server_cls(
            name=name, loop=loop, network=network,
            store=fabric.store_for(name), bootstrap_config=members,
            timing=timing, rng=rng, trace=trace,
            state_machine_factory=state_machine_factory,
            compaction=compaction, transfer=transfer,
            propose_batch=propose_batch)
        cluster.add_server(server)
    return cluster


def server_class_for(engine: str) -> type[ConsensusServer]:
    """Map a scenario engine name to its flat server class."""
    from repro.fastraft.server import FastRaftServer
    from repro.raft.server import RaftServer
    if engine == "raft":
        return RaftServer
    if engine == "fastraft":
        return FastRaftServer
    raise ExperimentError(f"not a flat engine: {engine!r}")


def build_from_spec(spec, seed: int):
    """Construct the system a :class:`~repro.scenarios.spec.ScenarioSpec`
    describes: a :class:`Cluster` for the flat engines, a
    :class:`~repro.craft.deployment.CRaftDeployment` for ``craft``.

    This is the single construction path the scenario runner uses; the
    spec decides topology, engine, timing, network models, snapshotting,
    and transfer tuning.
    """
    topology = spec.topology.build()
    latency = spec.latency.build(topology)
    loss = spec.loss.build()
    if spec.engine == "craft":
        from repro.craft.deployment import build_craft_deployment
        return build_craft_deployment(
            topology, latency if latency is not None else DEFAULT_LATENCY,
            loss=loss, seed=seed, local_timing=spec.timing,
            global_timing=spec.global_timing, batch_policy=spec.batch,
            trace_enabled=spec.trace,
            state_machine_factory=spec.state_machine,
            local_compaction=spec.compaction,
            global_compaction=spec.global_compaction,
            transfer=spec.transfer)
    server_cls = server_class_for(spec.engine)
    if topology is None:
        return build_cluster(
            server_cls, n_sites=spec.topology.n_sites, seed=seed,
            timing=spec.timing, latency=latency, loss=loss,
            trace_enabled=spec.trace,
            state_machine_factory=spec.state_machine,
            compaction=spec.compaction, transfer=spec.transfer,
            name_prefix=spec.topology.name_prefix,
            propose_batch=spec.propose_batch)
    return build_topology_cluster(
        server_cls, topology, latency=latency, loss=loss, seed=seed,
        timing=spec.timing, trace_enabled=spec.trace,
        state_machine_factory=spec.state_machine,
        compaction=spec.compaction, transfer=spec.transfer,
        propose_batch=spec.propose_batch)
