"""Simulation-core throughput: events/sec on fixed cells, both cores.

Three cells cover the shapes that dominate every experiment in this
repository:

- ``raft_lan_steady`` -- classic Raft, five sites, sub-millisecond LAN,
  one closed-loop proposer: the steady-state replication hot path
  (heartbeats, AppendEntries absorption, commit advancement). This is
  the headline cell: the refactor's acceptance bar is >= 3x events/sec
  over the pre-refactor core here.
- ``fastraft_wan_churn`` -- Fast Raft, five sites, WAN latencies, 2%
  loss, a follower churning (silent leave / silent return) through the
  run: elections, member timeouts, membership changes, rejoin catch-up.
- ``craft_mesh_6x5`` -- the registered ``large_mesh`` scenario (six
  clusters x five sites, two consensus levels, a flapping WAN uplink):
  an order of magnitude more timers and messages in flight than the
  flat cells.

Every cell runs twice in the same (warm, persistent-pool) worker on the
same machine: once on the **legacy core** (:mod:`repro.perf` flips the
pre-refactor scheduler, log scan, per-follower broadcast, and
un-fast-pathed network back in) and once on the **current core**. Both runs execute the identical event
sequence -- the refactor is observably byte-identical, which the golden
tests pin -- so events processed match exactly and the wall-clock ratio
*is* the speedup. ``write_trajectory`` appends the report to
``BENCH_perf.json`` at the repository root, the perf trajectory CI
uploads and future PRs extend.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from dataclasses import dataclass, field
from typing import Callable

from repro import perf
from repro.errors import ExperimentError

#: The headline cell and its acceptance bar at full scale.
STEADY_CELL = "raft_lan_steady"
TARGET_SPEEDUP = 3.0

#: The engine-logic-bound cell (six clusters x five sites). Every run,
#: smoke included, must keep the current core at least as fast as the
#: legacy core here -- the engine-layer optimizations are all gated, so
#: a ratio below 1.0 means a gate leaks cost into the current core.
CRAFT_CELL = "craft_mesh_6x5"
CRAFT_FLOOR = 1.0


# ----------------------------------------------------------------------
# Samples and report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PerfSample:
    """One measured run of one cell on one core."""

    core: str                 # "legacy" | "current"
    events: int               # loop callbacks executed
    wall_seconds: float
    sim_seconds: float        # virtual time the cell covered

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:  # pragma: no cover - clock paranoia
            return float("inf")
        return self.events / self.wall_seconds

    def as_dict(self) -> dict:
        return {"core": self.core, "events": self.events,
                "wall_seconds": round(self.wall_seconds, 4),
                "sim_seconds": round(self.sim_seconds, 3),
                "events_per_sec": round(self.events_per_sec, 1)}


@dataclass(frozen=True)
class CellComparison:
    name: str
    legacy: PerfSample
    current: PerfSample

    @property
    def speedup(self) -> float:
        return self.current.events_per_sec / self.legacy.events_per_sec

    def as_dict(self) -> dict:
        return {"legacy": self.legacy.as_dict(),
                "current": self.current.as_dict(),
                "speedup": round(self.speedup, 2)}


@dataclass
class PerfReport:
    mode: str                           # "full" | "smoke"
    cells: list[CellComparison] = field(default_factory=list)

    def cell(self, name: str) -> CellComparison:
        for comparison in self.cells:
            if comparison.name == name:
                return comparison
        raise ExperimentError(f"no perf cell named {name!r}")

    @property
    def steady_state_speedup(self) -> float:
        return self.cell(STEADY_CELL).speedup

    def format(self) -> str:
        lines = [
            "Simulation-core throughput -- legacy vs current "
            f"(mode={self.mode})",
            f"{'cell':20} {'events':>9} {'legacy ev/s':>12} "
            f"{'current ev/s':>13} {'speedup':>8}",
        ]
        for c in self.cells:
            lines.append(
                f"{c.name:20} {c.current.events:>9} "
                f"{c.legacy.events_per_sec:>12,.0f} "
                f"{c.current.events_per_sec:>13,.0f} "
                f"{c.speedup:>7.2f}x")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "python": platform.python_version(),
            "platform": platform.system().lower(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                       time.gmtime()),
            "target_speedup": TARGET_SPEEDUP,
            "steady_state_speedup": round(self.steady_state_speedup, 2),
            "cells": {c.name: c.as_dict() for c in self.cells},
        }

    def check(self, min_speedup: float,
              craft_min_speedup: float = CRAFT_FLOOR) -> None:
        """Fail if the headline cell fell below ``min_speedup``, the
        craft mesh cell fell below ``craft_min_speedup``, or the
        identical-simulation invariant broke anywhere."""
        for c in self.cells:
            if c.legacy.events != c.current.events:
                raise ExperimentError(
                    f"cell {c.name!r}: cores diverged "
                    f"({c.legacy.events} vs {c.current.events} events) -- "
                    "the refactor is supposed to be byte-identical")
        if self.steady_state_speedup < min_speedup:
            raise ExperimentError(
                f"steady-state speedup {self.steady_state_speedup:.2f}x "
                f"fell below the {min_speedup:.1f}x bar")
        for c in self.cells:
            if c.name == CRAFT_CELL and c.speedup < craft_min_speedup:
                raise ExperimentError(
                    f"craft-mesh speedup {c.speedup:.2f}x fell below "
                    f"the {craft_min_speedup:.1f}x floor -- an "
                    "engine-layer gate is leaking cost")


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------
def _run_raft_lan_steady(smoke: bool):
    from repro.harness.builder import build_cluster
    from repro.harness.workload import ClosedLoopWorkload
    from repro.raft.server import RaftServer
    requests = 300 if smoke else 2000
    cluster = build_cluster(RaftServer, n_sites=5, seed=7,
                            trace_enabled=False)
    cluster.start_all()
    cluster.run_until_leader()
    client = cluster.add_client(cluster.leader())
    workload = ClosedLoopWorkload(client, max_requests=requests)
    workload.start()
    if not cluster.run_until(lambda: workload.done, timeout=600.0,
                             step=0.5):
        raise ExperimentError("raft steady-state cell stalled")
    return cluster.loop


def _run_fastraft_wan_churn(smoke: bool):
    from repro.fastraft.server import FastRaftServer
    from repro.harness.builder import build_cluster
    from repro.harness.workload import ClosedLoopWorkload
    from repro.net.latency import UniformLatency
    from repro.net.loss import BernoulliLoss
    requests = 150 if smoke else 800
    cluster = build_cluster(FastRaftServer, n_sites=5, seed=11,
                            latency=UniformLatency(0.020, 0.045),
                            loss=BernoulliLoss(0.02),
                            trace_enabled=False)
    cluster.start_all()
    cluster.run_until_leader(timeout=30.0)
    leader = cluster.leader()
    victim = next(name for name in sorted(cluster.servers)
                  if name != leader)
    network = cluster.network
    # Churn: the victim silently leaves and returns on a fixed cycle
    # (member timeout excludes it; on return it rejoins and catches up).
    loop = cluster.loop
    for cycle in range(2 if smoke else 4):
        start = loop.now() + 4.0 + cycle * 10.0
        loop.call_at(start, network.disconnect, victim)
        loop.call_at(start + 3.0, network.reconnect, victim)
    client = cluster.add_client(leader)
    workload = ClosedLoopWorkload(client, max_requests=requests)
    workload.start()
    if not cluster.run_until(lambda: workload.done, timeout=600.0,
                             step=0.5):
        raise ExperimentError("fastraft WAN churn cell stalled")
    return cluster.loop


def _run_craft_mesh(smoke: bool):
    from repro.experiments.large_mesh import (
        LargeMeshConfig,
        large_mesh_cells,
    )
    from repro.harness.builder import build_from_spec
    from repro.scenarios.runner import resolve_drive
    config = (LargeMeshConfig.smoke() if smoke
              else LargeMeshConfig.quick())
    [cell] = large_mesh_cells(config)
    system = build_from_spec(cell.spec, cell.seed)
    resolve_drive(cell.spec.drive)(system, cell.spec)
    return system.loop

_CELLS: list[tuple[str, Callable[[bool], object]]] = [
    (STEADY_CELL, _run_raft_lan_steady),
    ("fastraft_wan_churn", _run_fastraft_wan_churn),
    ("craft_mesh_6x5", _run_craft_mesh),
]


def _measure_body(name: str, smoke: bool,
                  core: str) -> tuple[int, float, float]:
    """One timed run; executes in whichever process measures."""
    runner = dict(_CELLS)[name]
    with perf.legacy_core(core == "legacy"):
        started = time.perf_counter()
        loop = runner(smoke)
        wall = time.perf_counter() - started
    return loop.events_processed, wall, loop.now()


def _measure(name: str, smoke: bool, core: str, pool) -> PerfSample:
    if pool is not None:
        events, wall, sim = pool.apply(_measure_body, (name, smoke, core))
    else:
        events, wall, sim = _measure_body(name, smoke, core)
    return PerfSample(core=core, events=events,
                      wall_seconds=wall, sim_seconds=sim)


def run_bench_perf(smoke: bool = False, repeats: int = 3) -> PerfReport:
    """Measure every cell on both cores, same machine, one worker.

    Each (cell, core) pair runs ``repeats`` times interleaved
    (legacy/current/legacy/...) and keeps its best run: wall-clock on a
    shared machine is one-sided noise (preemption and frequency scaling
    only ever slow a run down), so min-wall is the faithful estimator
    and interleaving keeps slow spells from landing on one core only.

    Measurements run one at a time inside the persistent sweep pool
    (sized to a single worker): timing happens inside the warm worker,
    so the pool's spin-up, the host process's accumulated heap, and any
    pytest machinery stay out of the measured wall clock. Falls back to
    in-process measurement where a pool cannot be created.
    """
    try:
        from repro.scenarios.runner import sweep_pool
        pool = sweep_pool(1)
    except Exception:  # pragma: no cover - restricted environments
        pool = None
    report = PerfReport(mode="smoke" if smoke else "full")
    for name, _runner in _CELLS:
        best: dict[str, PerfSample] = {}
        for _ in range(max(1, repeats)):
            for core in ("legacy", "current"):
                sample = _measure(name, smoke, core, pool)
                kept = best.get(core)
                if kept is None or sample.wall_seconds < kept.wall_seconds:
                    best[core] = sample
        report.cells.append(CellComparison(name=name, legacy=best["legacy"],
                                           current=best["current"]))
    return report


# ----------------------------------------------------------------------
# Trajectory file
# ----------------------------------------------------------------------
def default_output_path() -> pathlib.Path:
    """``BENCH_perf.json`` at the repository root (next to ROADMAP.md)."""
    return (pathlib.Path(__file__).resolve()
            .parents[3] / "BENCH_perf.json")


def write_trajectory(report: PerfReport,
                     path: pathlib.Path | None = None) -> pathlib.Path:
    """Append ``report`` to the perf trajectory JSON (creating it)."""
    path = path if path is not None else default_output_path()
    if path.exists():
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("schema") != 1:  # pragma: no cover - future-proof
            raise ExperimentError(
                f"unknown BENCH_perf.json schema: {payload.get('schema')!r}")
    else:
        payload = {"schema": 1, "benchmark": "bench_perf",
                   "unit": "events/sec", "runs": []}
    payload["runs"].append(report.as_dict())
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
