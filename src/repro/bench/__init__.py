"""Performance measurement harness.

:mod:`repro.bench.perf` measures the simulation core itself -- events
per second and wall clock on fixed cells, current core vs the legacy
(pre-refactor) core kept behind :mod:`repro.perf` -- and maintains the
``BENCH_perf.json`` trajectory at the repository root. The scientific
benchmarks (figures, catch-up, chunking) live under ``benchmarks/``;
this package is about how fast the simulator runs them.
"""

from repro.bench.perf import (
    CellComparison,
    PerfReport,
    PerfSample,
    default_output_path,
    run_bench_perf,
    write_trajectory,
)
from repro.bench.serving import (
    ServingReport,
    run_bench_serving,
    write_serving_trajectory,
)

__all__ = [
    "CellComparison",
    "PerfReport",
    "PerfSample",
    "ServingReport",
    "default_output_path",
    "run_bench_perf",
    "run_bench_serving",
    "write_serving_trajectory",
    "write_trajectory",
]
