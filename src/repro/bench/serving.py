"""Serving-layer throughput/latency row for the perf trajectory.

Where :mod:`repro.bench.perf` measures the simulator core (events/sec,
legacy vs current), this module measures the *serving layer* the core
carries: the registered ``heavy_traffic`` scenario -- a session fleet
over the 6x5 C-Raft mesh with adaptive proposal batching -- reduced to
one row of client-observed numbers (throughput, p50/p99/p999 latency,
abandoned fraction, duplicates suppressed).

The row appends to the same ``BENCH_perf.json`` file at the repository
root, under a sibling ``serving_runs`` list (the ``runs`` list stays
homogeneous: core comparisons only). The scenario's own
:class:`~repro.scenarios.spec.SLOSpec` is enforced while the cell runs,
so a committed serving row is by construction one that met its SLOs.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from dataclasses import dataclass

from repro.bench.perf import default_output_path
from repro.errors import ExperimentError
from repro.metrics.summary import SummaryStats

_MODES = ("smoke", "quick", "full")


@dataclass(frozen=True)
class ServingReport:
    """One measured ``heavy_traffic`` run, trajectory-ready."""

    mode: str
    sessions: int
    arrival_rate: float
    throughput: float
    latency: SummaryStats
    abandoned_fraction: float
    duplicates_suppressed: int
    wall_seconds: float

    def format(self) -> str:
        return (
            "Serving layer -- heavy_traffic "
            f"(mode={self.mode}, {self.sessions} sessions @ "
            f"{self.arrival_rate:g}/s)\n"
            f"{'throughput':>12} {'p50_ms':>8} {'p99_ms':>8} "
            f"{'p999_ms':>9} {'abandoned':>10} {'dups':>6} {'wall_s':>7}\n"
            f"{self.throughput:>10.1f}/s "
            f"{self.latency.median * 1e3:>8.1f} "
            f"{self.latency.p99 * 1e3:>8.1f} "
            f"{self.latency.p999 * 1e3:>9.1f} "
            f"{self.abandoned_fraction:>10.4f} "
            f"{self.duplicates_suppressed:>6} "
            f"{self.wall_seconds:>7.1f}")

    def as_dict(self) -> dict:
        return {
            "benchmark": "heavy_traffic",
            "mode": self.mode,
            "python": platform.python_version(),
            "platform": platform.system().lower(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                       time.gmtime()),
            "sessions": self.sessions,
            "arrival_rate": self.arrival_rate,
            "throughput_per_sec": round(self.throughput, 2),
            "latency_ms": {
                "p50": round(self.latency.median * 1e3, 2),
                "p99": round(self.latency.p99 * 1e3, 2),
                "p999": round(self.latency.p999 * 1e3, 2),
                "mean": round(self.latency.mean * 1e3, 2),
                "max": round(self.latency.maximum * 1e3, 2),
                "samples": self.latency.count,
            },
            "abandoned_fraction": round(self.abandoned_fraction, 5),
            "duplicates_suppressed": self.duplicates_suppressed,
            "wall_seconds": round(self.wall_seconds, 2),
        }

    def check(self) -> None:
        """Shape sanity; the SLOs were already enforced in the run."""
        if self.throughput <= 0 or self.latency.count <= 0:
            raise ExperimentError(
                "serving bench produced no completed requests")


def run_bench_serving(mode: str = "quick", jobs: int = 1) -> ServingReport:
    """Run the ``heavy_traffic`` scenario at ``mode`` scale, timed.

    The scenario's SLOSpec raises from inside the run on violation, so
    the returned report is always one that satisfied its SLOs.
    """
    if mode not in _MODES:
        raise ExperimentError(f"unknown serving bench mode: {mode!r}")
    from repro.experiments.heavy_traffic import (
        HeavyTrafficConfig,
        run_heavy_traffic,
    )
    config = {"smoke": HeavyTrafficConfig.smoke,
              "quick": HeavyTrafficConfig.quick,
              "full": HeavyTrafficConfig.paper}[mode]()
    started = time.perf_counter()
    result = run_heavy_traffic(config, jobs=jobs)
    wall = time.perf_counter() - started
    result.check_shape()
    return ServingReport(
        mode=mode, sessions=config.sessions,
        arrival_rate=config.arrival_rate,
        throughput=result.throughput, latency=result.latency,
        abandoned_fraction=result.abandoned_fraction,
        duplicates_suppressed=result.duplicates_suppressed,
        wall_seconds=wall)


def write_serving_trajectory(report: ServingReport,
                             path: pathlib.Path | None = None
                             ) -> pathlib.Path:
    """Append ``report`` under ``serving_runs`` in ``BENCH_perf.json``."""
    path = path if path is not None else default_output_path()
    if path.exists():
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("schema") != 1:  # pragma: no cover - future-proof
            raise ExperimentError(
                f"unknown BENCH_perf.json schema: {payload.get('schema')!r}")
    else:  # pragma: no cover - bench_perf normally creates the file
        payload = {"schema": 1, "benchmark": "bench_perf",
                   "unit": "events/sec", "runs": []}
    payload.setdefault("serving_runs", []).append(report.as_dict())
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
