"""repro: a reproduction of Fast Raft and C-Raft.

Implements the consensus algorithms from "A Hierarchical Model for Fast
Distributed Consensus in Dynamic Networks" (Castiglia, Goldberg,
Patterson; ICDCS 2020) on a deterministic discrete-event simulator, along
with classic Raft as the paper's baseline, a replicated state-machine
layer, fault injection, and the full experiment suite regenerating the
paper's figures.

Quickstart::

    from repro import build_cluster
    from repro.fastraft import FastRaftServer

    cluster = build_cluster(FastRaftServer, n_sites=5, seed=7)
    cluster.start_all()
    cluster.run_until_leader()
    client = cluster.add_client(site="n0")
    record = cluster.propose_and_wait(client, {"op": "put", "key": "a",
                                               "value": 1})
    print(f"committed at index {record.commit_index} "
          f"in {record.latency * 1000:.1f} ms")
"""

from repro.consensus.config import Configuration
from repro.consensus.entry import EntryKind, InsertedBy, LogEntry
from repro.consensus.timing import TimingConfig
from repro.harness.builder import Cluster, build_cluster
from repro.harness.faults import FaultInjector
from repro.net.latency import (
    ConstantLatency,
    RegionLatencyModel,
    UniformLatency,
)
from repro.net.loss import BernoulliLoss, NoLoss
from repro.raft.server import RaftServer
from repro.sim.loop import MS, SimLoop

__version__ = "1.0.0"

__all__ = [
    "BernoulliLoss",
    "Cluster",
    "Configuration",
    "ConstantLatency",
    "EntryKind",
    "FaultInjector",
    "InsertedBy",
    "LogEntry",
    "MS",
    "NoLoss",
    "RaftServer",
    "RegionLatencyModel",
    "SimLoop",
    "TimingConfig",
    "UniformLatency",
    "build_cluster",
    "__version__",
]
