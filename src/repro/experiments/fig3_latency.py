"""Figure 3: commit latency of classic Raft vs Fast Raft under loss.

Paper setup: five sites in one AWS region, loss forced to 0-10 % with
``tc``, one randomly placed closed-loop proposer, 100 committed entries
per point, 100 ms leader heartbeat.

Expected shape (paper): Fast Raft commits in about half the classic-Raft
latency at low loss; as loss grows the fast track fails more often, the
extra classic-track round dominates, and Fast Raft meets/exceeds classic
Raft around 5-10 % loss while classic Raft stays roughly flat.

The sweep is declared as scenario cells (one per protocol x loss grid
point) and executed by the :class:`~repro.scenarios.SweepRunner`, so
``--jobs N`` fans the grid out across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.timing import TimingConfig
from repro.experiments.base import ResultTable, cell_seed, require
from repro.metrics.summary import SummaryStats
from repro.scenarios.mc import McTarget, register_mc_target
from repro.scenarios.registry import Scenario, register_scenario
from repro.scenarios.runner import SweepRunner
from repro.scenarios.spec import (
    Cell,
    LossSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)


@dataclass(frozen=True)
class Fig3Config:
    n_sites: int = 5
    loss_rates: tuple[float, ...] = (0.0, 0.01, 0.025, 0.05, 0.075, 0.10)
    trials: int = 100          # committed entries per point (paper: 100)
    seed: int = 0
    timing: TimingConfig = field(default_factory=TimingConfig.intra_cluster)
    #: Client retry period. The paper's classic-Raft curve stays flat up
    #: to 10 % loss, which requires the proposer to re-send lost proposals
    #: at heartbeat scale (a dropped proposer->leader datagram is the only
    #: loss classic Raft cannot absorb through its quorum).
    proposal_timeout: float = 0.150
    timeout: float = 600.0     # sim-seconds allowed per point

    @classmethod
    def paper(cls) -> "Fig3Config":
        return cls()

    @classmethod
    def quick(cls) -> "Fig3Config":
        return cls(loss_rates=(0.0, 0.05, 0.10), trials=25)

    @classmethod
    def smoke(cls) -> "Fig3Config":
        return cls(loss_rates=(0.0, 0.10), trials=15)


@dataclass
class Fig3Point:
    loss_rate: float
    classic: SummaryStats
    fast: SummaryStats

    @property
    def speedup(self) -> float:
        """classic/fast mean-latency ratio (>1 means Fast Raft wins)."""
        return self.classic.mean / self.fast.mean


@dataclass
class Fig3Result:
    config: Fig3Config
    points: list[Fig3Point]

    def table(self) -> ResultTable:
        table = ResultTable(
            "Fig. 3 -- mean commit latency vs message loss (ms)",
            ["loss %", "classic Raft", "Fast Raft", "classic p95",
             "fast p95", "speedup"])
        for point in self.points:
            table.add_row(point.loss_rate * 100,
                          point.classic.mean * 1000,
                          point.fast.mean * 1000,
                          point.classic.p95 * 1000,
                          point.fast.p95 * 1000,
                          point.speedup)
        table.add_note(f"{self.config.n_sites} sites, one region, "
                       f"{self.config.trials} commits per point, heartbeat "
                       f"{self.config.timing.heartbeat_interval * 1000:.0f} ms")
        return table

    def check_shape(self) -> None:
        """The paper's robust qualitative claims.

        One documented divergence (EXPERIMENTS.md): the paper's prototype
        crosses over around 5-10 % loss, ours does not -- our client
        retries regenerate the entire proposal broadcast, so failed fast
        tracks recover cheaply and Fast Raft keeps its lead under loss.
        We therefore check that both protocols degrade within bounds and
        that the advantage does not *grow* with loss, rather than
        demanding the crossover.
        """
        first, last = self.points[0], self.points[-1]
        require(first.speedup >= 1.5,
                f"Fast Raft should be ~2x classic at 0% loss, got "
                f"{first.speedup:.2f}x")
        require(first.speedup <= 3.5,
                f"speedup at 0% loss implausibly large: "
                f"{first.speedup:.2f}x")
        fast_drift = last.fast.mean / first.fast.mean
        classic_drift = last.classic.mean / first.classic.mean
        require(fast_drift > 1.1,
                f"Fast Raft latency should degrade with loss, drifted "
                f"only {fast_drift:.2f}x")
        require(classic_drift < 1.6,
                f"classic Raft should stay roughly flat, drifted "
                f"{classic_drift:.2f}x")
        require(last.speedup <= first.speedup * 1.15,
                f"Fast Raft's advantage should not grow with loss "
                f"({first.speedup:.2f}x -> {last.speedup:.2f}x)")


def fig3_spec(config: Fig3Config, protocol: str,
              loss_rate: float) -> ScenarioSpec:
    """One grid point: ``trials`` commits from a random proposer."""
    engine = "raft" if protocol == "classic" else "fastraft"
    return ScenarioSpec(
        name=f"fig3.{protocol}.loss{loss_rate:g}", engine=engine,
        topology=TopologySpec(n_sites=config.n_sites),
        timing=config.timing, loss=LossSpec(loss_rate),
        workload=WorkloadSpec(
            placement="random", rng_stream="fig3.proposer",
            requests=config.trials,
            proposal_timeout=config.proposal_timeout),
        probe="latency_summary", timeout=config.timeout)


def fig3_cells(config: Fig3Config) -> list[Cell]:
    return [Cell(key=(protocol, loss_rate),
                 spec=fig3_spec(config, protocol, loss_rate),
                 seed=cell_seed(config.seed, protocol, loss_rate))
            for loss_rate in config.loss_rates
            for protocol in ("classic", "fast")]


def run_fig3(config: Fig3Config | None = None, jobs: int = 1) -> Fig3Result:
    config = config or Fig3Config.paper()
    stats = SweepRunner(jobs).run(fig3_cells(config))
    points = [Fig3Point(loss_rate=loss_rate,
                        classic=stats[("classic", loss_rate)],
                        fast=stats[("fast", loss_rate)])
              for loss_rate in config.loss_rates]
    return Fig3Result(config=config, points=points)


register_scenario(Scenario(
    name="fig3",
    description="Commit latency vs message loss, classic Raft vs Fast "
                "Raft (Fig. 3)",
    make_config=lambda mode: {"quick": Fig3Config.quick,
                              "full": Fig3Config.paper,
                              "smoke": Fig3Config.smoke}[mode](),
    run=run_fig3,
    modes=("quick", "full", "smoke")))

# Any registered ScenarioSpec is checkable: wrap one fig3 grid point as
# an mc target (lossless -- the explorer enumerates delivery orders
# itself, it does not need the loss process to create nondeterminism).
register_mc_target(McTarget(
    name="mc_fig3_fast",
    spec=fig3_spec(Fig3Config.smoke(), "fast", 0.0),
    seed=cell_seed(0, "fast", 0.0), warmup=4.0,
    description="fig3 grid point (Fast Raft, 0% loss) explored as a "
                "model-checking target"))
