"""Registered model-checking targets.

Dedicated targets plus the registration pattern any experiment can
follow (``fig3`` registers one next to its ``register_scenario`` call):

- ``mc_small_healthy`` / ``mc_small_classic`` -- 3-site Fast Raft /
  classic Raft clusters that elect a leader and commit a short workload
  before exploration starts. Fixed code must show **zero** violations at
  CI-smoke depth; these are the ``mc-smoke`` gate.
- ``mc_evicted_while_down`` -- the ROADMAP's recovery liveness edge,
  fixed by the probe-before-trust handshake (README "Crash recovery &
  rejoin"): a 5-site Fast Raft cluster whose follower crashes, is
  evicted by the member timeout while down, and recovers from stable
  storage long after. The recovery probe detects the stale restored
  configuration and routes the site straight onto the rejoin path, so
  this now gates at **zero** violations like the healthy targets.
- ``mc_evicted_while_down_noprobe`` -- the same scenario with the
  handshake disabled (``recovery_probe_timeout=0``): the pre-fix silent
  window, kept as an expect-violation target so the rejoin probe, the
  violation export, and the schedule replay machinery stay exercised
  end to end.
- ``mc_recover_{before,at,after}_eviction`` -- the recovery x
  eviction-timing battery: the same crash with recovery placed before
  the member timeout, racing it, and just after it, each warmup cut
  right at the recovery point so the probe handshake itself (probes and
  replies in flight) is what exploration reorders. All gate at zero.
"""

from __future__ import annotations

from repro.consensus.timing import TimingConfig
from repro.scenarios.mc import McTarget, register_mc_target
from repro.scenarios.spec import (
    Event,
    EventSchedule,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

#: Step bound for the recovered-member rejoin probe: generously above
#: the explored cycle lengths (a full heartbeat round is ~7 events) yet
#: far below what a healthy rejoin path needs to *stay* stuck.
REJOIN_BOUND = 10

#: The extra liveness probes every recovery target (and the small
#: healthy gates) runs alongside the rejoin probe.
EXTRA_PROBES = ("leader_stability", "commit_progress")


def _small_spec(engine: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"mc_small_{engine}", engine=engine,
        topology=TopologySpec(n_sites=3),
        workload=WorkloadSpec(requests=4))


register_mc_target(McTarget(
    name="mc_small_healthy",
    spec=_small_spec("fastraft"),
    seed=0, warmup=2.0, liveness_bound=REJOIN_BOUND,
    probes=EXTRA_PROBES,
    description="3-site Fast Raft, leader + 4 commits before exploring; "
                "fixed code shows zero violations"))

register_mc_target(McTarget(
    name="mc_small_classic",
    spec=_small_spec("raft"),
    seed=0, warmup=2.0, liveness_bound=REJOIN_BOUND,
    probes=EXTRA_PROBES,
    description="3-site classic Raft, leader + 4 commits before "
                "exploring; fixed code shows zero violations"))


def evicted_while_down_spec(name: str = "mc_evicted_while_down",
                            timing: TimingConfig | None = None,
                            ) -> ScenarioSpec:
    """Crash a follower, let the member timeout evict it, recover it
    from stable storage long after, and stop the warmup just past the
    recovery point (recovery at t=6.0; the first election timeout cannot
    fire before t=6.3 with the default 0.3-0.6s timeout range)."""
    return ScenarioSpec(
        name=name, engine="fastraft",
        topology=TopologySpec(n_sites=5),
        workload=WorkloadSpec(requests=15),
        timing=timing,
        schedule=EventSchedule(events=(
            Event(action="crash", target="nonleader:0", at=1.0),
            Event(action="recover", target="nonleader:0", at=6.0),
        )))


#: Warmup offset past a recover event: smaller than the minimum network
#: latency (0.2 ms), so the recovery probes are still *in flight* at the
#: exploration root and the handshake itself -- delivery orderings,
#: probe-timer-first firings, delayed replies -- is what gets explored.
_PROBE_WINDOW = 0.0001

register_mc_target(McTarget(
    name="mc_evicted_while_down",
    spec=evicted_while_down_spec(),
    seed=0, warmup=6.0 + _PROBE_WINDOW, liveness_bound=REJOIN_BOUND,
    probes=EXTRA_PROBES,
    description="ROADMAP item 4 fixed: the recovery probe detects the "
                "stale restored configuration and rejoins immediately "
                "(zero violations)"))

register_mc_target(McTarget(
    name="mc_evicted_while_down_noprobe",
    spec=evicted_while_down_spec(
        name="mc_evicted_while_down_noprobe",
        timing=TimingConfig(recovery_probe_timeout=0.0)),
    seed=0, warmup=6.1, liveness_bound=REJOIN_BOUND,
    description="the pre-fix silent window (recovery probe disabled): "
                "recovered follower trusts its stale configuration and "
                "idles outside the cluster (expect a liveness "
                "violation)"))


def _recovery_timing_spec(name: str, recover_at: float) -> ScenarioSpec:
    """The eviction-timing battery: crash at t=2.0 (workload drained),
    recover at ``recover_at``. The member timeout (5 missed 100 ms
    beats) declares the silent leave around t=2.5-2.6."""
    return ScenarioSpec(
        name=name, engine="fastraft",
        topology=TopologySpec(n_sites=5),
        workload=WorkloadSpec(requests=6),
        schedule=EventSchedule(events=(
            Event(action="crash", target="nonleader:0", at=2.0),
            Event(action="recover", target="nonleader:0", at=recover_at),
        )))


for _name, _recover_at, _desc in (
    ("mc_recover_before_eviction", 2.2,
     "recovery before the member timeout: the probe confirms the "
     "still-valid configuration and the site resumes as a follower"),
    ("mc_recover_at_eviction", 2.5,
     "recovery racing the member timeout: confirmation and eviction "
     "interleave freely; either outcome must stay live"),
    ("mc_recover_after_eviction", 2.8,
     "recovery just after the eviction committed: the probe routes the "
     "site straight onto the rejoin path"),
):
    register_mc_target(McTarget(
        name=_name,
        spec=_recovery_timing_spec(_name, _recover_at),
        seed=0, warmup=_recover_at + _PROBE_WINDOW,
        liveness_bound=REJOIN_BOUND, probes=EXTRA_PROBES,
        description=_desc + " (zero violations)"))
