"""Registered model-checking targets.

Three dedicated targets plus the registration pattern any experiment can
follow (``fig3`` registers one next to its ``register_scenario`` call):

- ``mc_small_healthy`` / ``mc_small_classic`` -- 3-site Fast Raft /
  classic Raft clusters that elect a leader and commit a short workload
  before exploration starts. Fixed code must show **zero** violations at
  CI-smoke depth; these are the ``mc-smoke`` gate.
- ``mc_evicted_while_down`` -- the ROADMAP's open recovery liveness
  edge, pinned: a 5-site Fast Raft cluster whose follower crashes, is
  evicted by the member timeout while down, and recovers from stable
  storage *just before* its first election timeout would fire. The
  restored configuration still lists the site as a member, so it sits as
  a silent follower -- excluded by the leader, sending nothing -- until
  an (unwinnable) election timeout eventually trips the
  ``NotInConfiguration`` rejoin path. The warmup window is cut exactly
  in that silent gap; the rejoin probe flags every explored path that
  keeps the site stuck past the step bound or around a state cycle.
"""

from __future__ import annotations

from repro.scenarios.mc import McTarget, register_mc_target
from repro.scenarios.spec import (
    Event,
    EventSchedule,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

#: Step bound for the recovered-member rejoin probe: generously above
#: the explored cycle lengths (a full heartbeat round is ~7 events) yet
#: far below what a healthy rejoin path needs to *stay* stuck.
REJOIN_BOUND = 10


def _small_spec(engine: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"mc_small_{engine}", engine=engine,
        topology=TopologySpec(n_sites=3),
        workload=WorkloadSpec(requests=4))


register_mc_target(McTarget(
    name="mc_small_healthy",
    spec=_small_spec("fastraft"),
    seed=0, warmup=2.0, liveness_bound=REJOIN_BOUND,
    description="3-site Fast Raft, leader + 4 commits before exploring; "
                "fixed code shows zero violations"))

register_mc_target(McTarget(
    name="mc_small_classic",
    spec=_small_spec("raft"),
    seed=0, warmup=2.0, liveness_bound=REJOIN_BOUND,
    description="3-site classic Raft, leader + 4 commits before "
                "exploring; fixed code shows zero violations"))


def evicted_while_down_spec() -> ScenarioSpec:
    """Crash a follower, let the member timeout evict it, recover it
    from stable storage, and stop the warmup inside the silent window
    (recovery at t=6.0; the first election timeout cannot fire before
    t=6.3 with the default 0.3-0.6s timeout range)."""
    return ScenarioSpec(
        name="mc_evicted_while_down", engine="fastraft",
        topology=TopologySpec(n_sites=5),
        workload=WorkloadSpec(requests=15),
        schedule=EventSchedule(events=(
            Event(action="crash", target="nonleader:0", at=1.0),
            Event(action="recover", target="nonleader:0", at=6.0),
        )))


register_mc_target(McTarget(
    name="mc_evicted_while_down",
    spec=evicted_while_down_spec(),
    seed=0, warmup=6.1, liveness_bound=REJOIN_BOUND,
    description="ROADMAP item 4 pinned: recovered follower trusts its "
                "stale configuration and idles outside the cluster "
                "(expect a liveness violation)"))
