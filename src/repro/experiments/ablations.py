"""Ablation sweeps over the design knobs DESIGN.md calls out.

Not figures from the paper -- these quantify the sensitivity of the
reproduction to the choices the paper leaves open:

- **decision interval** -- the calibration knob behind the Fig. 3 ratio:
  the leader's decision cadence relative to the heartbeat.
- **dispatch policy** -- tick-driven AppendEntries (the paper's
  implementation) vs eager dispatch on arrival.
- **batch size** -- C-Raft's local-entries-per-global-proposal.
- **proposer count** -- contention on Fast Raft's fast track (the
  paper's liveness discussion assumes no concurrent proposals).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.timing import TimingConfig
from repro.craft.batching import BatchPolicy
from repro.craft.deployment import build_craft_deployment
from repro.experiments.base import ResultTable, cell_seed
from repro.experiments.regions import latency_model_for, regions_for
from repro.fastraft.server import FastRaftServer
from repro.harness.builder import build_cluster
from repro.harness.workload import ClosedLoopWorkload
from repro.metrics.summary import summarize
from repro.net.topology import Topology
from repro.raft.server import RaftServer


@dataclass(frozen=True)
class AblationConfig:
    commits: int = 40
    seed: int = 0
    decision_fractions: tuple[float, ...] = (0.1, 0.25, 0.5, 1.0)
    batch_sizes: tuple[int, ...] = (1, 5, 10, 20)
    proposer_counts: tuple[int, ...] = (1, 2, 3, 5)
    craft_clusters: int = 4
    craft_sites: int = 8
    craft_duration: float = 40.0

    @classmethod
    def paper(cls) -> "AblationConfig":
        return cls(commits=100, craft_duration=120.0)

    @classmethod
    def quick(cls) -> "AblationConfig":
        return cls(commits=20, decision_fractions=(0.25, 0.5, 1.0),
                   batch_sizes=(1, 10), proposer_counts=(1, 3),
                   craft_duration=30.0)


def _mean_latency(server_cls, timing: TimingConfig, seed: int,
                  commits: int, proposers: int = 1) -> float:
    cluster = build_cluster(server_cls, n_sites=5, seed=seed, timing=timing)
    cluster.start_all()
    cluster.run_until_leader(timeout=30.0)
    workloads = []
    sites = sorted(cluster.servers)
    for index in range(proposers):
        client = cluster.add_client(site=sites[index % len(sites)],
                                    proposal_timeout=0.3)
        workload = ClosedLoopWorkload(
            client, max_requests=commits,
            command_factory=lambda s, i=index: {"op": "put",
                                                "key": f"p{i}.{s}",
                                                "value": s})
        workload.start()
        workloads.append(workload)
    if not cluster.run_until(lambda: all(w.done for w in workloads),
                             timeout=600.0):
        raise TimeoutError("ablation workload stalled")
    latencies = [value for w in workloads for value in w.latencies()]
    return summarize(latencies).mean


def run_decision_interval_ablation(config: AblationConfig | None = None
                                   ) -> ResultTable:
    """Fast Raft latency as the decision cadence varies."""
    config = config or AblationConfig.paper()
    table = ResultTable(
        "Ablation -- Fast Raft latency vs decision interval",
        ["decision/heartbeat", "decision ms", "mean latency ms"])
    base = TimingConfig.intra_cluster()
    for fraction in config.decision_fractions:
        timing = base.with_overrides(
            decision_interval=base.heartbeat_interval * fraction)
        latency = _mean_latency(
            FastRaftServer, timing,
            cell_seed(config.seed, "decision", fraction), config.commits)
        table.add_row(fraction, timing.effective_decision_interval * 1000,
                      latency * 1000)
    table.add_note("fast-track latency tracks the decision cadence; the "
                   "default (0.5x heartbeat) yields the paper's 2x ratio")
    return table


def run_dispatch_ablation(config: AblationConfig | None = None
                          ) -> ResultTable:
    """Tick-driven vs eager AppendEntries dispatch, both protocols."""
    config = config or AblationConfig.paper()
    table = ResultTable(
        "Ablation -- AppendEntries dispatch policy (mean latency ms)",
        ["protocol", "tick-driven", "eager"])
    base = TimingConfig.intra_cluster()
    for name, server_cls in (("classic Raft", RaftServer),
                             ("Fast Raft", FastRaftServer)):
        tick = _mean_latency(server_cls, base,
                             cell_seed(config.seed, "tick", name),
                             config.commits)
        eager = _mean_latency(
            server_cls, base.with_overrides(eager_append=True),
            cell_seed(config.seed, "eager", name), config.commits)
        table.add_row(name, tick * 1000, eager * 1000)
    table.add_note("the paper's prototype is tick-driven; eager dispatch "
                   "removes the half-heartbeat queueing from the classic "
                   "track")
    return table


def run_proposer_ablation(config: AblationConfig | None = None
                          ) -> ResultTable:
    """Fast Raft under concurrent proposers (fast-track contention)."""
    config = config or AblationConfig.paper()
    table = ResultTable(
        "Ablation -- Fast Raft latency vs concurrent proposers",
        ["proposers", "mean latency ms"])
    base = TimingConfig.intra_cluster()
    for proposers in config.proposer_counts:
        latency = _mean_latency(
            FastRaftServer, base,
            cell_seed(config.seed, "proposers", proposers),
            config.commits, proposers=proposers)
        table.add_row(proposers, latency * 1000)
    table.add_note("concurrent proposals contend for indices; conflicts "
                   "fall back to the classic track (Section IV-F)")
    return table


def run_batch_size_ablation(config: AblationConfig | None = None
                            ) -> ResultTable:
    """C-Raft global throughput vs batch size."""
    config = config or AblationConfig.paper()
    table = ResultTable(
        "Ablation -- C-Raft throughput vs batch size (entries/s)",
        ["batch size", "global throughput"])
    regions = regions_for(config.craft_clusters)
    for batch_size in config.batch_sizes:
        topology = Topology.even_clusters(config.craft_sites, regions)
        deployment = build_craft_deployment(
            topology, latency_model_for(topology),
            seed=cell_seed(config.seed, "batch", batch_size),
            batch_policy=BatchPolicy(batch_size=batch_size,
                                     max_outstanding=8),
            trace_enabled=False)
        deployment.start_all()
        deployment.run_until_local_leaders(timeout=30.0)
        deployment.run_until_global_ready(timeout=90.0)
        for region in regions:
            client = deployment.add_client(
                site=topology.nodes_in_cluster(region)[0])
            ClosedLoopWorkload(client).start()
        deployment.run_for(10.0)  # warmup
        start = deployment.total_global_applied()
        deployment.run_for(config.craft_duration)
        done = deployment.total_global_applied()
        table.add_row(batch_size,
                      (done - start) / config.craft_duration)
    table.add_note("larger batches amortize inter-cluster consensus; "
                   "batch size 1 degenerates to one global round per "
                   "entry")
    return table


def run_all_ablations(config: AblationConfig | None = None
                      ) -> list[ResultTable]:
    config = config or AblationConfig.paper()
    return [
        run_decision_interval_ablation(config),
        run_dispatch_ablation(config),
        run_proposer_ablation(config),
        run_batch_size_ablation(config),
    ]
