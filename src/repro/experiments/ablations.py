"""Ablation sweeps over the design knobs DESIGN.md calls out.

Not figures from the paper -- these quantify the sensitivity of the
reproduction to the choices the paper leaves open:

- **decision interval** -- the calibration knob behind the Fig. 3 ratio:
  the leader's decision cadence relative to the heartbeat.
- **dispatch policy** -- tick-driven AppendEntries (the paper's
  implementation) vs eager dispatch on arrival.
- **batch size** -- C-Raft's local-entries-per-global-proposal.
- **proposer count** -- contention on Fast Raft's fast track (the
  paper's liveness discussion assumes no concurrent proposals).

All four sweeps share two scenario shapes (a flat latency cell and a
C-Raft throughput cell); ``run_all_ablations`` submits every cell of
every sweep as one batch so ``--jobs N`` parallelizes across tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.timing import TimingConfig
from repro.craft.batching import BatchPolicy
from repro.experiments.base import ResultTable, cell_seed
from repro.experiments.regions import regions_for
from repro.net.topology import Topology
from repro.scenarios.registry import Scenario, register_scenario
from repro.scenarios.runner import SweepRunner
from repro.scenarios.spec import (
    Cell,
    LatencySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)


@dataclass(frozen=True)
class AblationConfig:
    commits: int = 40
    seed: int = 0
    decision_fractions: tuple[float, ...] = (0.1, 0.25, 0.5, 1.0)
    batch_sizes: tuple[int, ...] = (1, 5, 10, 20)
    proposer_counts: tuple[int, ...] = (1, 2, 3, 5)
    craft_clusters: int = 4
    craft_sites: int = 8
    craft_duration: float = 40.0

    @classmethod
    def paper(cls) -> "AblationConfig":
        return cls(commits=100, craft_duration=120.0)

    @classmethod
    def quick(cls) -> "AblationConfig":
        return cls(commits=20, decision_fractions=(0.25, 0.5, 1.0),
                   batch_sizes=(1, 10), proposer_counts=(1, 3),
                   craft_duration=30.0)

    @classmethod
    def smoke(cls) -> "AblationConfig":
        return cls(commits=10, decision_fractions=(0.5, 1.0),
                   batch_sizes=(1, 10), proposer_counts=(1, 2),
                   craft_duration=20.0)


def _flat_cell(key: tuple, engine: str, timing: TimingConfig, seed: int,
               commits: int, proposers: int = 1) -> Cell:
    """The old ``_mean_latency`` shape as a spec: 5 sites, round-robin
    proposers, mean commit latency over every proposer's commits."""
    spec = ScenarioSpec(
        name=f"ablation.{engine}.p{proposers}", engine=engine,
        topology=TopologySpec(n_sites=5), timing=timing,
        workload=WorkloadSpec(
            placement="round_robin", proposers=proposers,
            requests=commits, proposal_timeout=0.3, command="keyed",
            prefixes=tuple(f"p{i}" for i in range(proposers))),
        probe="mean_latency", safety_checks=False, timeout=600.0)
    return Cell(key=key, spec=spec, seed=seed)


def _craft_cell(key: tuple, config: AblationConfig, batch_size: int,
                seed: int) -> Cell:
    regions = regions_for(config.craft_clusters)
    topology = Topology.even_clusters(config.craft_sites, regions)
    spec = ScenarioSpec(
        name=f"ablation.batch{batch_size}", engine="craft",
        topology=TopologySpec(n_sites=config.craft_sites,
                              regions=tuple(regions)),
        batch=BatchPolicy(batch_size=batch_size, max_outstanding=8),
        latency=LatencySpec.aws_regions(), trace=False,
        workload=WorkloadSpec(
            placement="sites",
            sites=tuple(topology.nodes_in_cluster(r)[0] for r in regions)),
        drive="throughput_window",
        params={"warmup": 10.0, "duration": config.craft_duration,
                "global_ready_timeout": 90.0})
    return Cell(key=key, spec=spec, seed=seed)


# ----------------------------------------------------------------------
# Cell grids, one per table
# ----------------------------------------------------------------------
def decision_cells(config: AblationConfig) -> list[Cell]:
    base = TimingConfig.intra_cluster()
    return [
        _flat_cell(("decision", fraction), "fastraft",
                   base.with_overrides(
                       decision_interval=base.heartbeat_interval * fraction),
                   cell_seed(config.seed, "decision", fraction),
                   config.commits)
        for fraction in config.decision_fractions]


def dispatch_cells(config: AblationConfig) -> list[Cell]:
    base = TimingConfig.intra_cluster()
    cells = []
    for name, engine in (("classic Raft", "raft"),
                         ("Fast Raft", "fastraft")):
        cells.append(_flat_cell(("dispatch", name, "tick"), engine, base,
                                cell_seed(config.seed, "tick", name),
                                config.commits))
        cells.append(_flat_cell(("dispatch", name, "eager"), engine,
                                base.with_overrides(eager_append=True),
                                cell_seed(config.seed, "eager", name),
                                config.commits))
    return cells


def proposer_cells(config: AblationConfig) -> list[Cell]:
    base = TimingConfig.intra_cluster()
    return [
        _flat_cell(("proposers", count), "fastraft", base,
                   cell_seed(config.seed, "proposers", count),
                   config.commits, proposers=count)
        for count in config.proposer_counts]


def batch_cells(config: AblationConfig) -> list[Cell]:
    return [
        _craft_cell(("batch", batch_size), config, batch_size,
                    cell_seed(config.seed, "batch", batch_size))
        for batch_size in config.batch_sizes]


# ----------------------------------------------------------------------
# Table assembly
# ----------------------------------------------------------------------
def _decision_table(config: AblationConfig, results: dict) -> ResultTable:
    table = ResultTable(
        "Ablation -- Fast Raft latency vs decision interval",
        ["decision/heartbeat", "decision ms", "mean latency ms"])
    base = TimingConfig.intra_cluster()
    for fraction in config.decision_fractions:
        timing = base.with_overrides(
            decision_interval=base.heartbeat_interval * fraction)
        table.add_row(fraction, timing.effective_decision_interval * 1000,
                      results[("decision", fraction)] * 1000)
    table.add_note("fast-track latency tracks the decision cadence; the "
                   "default (0.5x heartbeat) yields the paper's 2x ratio")
    return table


def _dispatch_table(config: AblationConfig, results: dict) -> ResultTable:
    table = ResultTable(
        "Ablation -- AppendEntries dispatch policy (mean latency ms)",
        ["protocol", "tick-driven", "eager"])
    for name in ("classic Raft", "Fast Raft"):
        table.add_row(name,
                      results[("dispatch", name, "tick")] * 1000,
                      results[("dispatch", name, "eager")] * 1000)
    table.add_note("the paper's prototype is tick-driven; eager dispatch "
                   "removes the half-heartbeat queueing from the classic "
                   "track")
    return table


def _proposer_table(config: AblationConfig, results: dict) -> ResultTable:
    table = ResultTable(
        "Ablation -- Fast Raft latency vs concurrent proposers",
        ["proposers", "mean latency ms"])
    for count in config.proposer_counts:
        table.add_row(count, results[("proposers", count)] * 1000)
    table.add_note("concurrent proposals contend for indices; conflicts "
                   "fall back to the classic track (Section IV-F)")
    return table


def _batch_table(config: AblationConfig, results: dict) -> ResultTable:
    table = ResultTable(
        "Ablation -- C-Raft throughput vs batch size (entries/s)",
        ["batch size", "global throughput"])
    for batch_size in config.batch_sizes:
        table.add_row(batch_size, results[("batch", batch_size)])
    table.add_note("larger batches amortize inter-cluster consensus; "
                   "batch size 1 degenerates to one global round per "
                   "entry")
    return table


# ----------------------------------------------------------------------
# Entry points (one per table, plus the combined sweep)
# ----------------------------------------------------------------------
def run_decision_interval_ablation(config: AblationConfig | None = None,
                                   jobs: int = 1) -> ResultTable:
    """Fast Raft latency as the decision cadence varies."""
    config = config or AblationConfig.paper()
    return _decision_table(config,
                           SweepRunner(jobs).run(decision_cells(config)))


def run_dispatch_ablation(config: AblationConfig | None = None,
                          jobs: int = 1) -> ResultTable:
    """Tick-driven vs eager AppendEntries dispatch, both protocols."""
    config = config or AblationConfig.paper()
    return _dispatch_table(config,
                           SweepRunner(jobs).run(dispatch_cells(config)))


def run_proposer_ablation(config: AblationConfig | None = None,
                          jobs: int = 1) -> ResultTable:
    """Fast Raft under concurrent proposers (fast-track contention)."""
    config = config or AblationConfig.paper()
    return _proposer_table(config,
                           SweepRunner(jobs).run(proposer_cells(config)))


def run_batch_size_ablation(config: AblationConfig | None = None,
                            jobs: int = 1) -> ResultTable:
    """C-Raft global throughput vs batch size."""
    config = config or AblationConfig.paper()
    return _batch_table(config,
                        SweepRunner(jobs).run(batch_cells(config)))


def run_all_ablations(config: AblationConfig | None = None,
                      jobs: int = 1) -> list[ResultTable]:
    """Every ablation cell in one sweep, assembled into four tables."""
    config = config or AblationConfig.paper()
    cells = (decision_cells(config) + dispatch_cells(config)
             + proposer_cells(config) + batch_cells(config))
    results = SweepRunner(jobs).run(cells)
    return [
        _decision_table(config, results),
        _dispatch_table(config, results),
        _proposer_table(config, results),
        _batch_table(config, results),
    ]


register_scenario(Scenario(
    name="ablations",
    description="Design-knob sweeps: decision interval, dispatch policy, "
                "proposer contention, batch size",
    make_config=lambda mode: {"quick": AblationConfig.quick,
                              "full": AblationConfig.paper,
                              "smoke": AblationConfig.smoke}[mode](),
    run=run_all_ablations,
    modes=("quick", "full", "smoke")))
