"""Figure 5: global commit throughput of classic Raft vs C-Raft.

Paper setup: 20 sites split evenly over a varying number of clusters, one
cluster per AWS region; one closed-loop proposer per cluster; C-Raft
batches ten locally committed entries per global proposal; throughput is
entries committed to the global log, averaged over five 3-minute trials.
Intra-cluster heartbeat 100 ms, inter-cluster 500 ms.

Expected shape (paper): comparable at one cluster, C-Raft pulling ahead as
clusters multiply, reaching about 5x classic Raft at ten clusters.

The classic baseline spans the same sites in the same regions; its timing
uses the intra-cluster preset when everything sits in one region and the
inter-cluster preset once the deployment is geo-distributed, mirroring
how the paper configures heartbeats per deployment scope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.config import Configuration
from repro.consensus.engine import Role
from repro.consensus.entry import EntryKind
from repro.consensus.timing import TimingConfig
from repro.craft.batching import BatchPolicy
from repro.craft.deployment import build_craft_deployment
from repro.experiments.base import ResultTable, cell_seed, require
from repro.experiments.regions import latency_model_for, regions_for
from repro.harness.checkers import check_election_safety
from repro.harness.workload import ClosedLoopWorkload
from repro.net.network import Network
from repro.net.topology import Topology
from repro.raft.server import RaftServer
from repro.sim.loop import SimLoop
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.smr.kv import KVStateMachine
from repro.storage.stable import StorageFabric


@dataclass(frozen=True)
class Fig5Config:
    total_sites: int = 20
    cluster_counts: tuple[int, ...] = (1, 2, 4, 5, 10)
    batch_size: int = 10
    #: Batches are proposed as soon as ten local commits accumulate (the
    #: paper places no wait on the previous batch), so several may be in
    #: flight; this bounds the pipeline.
    max_outstanding_batches: int = 8
    trial_duration: float = 180.0   # paper: 3-minute trials
    trials: int = 5
    warmup: float = 20.0            # excluded from the measurement window
    seed: int = 0

    @classmethod
    def paper(cls) -> "Fig5Config":
        return cls()

    @classmethod
    def quick(cls) -> "Fig5Config":
        return cls(cluster_counts=(1, 4, 10), trial_duration=40.0,
                   trials=1, warmup=10.0)


@dataclass
class Fig5Point:
    clusters: int
    classic_throughput: float   # entries/s committed to the (global) log
    craft_throughput: float

    @property
    def speedup(self) -> float:
        return self.craft_throughput / self.classic_throughput


@dataclass
class Fig5Result:
    config: Fig5Config
    points: list[Fig5Point]

    def table(self) -> ResultTable:
        table = ResultTable(
            "Fig. 5 -- global commit throughput vs cluster count (entries/s)",
            ["clusters", "classic Raft", "C-Raft", "speedup"])
        for point in self.points:
            table.add_row(point.clusters, point.classic_throughput,
                          point.craft_throughput, point.speedup)
        table.add_note(f"{self.config.total_sites} sites, batch size "
                       f"{self.config.batch_size}, "
                       f"{self.config.trials} x "
                       f"{self.config.trial_duration:.0f}s trials, one "
                       f"closed-loop proposer per cluster")
        return table

    def check_shape(self) -> None:
        single = self.points[0]
        require(single.clusters == 1, "first point should be one cluster")
        require(0.4 <= single.speedup <= 2.5,
                f"protocols should be comparable at one cluster, got "
                f"{single.speedup:.2f}x")
        most = self.points[-1]
        require(most.speedup >= 3.0,
                f"C-Raft should win by several x at {most.clusters} "
                f"clusters, got {most.speedup:.2f}x")
        speedups = [p.speedup for p in self.points]
        require(speedups[-1] > speedups[0],
                "C-Raft's advantage should grow with cluster count")


# ----------------------------------------------------------------------
# Classic Raft baseline over the same geo-distributed sites
# ----------------------------------------------------------------------
def _classic_trial(cluster_count: int, config: Fig5Config,
                   seed: int) -> float:
    regions = regions_for(cluster_count)
    topology = Topology.even_clusters(config.total_sites, regions)
    timing = (TimingConfig.intra_cluster() if cluster_count == 1
              else TimingConfig.inter_cluster())
    loop = SimLoop()
    rng = RngRegistry(seed)
    trace = TraceRecorder(enabled=False)
    network = Network(loop, rng, latency_model_for(topology), None, trace)
    fabric = StorageFabric()
    members = Configuration(tuple(topology.nodes))
    servers = {}
    for name in topology.nodes:
        server = RaftServer(
            name=name, loop=loop, network=network,
            store=fabric.store_for(name), bootstrap_config=members,
            timing=timing, rng=rng, trace=trace,
            state_machine_factory=KVStateMachine)
        servers[name] = server
        network.register(server)
    for server in servers.values():
        server.start()

    def leader_exists() -> bool:
        return any(s.engine.role is Role.LEADER for s in servers.values())

    deadline = loop.now() + 60.0
    while loop.now() < deadline and not leader_exists():
        loop.run_for(0.1)
    if not leader_exists():
        raise TimeoutError("classic baseline elected no leader")
    # One proposer per cluster, as in the paper.
    workloads = []
    for index, region in enumerate(regions):
        site = topology.nodes_in_region(region)[0]
        client_name = f"client.{region}"
        from repro.smr.client import Client
        client = Client(client_name, loop, network, site,
                        proposal_timeout=timing.proposal_timeout)
        network.register(client)
        workload = ClosedLoopWorkload(
            client, command_factory=lambda s, r=region: {
                "op": "put", "key": f"{r}.{s}", "value": s})
        workload.start()
        workloads.append(workload)
    loop.run_for(config.warmup)
    leader = next(s for s in servers.values()
                  if s.engine.role is Role.LEADER)
    start_count = _data_commits(leader)
    loop.run_for(config.trial_duration)
    end_count = _data_commits(leader)
    for workload in workloads:
        workload.stop()
    return (end_count - start_count) / config.trial_duration


def _data_commits(server) -> int:
    return sum(1 for _, e in server.applied_log
               if e.kind is EntryKind.DATA)


# ----------------------------------------------------------------------
# C-Raft
# ----------------------------------------------------------------------
def _craft_trial(cluster_count: int, config: Fig5Config, seed: int) -> float:
    regions = regions_for(cluster_count)
    topology = Topology.even_clusters(config.total_sites, regions)
    deployment = build_craft_deployment(
        topology, latency_model_for(topology), seed=seed,
        local_timing=TimingConfig.intra_cluster(),
        global_timing=TimingConfig.inter_cluster(),
        batch_policy=BatchPolicy(
            batch_size=config.batch_size,
            max_outstanding=config.max_outstanding_batches),
        trace_enabled=False,
        state_machine_factory=KVStateMachine)
    deployment.start_all()
    deployment.run_until_local_leaders(timeout=30.0)
    deployment.run_until_global_ready(timeout=90.0)
    workloads = []
    for region in regions:
        site = topology.nodes_in_cluster(region)[0]
        client = deployment.add_client(site=site)
        workload = ClosedLoopWorkload(
            client, command_factory=lambda s, r=region: {
                "op": "put", "key": f"{r}.{s}", "value": s})
        workload.start()
        workloads.append(workload)
    deployment.run_for(config.warmup)
    start_count = deployment.total_global_applied()
    deployment.run_for(config.trial_duration)
    end_count = deployment.total_global_applied()
    for workload in workloads:
        workload.stop()
    return (end_count - start_count) / config.trial_duration


def run_fig5(config: Fig5Config | None = None) -> Fig5Result:
    config = config or Fig5Config.paper()
    points = []
    for cluster_count in config.cluster_counts:
        classic_rates, craft_rates = [], []
        for trial in range(config.trials):
            classic_rates.append(_classic_trial(
                cluster_count, config,
                cell_seed(config.seed, "classic", cluster_count, trial)))
            craft_rates.append(_craft_trial(
                cluster_count, config,
                cell_seed(config.seed, "craft", cluster_count, trial)))
        points.append(Fig5Point(
            clusters=cluster_count,
            classic_throughput=sum(classic_rates) / len(classic_rates),
            craft_throughput=sum(craft_rates) / len(craft_rates)))
    return Fig5Result(config=config, points=points)
