"""Figure 5: global commit throughput of classic Raft vs C-Raft.

Paper setup: 20 sites split evenly over a varying number of clusters, one
cluster per AWS region; one closed-loop proposer per cluster; C-Raft
batches ten locally committed entries per global proposal; throughput is
entries committed to the global log, averaged over five 3-minute trials.
Intra-cluster heartbeat 100 ms, inter-cluster 500 ms.

Expected shape (paper): comparable at one cluster, C-Raft pulling ahead as
clusters multiply, reaching about 5x classic Raft at ten clusters.

The classic baseline spans the same sites in the same regions; its timing
uses the intra-cluster preset when everything sits in one region and the
inter-cluster preset once the deployment is geo-distributed, mirroring
how the paper configures heartbeats per deployment scope.

Every (protocol, cluster count, trial) is one scenario cell sharing the
``throughput_window`` drive, so the whole grid parallelizes across
worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.timing import TimingConfig
from repro.craft.batching import BatchPolicy
from repro.experiments.base import ResultTable, cell_seed, require
from repro.experiments.regions import regions_for
from repro.net.topology import Topology
from repro.scenarios.registry import Scenario, register_scenario
from repro.scenarios.runner import SweepRunner
from repro.scenarios.spec import (
    Cell,
    LatencySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.smr.kv import KVStateMachine


@dataclass(frozen=True)
class Fig5Config:
    total_sites: int = 20
    cluster_counts: tuple[int, ...] = (1, 2, 4, 5, 10)
    batch_size: int = 10
    #: Batches are proposed as soon as ten local commits accumulate (the
    #: paper places no wait on the previous batch), so several may be in
    #: flight; this bounds the pipeline.
    max_outstanding_batches: int = 8
    trial_duration: float = 180.0   # paper: 3-minute trials
    trials: int = 5
    warmup: float = 20.0            # excluded from the measurement window
    seed: int = 0

    @classmethod
    def paper(cls) -> "Fig5Config":
        return cls()

    @classmethod
    def quick(cls) -> "Fig5Config":
        return cls(cluster_counts=(1, 4, 10), trial_duration=40.0,
                   trials=1, warmup=10.0)

    @classmethod
    def smoke(cls) -> "Fig5Config":
        return cls(cluster_counts=(1, 10), trial_duration=30.0, trials=1,
                   warmup=10.0)


@dataclass
class Fig5Point:
    clusters: int
    classic_throughput: float   # entries/s committed to the (global) log
    craft_throughput: float

    @property
    def speedup(self) -> float:
        return self.craft_throughput / self.classic_throughput


@dataclass
class Fig5Result:
    config: Fig5Config
    points: list[Fig5Point]

    def table(self) -> ResultTable:
        table = ResultTable(
            "Fig. 5 -- global commit throughput vs cluster count (entries/s)",
            ["clusters", "classic Raft", "C-Raft", "speedup"])
        for point in self.points:
            table.add_row(point.clusters, point.classic_throughput,
                          point.craft_throughput, point.speedup)
        table.add_note(f"{self.config.total_sites} sites, batch size "
                       f"{self.config.batch_size}, "
                       f"{self.config.trials} x "
                       f"{self.config.trial_duration:.0f}s trials, one "
                       f"closed-loop proposer per cluster")
        return table

    def check_shape(self) -> None:
        single = self.points[0]
        require(single.clusters == 1, "first point should be one cluster")
        require(0.4 <= single.speedup <= 2.5,
                f"protocols should be comparable at one cluster, got "
                f"{single.speedup:.2f}x")
        most = self.points[-1]
        require(most.speedup >= 3.0,
                f"C-Raft should win by several x at {most.clusters} "
                f"clusters, got {most.speedup:.2f}x")
        speedups = [p.speedup for p in self.points]
        require(speedups[-1] > speedups[0],
                "C-Raft's advantage should grow with cluster count")


def _grid(config: Fig5Config, cluster_count: int
          ) -> tuple[list[str], Topology]:
    regions = regions_for(cluster_count)
    return regions, Topology.even_clusters(config.total_sites, regions)


def fig5_classic_spec(config: Fig5Config, cluster_count: int
                      ) -> ScenarioSpec:
    """One flat Raft group spanning every region of the grid point."""
    regions, topology = _grid(config, cluster_count)
    timing = (TimingConfig.intra_cluster() if cluster_count == 1
              else TimingConfig.inter_cluster())
    return ScenarioSpec(
        name=f"fig5.classic.c{cluster_count}", engine="raft",
        topology=TopologySpec(n_sites=config.total_sites,
                              regions=tuple(regions)),
        timing=timing, latency=LatencySpec.aws_regions(),
        trace=False, state_machine=KVStateMachine,
        workload=WorkloadSpec(
            placement="sites",
            sites=tuple(topology.nodes_in_region(r)[0] for r in regions),
            client_names=tuple(f"client.{r}" for r in regions),
            command="keyed", prefixes=tuple(regions)),
        drive="throughput_window", leader_timeout=60.0,
        params={"warmup": config.warmup,
                "duration": config.trial_duration,
                "leader_step": 0.1})


def fig5_craft_spec(config: Fig5Config, cluster_count: int) -> ScenarioSpec:
    regions, topology = _grid(config, cluster_count)
    return ScenarioSpec(
        name=f"fig5.craft.c{cluster_count}", engine="craft",
        topology=TopologySpec(n_sites=config.total_sites,
                              regions=tuple(regions)),
        timing=TimingConfig.intra_cluster(),
        global_timing=TimingConfig.inter_cluster(),
        batch=BatchPolicy(batch_size=config.batch_size,
                          max_outstanding=config.max_outstanding_batches),
        latency=LatencySpec.aws_regions(),
        trace=False, state_machine=KVStateMachine,
        workload=WorkloadSpec(
            placement="sites",
            sites=tuple(topology.nodes_in_cluster(r)[0] for r in regions),
            command="keyed", prefixes=tuple(regions)),
        drive="throughput_window",
        params={"warmup": config.warmup,
                "duration": config.trial_duration,
                "global_ready_timeout": 90.0})


def fig5_cells(config: Fig5Config) -> list[Cell]:
    cells = []
    for cluster_count in config.cluster_counts:
        for trial in range(config.trials):
            cells.append(Cell(
                key=("classic", cluster_count, trial),
                spec=fig5_classic_spec(config, cluster_count),
                seed=cell_seed(config.seed, "classic", cluster_count,
                               trial)))
            cells.append(Cell(
                key=("craft", cluster_count, trial),
                spec=fig5_craft_spec(config, cluster_count),
                seed=cell_seed(config.seed, "craft", cluster_count,
                               trial)))
    return cells


def run_fig5(config: Fig5Config | None = None, jobs: int = 1) -> Fig5Result:
    config = config or Fig5Config.paper()
    rates = SweepRunner(jobs).run(fig5_cells(config))
    points = []
    for cluster_count in config.cluster_counts:
        classic = [rates[("classic", cluster_count, t)]
                   for t in range(config.trials)]
        craft = [rates[("craft", cluster_count, t)]
                 for t in range(config.trials)]
        points.append(Fig5Point(
            clusters=cluster_count,
            classic_throughput=sum(classic) / len(classic),
            craft_throughput=sum(craft) / len(craft)))
    return Fig5Result(config=config, points=points)


register_scenario(Scenario(
    name="fig5",
    description="Global commit throughput vs cluster count, classic Raft "
                "vs C-Raft (Fig. 5)",
    make_config=lambda mode: {"quick": Fig5Config.quick,
                              "full": Fig5Config.paper,
                              "smoke": Fig5Config.smoke}[mode](),
    run=run_fig5,
    modes=("quick", "full", "smoke")))
