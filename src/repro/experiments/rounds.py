"""Figures 1-2 validation: message rounds on the commit path.

The paper's message-flow diagrams claim classic Raft needs three
leader-coordinated message hops before the leader commits (proposer ->
leader, AppendEntries out, acknowledgements back) while Fast Raft's fast
track needs two (proposer -> all sites, votes -> leader). The proposer
additionally pays one notification hop in both protocols.

Method: constant one-way latency ``d``, zero loss, and every periodic
wait shrunk to a negligible epsilon (eager AppendEntries dispatch, a tiny
decision interval), so measured times become exact hop multiples of ``d``
and the hop count can be read off the latency (``repro.metrics.rounds``).
The commit instant comes from the leader's trace; the proposer-observed
latency from the client record. That per-commit trace probing is this
experiment's registered scenario drive (``rounds_hops``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.timing import TimingConfig
from repro.experiments.base import ResultTable, cell_seed, require
from repro.metrics.rounds import hops_from_latency
from repro.scenarios.registry import Scenario, register_scenario
from repro.scenarios.runner import SweepRunner, drive, elect_flat_leader
from repro.scenarios.spec import Cell, LatencySpec, ScenarioSpec, TopologySpec


@dataclass(frozen=True)
class RoundsConfig:
    n_sites: int = 5
    one_way_delay: float = 0.010   # 10 ms: dwarfs the epsilon timers
    commits: int = 10
    seed: int = 0

    @classmethod
    def paper(cls) -> "RoundsConfig":
        return cls()

    @classmethod
    def quick(cls) -> "RoundsConfig":
        return cls(commits=5)


@dataclass
class RoundsResult:
    config: RoundsConfig
    classic_commit_hops: int      # hops until the leader commits
    classic_proposer_hops: int    # hops until the proposer learns
    fast_commit_hops: int
    fast_proposer_hops: int

    def table(self) -> ResultTable:
        table = ResultTable(
            "Figs. 1-2 -- one-way message hops on the commit path",
            ["protocol", "hops to leader commit", "hops to proposer"])
        table.add_row("classic Raft", self.classic_commit_hops,
                      self.classic_proposer_hops)
        table.add_row("Fast Raft (fast track)", self.fast_commit_hops,
                      self.fast_proposer_hops)
        table.add_note("constant one-way delay "
                       f"{self.config.one_way_delay * 1000:.0f} ms, "
                       "periodic timers shrunk to epsilon")
        return table

    def check_shape(self) -> None:
        require(self.classic_commit_hops == 3,
                f"classic Raft should commit after 3 hops (Fig. 1), got "
                f"{self.classic_commit_hops}")
        require(self.fast_commit_hops == 2,
                f"Fast Raft's fast track should commit after 2 hops "
                f"(Fig. 2), got {self.fast_commit_hops}")
        require(self.classic_proposer_hops == self.classic_commit_hops + 1,
                "proposer notification is one extra hop")
        require(self.fast_proposer_hops == self.fast_commit_hops + 1,
                "proposer notification is one extra hop")


def _epsilon_timing() -> TimingConfig:
    # member_timeout_beats is effectively disabled: with the heartbeat
    # shrunk far below the one-way delay, responses always lag by many
    # beats and the silent-leave detector would evict healthy sites.
    return TimingConfig(
        heartbeat_interval=0.0005,     # epsilon vs the 10ms delay
        decision_interval=0.0002,
        election_timeout_min=0.5, election_timeout_max=1.0,
        proposal_timeout=5.0, eager_append=True,
        member_timeout_beats=10 ** 9)


@drive("rounds_hops")
def drive_rounds_hops(cluster, spec: ScenarioSpec) -> tuple[int, int]:
    """Per-commit trace probing: read hop counts off exact latencies."""
    one_way_delay = spec.params["one_way_delay"]
    commits = spec.params["commits"]
    cluster.start_all()
    leader = elect_flat_leader(cluster, spec)
    proposer_site = next(n for n in cluster.servers if n != leader)
    client = cluster.add_client(site=proposer_site)
    cluster.run_for(1.0)  # drain election-time traffic
    commit_hops, proposer_hops = [], []
    for i in range(commits):
        commits_seen = len(cluster.trace.select(
            category=f"{cluster.servers[leader].engine.protocol_name}.commit",
            node=leader))
        submit_time = cluster.loop.now()
        record = cluster.propose_and_wait(
            client, {"op": "put", "key": f"k{i}", "value": i}, timeout=10.0)
        commit_events = cluster.trace.select(
            category=f"{cluster.servers[leader].engine.protocol_name}.commit",
            node=leader)
        new_commits = commit_events[commits_seen:]
        commit_time = new_commits[0].time
        commit_hops.append(hops_from_latency(
            commit_time - submit_time, one_way_delay))
        proposer_hops.append(hops_from_latency(
            record.latency, one_way_delay))
        cluster.run_for(0.2)  # let replication settle between probes
    # Hop counts must be stable across commits; take the mode.
    commit_mode = max(set(commit_hops), key=commit_hops.count)
    proposer_mode = max(set(proposer_hops), key=proposer_hops.count)
    return commit_mode, proposer_mode


def rounds_cells(config: RoundsConfig) -> list[Cell]:
    cells = []
    for key, engine, seed_tag in (("classic", "raft", "RaftServer"),
                                  ("fast", "fastraft", "FastRaftServer")):
        spec = ScenarioSpec(
            name=f"rounds.{key}", engine=engine,
            topology=TopologySpec(n_sites=config.n_sites),
            timing=_epsilon_timing(),
            latency=LatencySpec.constant(config.one_way_delay),
            drive="rounds_hops",
            params={"one_way_delay": config.one_way_delay,
                    "commits": config.commits})
        cells.append(Cell(key=(key,), spec=spec,
                          seed=cell_seed(config.seed, seed_tag)))
    return cells


def run_rounds(config: RoundsConfig | None = None,
               jobs: int = 1) -> RoundsResult:
    config = config or RoundsConfig.paper()
    hops = SweepRunner(jobs).run(rounds_cells(config))
    classic_commit, classic_proposer = hops[("classic",)]
    fast_commit, fast_proposer = hops[("fast",)]
    return RoundsResult(config=config,
                        classic_commit_hops=classic_commit,
                        classic_proposer_hops=classic_proposer,
                        fast_commit_hops=fast_commit,
                        fast_proposer_hops=fast_proposer)


register_scenario(Scenario(
    name="rounds",
    description="Message-hop validation of the Figs. 1-2 commit paths",
    make_config=lambda mode: (RoundsConfig.paper() if mode == "full"
                              else RoundsConfig.quick()),
    run=run_rounds,
    modes=("quick", "full", "smoke")))
