"""Shared experiment plumbing: tables, seeds, shape assertions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ExperimentError
from repro.sim.rng import derive_seed


def cell_seed(base_seed: int, *parts: Any) -> int:
    """Stable per-cell seed for a parameter sweep (so adding a column does
    not reshuffle the randomness of existing cells)."""
    return derive_seed(base_seed, ":".join(str(p) for p in parts)) % (2 ** 31)


@dataclass
class ResultTable:
    """A printable experiment table (one per paper figure)."""

    title: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ExperimentError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def format(self) -> str:
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [max(len(self.columns[i]),
                      max((len(row[i]) for row in cells), default=0))
                  for i in range(len(self.columns))]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        """Machine-readable form (for benchmarks/results/*.json)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    def __str__(self) -> str:
        return self.format()


def require(condition: bool, message: str) -> None:
    """Shape assertion used by ``result.check_shape()`` methods."""
    if not condition:
        raise ExperimentError(f"shape check failed: {message}")
