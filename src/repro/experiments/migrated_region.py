"""Migrated-region-at-scale: gated global snapshot catch-up for a whole
cluster that comes online after the global log has been compacted.

ROADMAP open item: C-Raft's *global* compaction path was exercised only
by a 7-node unit test (``test_late_region_catches_up_via_gated_global
_snapshot``). This scenario scales it to a multi-cluster deployment with
``global_compaction`` enabled by default: several regions commit batches
while one region is still being migrated in; by the time the migrated
region boots, the global log prefix it needs is gone, so the global
leader must ship a global InstallSnapshot -- which C-Raft *gates through
the new cluster's local consensus* (a GLOBAL_STATE entry carrying the
image) so every site of the region adopts the same view at the same
local index.

The spec declares the deployment (topology, batching, both compaction
levels); the drive holds the measurement logic: start everything except
the migrated region, run the workload past global compaction, then boot
the region and time its catch-up through the gated path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.entry import EntryKind
from repro.craft.batching import BatchPolicy
from repro.errors import ExperimentError
from repro.experiments.base import ResultTable, require
from repro.experiments.regions import regions_for
from repro.harness.checkers import check_images_agree
from repro.harness.workload import ClosedLoopWorkload
from repro.scenarios.registry import Scenario, register_scenario
from repro.scenarios.runner import RunContext, SweepRunner, drive
from repro.scenarios.spec import (
    Cell,
    LatencySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.smr.kv import KVStateMachine
from repro.snapshot import CompactionPolicy


@dataclass(frozen=True)
class MigratedRegionConfig:
    clusters: int = 4             # regions, one C-Raft cluster each
    sites_per_cluster: int = 3
    requests: int = 100           # commits before the migration lands
    batch_size: int = 5
    local_threshold: int = 30     # local compaction trigger
    local_retain: int = 4
    global_threshold: int = 6     # global compaction trigger (batches)
    global_retain: int = 1
    seed: int = 6
    timeout: float = 600.0

    @classmethod
    def paper(cls) -> "MigratedRegionConfig":
        return cls()

    @classmethod
    def quick(cls) -> "MigratedRegionConfig":
        return cls()

    @classmethod
    def smoke(cls) -> "MigratedRegionConfig":
        return cls(clusters=3, requests=60)

    @property
    def total_sites(self) -> int:
        return self.clusters * self.sites_per_cluster


@dataclass
class MigratedRegionResult:
    config: MigratedRegionConfig
    migrated_cluster: str
    catchup_time: float           # region boot -> all sites caught up
    installs: int                 # global snapshots installed in the region
    gated_sites: int              # region sites that adopted via the gate
    global_snapshots_taken: int   # across every global engine
    global_applied: int           # entries applied from the global log

    def table(self) -> ResultTable:
        table = ResultTable(
            "Migrated region at scale -- gated global snapshot catch-up",
            ["sites", "clusters", "commits", "global snaps", "installs",
             "gated sites", "catchup (ms)"])
        table.add_row(self.config.total_sites, self.config.clusters,
                      self.config.requests, self.global_snapshots_taken,
                      self.installs, self.gated_sites,
                      self.catchup_time * 1000)
        table.add_note(
            f"region {self.migrated_cluster!r} booted after global "
            f"compaction (threshold {self.config.global_threshold} "
            f"batches, retain {self.config.global_retain})")
        return table

    def check_shape(self) -> None:
        require(self.global_snapshots_taken >= 1,
                "the global compaction policy should have fired")
        require(self.installs >= 1,
                "the migrated region must catch up via a global "
                "InstallSnapshot")
        require(self.gated_sites == self.config.sites_per_cluster,
                f"every site of the migrated region must adopt the image "
                f"through local consensus "
                f"({self.gated_sites}/{self.config.sites_per_cluster})")
        require(self.global_applied > 0,
                "the migrated region must apply global entries")


@drive("migrated_region")
def drive_migrated_region(deployment, spec: ScenarioSpec) -> dict:
    """Boot all but one region, outrun global compaction, then migrate
    the last region in and time its gated catch-up."""
    ctx = RunContext(deployment, spec)
    topo = deployment.topology
    migrated = spec.params["migrated_cluster"]
    late_sites = topo.nodes_in_cluster(migrated)
    others = [c for c in topo.clusters if c != migrated]
    for name, server in deployment.servers.items():
        if name not in late_sites:
            server.start()

    def others_ready() -> bool:
        if deployment.global_leader() is None:
            return False
        for cluster in others:
            leader = deployment.local_leader(cluster)
            if leader is None:
                return False
            engine = deployment.servers[leader].global_engine
            if engine is None or not engine.is_member:
                return False
        return True

    ready_timeout = spec.params.get("global_ready_timeout", 90.0)
    if not deployment.run_until(others_ready, timeout=ready_timeout):
        raise ExperimentError("running regions never became globally ready")
    client = deployment.add_client(
        site=deployment.local_leader(others[0]))
    workload = ClosedLoopWorkload(client,
                                  max_requests=spec.workload.requests)
    ctx.workloads.append(workload)
    workload.start()
    run_ok = deployment.run_until(lambda: workload.done,
                                  timeout=spec.timeout)
    if not run_ok:
        raise ExperimentError(
            f"finished only {workload.completed_count}"
            f"/{spec.workload.requests} commits")

    def global_compacted() -> bool:
        leader = deployment.global_leader()
        if leader is None:
            return False
        engine = deployment.servers[leader].global_engine
        return engine is not None and engine.log.snapshot_index > 0

    if not deployment.run_until(global_compacted, timeout=spec.timeout):
        raise ExperimentError("global log never compacted")

    # The migration lands: the region boots with an empty history.
    for name in late_sites:
        deployment.servers[name].start()
    started = deployment.loop.now()

    def region_caught_up() -> bool:
        leader = deployment.local_leader(migrated)
        if leader is None:
            return False
        engine = deployment.servers[leader].global_engine
        if engine is None or not engine.is_member:
            return False
        return all(deployment.servers[n].global_applied_index > 0
                   for n in late_sites)

    if not deployment.run_until(region_caught_up, timeout=spec.timeout):
        raise ExperimentError(
            f"migrated region {migrated!r} never caught up")
    catchup_time = deployment.loop.now() - started
    deployment.run_for(5.0)
    check_images_agree(
        ((s.global_applied_index, s.global_state_machine.snapshot(),
          s.name) for s in deployment.servers.values()
         if s.global_state_machine is not None),
        what="global state machines")

    def gated_at(site: str) -> bool:
        return any(e.kind is EntryKind.GLOBAL_STATE
                   and e.payload.snapshot is not None
                   for _, e in deployment.servers[site].applied_log)

    installs = sum(
        s.global_engine.snapshots_installed
        for s in (deployment.servers[n] for n in late_sites)
        if s.global_engine is not None)
    taken = sum(
        s.global_engine.snapshots_taken
        for s in deployment.servers.values()
        if s.global_engine is not None)
    return {"migrated_cluster": migrated,
            "catchup_time": catchup_time,
            "installs": installs,
            "gated_sites": sum(1 for n in late_sites if gated_at(n)),
            "global_snapshots_taken": taken,
            "global_applied": min(deployment.servers[n].global_applied_index
                                  for n in late_sites)}


def migrated_region_spec(config: MigratedRegionConfig) -> ScenarioSpec:
    regions = regions_for(config.clusters)
    return ScenarioSpec(
        name="migrated_region", engine="craft",
        topology=TopologySpec(n_sites=config.total_sites,
                              regions=tuple(regions)),
        batch=BatchPolicy(batch_size=config.batch_size),
        compaction=CompactionPolicy(threshold=config.local_threshold,
                                    retain=config.local_retain),
        global_compaction=CompactionPolicy(
            threshold=config.global_threshold,
            retain=config.global_retain),
        latency=LatencySpec.aws_regions(),
        state_machine=KVStateMachine,
        workload=WorkloadSpec(requests=config.requests),
        drive="migrated_region", timeout=config.timeout,
        # The migrated region must not host the global bootstrap seed
        # (the builder seeds the first cluster in sorted order), so the
        # *last* sorted region is the one that comes online late.
        params={"migrated_cluster": sorted(regions)[-1]})


def migrated_region_cells(config: MigratedRegionConfig) -> list[Cell]:
    return [Cell(key=("migrate",), spec=migrated_region_spec(config),
                 seed=config.seed)]


def run_migrated_region(config: MigratedRegionConfig | None = None,
                        jobs: int = 1) -> MigratedRegionResult:
    config = config or MigratedRegionConfig.paper()
    metrics = SweepRunner(jobs).map(migrated_region_cells(config))[0]
    return MigratedRegionResult(config=config, **metrics)


register_scenario(Scenario(
    name="migrated_region",
    description="A whole region migrates in after global compaction and "
                "catches up via the gated global snapshot path",
    run=run_migrated_region,
    make_config=lambda mode: {"quick": MigratedRegionConfig.quick,
                              "full": MigratedRegionConfig.paper,
                              "smoke": MigratedRegionConfig.smoke}[mode](),
    modes=("quick", "full", "smoke")))
