"""Command-line entry point for the experiment suite.

Usage::

    python -m repro.experiments rounds
    python -m repro.experiments fig3 --full
    python -m repro.experiments fig4
    python -m repro.experiments fig5 --full --jobs 4
    python -m repro.experiments ablations
    python -m repro.experiments all --jobs 8

    python -m repro.experiments --list-scenarios
    python -m repro.experiments --scenario flapping_wan --mode smoke
    python -m repro.experiments --scenario catchup --jobs 6 \\
        --json-dir benchmarks/results

``--quick`` (the default) runs scaled-down configurations in seconds;
``--full`` runs the paper-scale configurations used by EXPERIMENTS.md;
``--mode smoke`` is the CI-smoke scale. ``--jobs N`` fans the sweep's
cells out across N worker processes (results are identical to serial).
Every experiment is a registered scenario; the positional names are
aliases for ``--scenario`` kept for compatibility.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.scenarios.registry import get_scenario, run_scenario, scenario_names

#: Positional aliases (the historical CLI) and the 'all' bundle.
LEGACY_NAMES = ["rounds", "fig3", "fig4", "fig5", "ablations", "catchup"]


def _run_one(name: str, mode: str, jobs: int,
             json_dir: str | None) -> None:
    started = time.time()
    scenario, result = run_scenario(name, mode=mode, jobs=jobs)
    elapsed = time.time() - started
    tables = scenario.tables(result)
    for index, table in enumerate(tables):
        print(table)
        if index + 1 < len(tables):
            print()
    scenario.check(result)
    if name == "ablations":
        print(f"[ablations done in {elapsed:.1f}s wall time]")
    else:
        print(f"[shape checks passed; {elapsed:.1f}s wall time]")
    if json_dir is not None:
        out_dir = pathlib.Path(json_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        payload = scenario.as_dict(result)
        payload.update({"mode": mode, "jobs": jobs,
                        "wall_seconds": elapsed})
        path = out_dir / f"scenario_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                                   default=str) + "\n", encoding="utf-8")
        print(f"[results written to {path}]")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation tables and run "
                    "registered scenarios.")
    parser.add_argument("experiment", nargs="?",
                        choices=LEGACY_NAMES + ["all"],
                        help="legacy experiment name (alias for "
                             "--scenario)")
    parser.add_argument("--scenario", metavar="NAME",
                        help="registered scenario name (see "
                             "--list-scenarios)")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="list every registered scenario and exit")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the sweep (default 1; "
                             "results are identical to serial)")
    parser.add_argument("--json-dir", metavar="DIR",
                        help="also write per-scenario JSON results here")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true", default=True,
                      help="scaled-down configuration (default)")
    mode.add_argument("--full", action="store_true",
                      help="paper-scale configuration")
    mode.add_argument("--mode", choices=["quick", "full", "smoke"],
                      help="explicit mode (smoke = CI scale)")
    args = parser.parse_args(argv)

    if args.list_scenarios:
        for name in scenario_names():
            print(f"{name:16} {get_scenario(name).description}")
        return 0

    run_mode = args.mode if args.mode else ("full" if args.full else "quick")
    if args.scenario:
        names = [args.scenario]
    elif args.experiment == "all":
        names = ["rounds", "fig3", "fig4", "fig5", "ablations"]
    elif args.experiment:
        names = [args.experiment]
    else:
        parser.error("give an experiment name, --scenario, or "
                     "--list-scenarios")
    for name in names:
        _run_one(name, run_mode, args.jobs, args.json_dir)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
