"""Command-line entry point for the experiment suite.

Usage::

    python -m repro.experiments rounds
    python -m repro.experiments fig3 --full
    python -m repro.experiments fig4
    python -m repro.experiments fig5 --full --jobs 4
    python -m repro.experiments ablations
    python -m repro.experiments all --jobs 8

    python -m repro.experiments --list-scenarios
    python -m repro.experiments --scenario flapping_wan --mode smoke
    python -m repro.experiments --scenario catchup --jobs 6 \\
        --json-dir benchmarks/results
    python -m repro.experiments --scenario fig3 --profile \\
        --json-dir /tmp/prof

    python -m repro.experiments mc --list
    python -m repro.experiments mc --scenario mc_small_healthy --depth 6

``--quick`` (the default) runs scaled-down configurations in seconds;
``--full`` runs the paper-scale configurations used by EXPERIMENTS.md;
``--mode smoke`` is the CI-smoke scale. ``--jobs N`` fans the sweep's
cells out across N worker processes (results are identical to serial;
the pool persists across scenarios within one invocation).
``--profile`` with ``--jobs 1`` wraps the whole run in cProfile and
dumps sorted stats next to the JSON output; with ``--jobs N`` each
sweep cell profiles itself inside its worker and the raw ``.pstats``
dumps land in a per-scenario directory -- the profile-first workflow
the simulation-core speedup was driven by.
Every experiment is a registered scenario; the positional names are
aliases for ``--scenario`` kept for compatibility.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pathlib
import pstats
import sys
import time

from repro.scenarios.registry import get_scenario, run_scenario, scenario_names

#: Positional aliases (the historical CLI) and the 'all' bundle.
LEGACY_NAMES = ["rounds", "fig3", "fig4", "fig5", "ablations", "catchup"]

#: Stats lines kept in the --profile dump.
_PROFILE_LINES = 60


def _run_one(name: str, mode: str, jobs: int,
             json_dir: str | None, profile: bool = False) -> None:
    started = time.time()
    out_dir = pathlib.Path(json_dir) if json_dir is not None \
        else pathlib.Path.cwd()
    if profile and jobs == 1:
        # Serial: one whole-process profile sees every hot path.
        profiler = cProfile.Profile()
        profiler.enable()
        scenario, result = run_scenario(name, mode=mode, jobs=1)
        profiler.disable()
    elif profile:
        # Parallel: workers take the hot paths out of this process, so
        # each cell profiles itself inside its worker instead (one
        # .pstats file per cell, written by SweepRunner).
        from repro.scenarios import per_cell_profiles
        cells_dir = out_dir / f"scenario_{name}.cells"
        with per_cell_profiles(cells_dir):
            scenario, result = run_scenario(name, mode=mode, jobs=jobs)
    else:
        scenario, result = run_scenario(name, mode=mode, jobs=jobs)
    elapsed = time.time() - started
    if profile and jobs == 1:
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"scenario_{name}.prof.txt"
        with path.open("w", encoding="utf-8") as stream:
            stats = pstats.Stats(profiler, stream=stream)
            stats.sort_stats("cumulative").print_stats(_PROFILE_LINES)
            stats.sort_stats("tottime").print_stats(_PROFILE_LINES)
        print(f"[cProfile stats written to {path}]")
    elif profile:
        print(f"[per-cell cProfile dumps written under {cells_dir}]")
    tables = scenario.tables(result)
    for index, table in enumerate(tables):
        print(table)
        if index + 1 < len(tables):
            print()
    scenario.check(result)
    if name == "ablations":
        print(f"[ablations done in {elapsed:.1f}s wall time]")
    else:
        print(f"[shape checks passed; {elapsed:.1f}s wall time]")
    if json_dir is not None:
        out_dir = pathlib.Path(json_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        payload = scenario.as_dict(result)
        payload.update({"mode": mode, "jobs": jobs,
                        "wall_seconds": elapsed})
        path = out_dir / f"scenario_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                                   default=str) + "\n", encoding="utf-8")
        print(f"[results written to {path}]")


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "mc":
        # The model-checking subcommand has its own flag set.
        from repro.mc.cli import main as mc_main
        return mc_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation tables and run "
                    "registered scenarios.")
    parser.add_argument("experiment", nargs="?",
                        choices=LEGACY_NAMES + ["all"],
                        help="legacy experiment name (alias for "
                             "--scenario)")
    parser.add_argument("--scenario", metavar="NAME",
                        help="registered scenario name (see "
                             "--list-scenarios)")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="list every registered scenario and exit")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the sweep (default 1; "
                             "results are identical to serial)")
    parser.add_argument("--json-dir", metavar="DIR",
                        help="also write per-scenario JSON results here")
    parser.add_argument("--profile", action="store_true",
                        help="profile the run: whole-process sorted stats "
                             "with --jobs 1, per-cell .pstats dumps (one "
                             "per sweep cell, written by the workers) "
                             "with --jobs N")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true", default=True,
                      help="scaled-down configuration (default)")
    mode.add_argument("--full", action="store_true",
                      help="paper-scale configuration")
    mode.add_argument("--mode", choices=["quick", "full", "smoke"],
                      help="explicit mode (smoke = CI scale)")
    args = parser.parse_args(argv)

    if args.list_scenarios:
        for name in scenario_names():
            print(f"{name:16} {get_scenario(name).description}")
        return 0

    run_mode = args.mode if args.mode else ("full" if args.full else "quick")
    if args.scenario:
        names = [args.scenario]
    elif args.experiment == "all":
        names = ["rounds", "fig3", "fig4", "fig5", "ablations"]
    elif args.experiment:
        names = [args.experiment]
    else:
        parser.error("give an experiment name, --scenario, or "
                     "--list-scenarios")
    for name in names:
        _run_one(name, run_mode, args.jobs, args.json_dir,
                 profile=args.profile)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
