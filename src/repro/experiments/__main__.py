"""Command-line entry point for the experiment suite.

Usage::

    python -m repro.experiments rounds
    python -m repro.experiments fig3 --full
    python -m repro.experiments fig4
    python -m repro.experiments fig5 --full
    python -m repro.experiments ablations
    python -m repro.experiments all

``--quick`` (the default) runs scaled-down configurations in seconds;
``--full`` runs the paper-scale configurations used by EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.ablations import AblationConfig, run_all_ablations
from repro.experiments.fig3_latency import Fig3Config, run_fig3
from repro.experiments.fig4_churn import Fig4Config, run_fig4
from repro.experiments.fig5_throughput import Fig5Config, run_fig5
from repro.experiments.rounds import RoundsConfig, run_rounds


def _run_one(name: str, full: bool) -> None:
    started = time.time()
    if name == "rounds":
        config = RoundsConfig.paper() if full else RoundsConfig.quick()
        result = run_rounds(config)
    elif name == "fig3":
        config = Fig3Config.paper() if full else Fig3Config.quick()
        result = run_fig3(config)
    elif name == "fig4":
        config = Fig4Config.paper() if full else Fig4Config.quick()
        result = run_fig4(config)
    elif name == "fig5":
        config = Fig5Config.paper() if full else Fig5Config.quick()
        result = run_fig5(config)
    elif name == "ablations":
        config = AblationConfig.paper() if full else AblationConfig.quick()
        for table in run_all_ablations(config):
            print(table)
            print()
        print(f"[ablations done in {time.time() - started:.1f}s wall time]")
        return
    else:
        raise SystemExit(f"unknown experiment: {name!r}")
    print(result.table())
    result.check_shape()
    print(f"[shape checks passed; {time.time() - started:.1f}s wall time]")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation tables.")
    parser.add_argument("experiment",
                        choices=["rounds", "fig3", "fig4", "fig5",
                                 "ablations", "all"])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true", default=True,
                      help="scaled-down configuration (default)")
    mode.add_argument("--full", action="store_true",
                      help="paper-scale configuration")
    args = parser.parse_args(argv)
    names = (["rounds", "fig3", "fig4", "fig5", "ablations"]
             if args.experiment == "all" else [args.experiment])
    for name in names:
        _run_one(name, args.full)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
